#!/usr/bin/env bash
# Pre-merge verification flow (see docs/testing.md).
#
# Stages, each independently runnable via STAGES="..." (space-separated):
#   tier1    - the full test suite, fail-fast
#   shuffle  - the same suite in a seeded shuffled order (state-leak canary)
#   cov      - tier-1 under pytest-cov with a fail-under gate; skipped with a
#              notice when pytest-cov is not importable (it is an optional
#              dev dependency, not baked into the container image)
#   simtest  - a seeded scenario-fuzzing smoke batch (25 seeds)
#   federate - a federated (site-tier) scenario-fuzzing smoke batch (10 seeds)
#   policies - the quick policy head-to-head, byte-diffed against the
#              committed fixture tests/golden/policy_head_to_head.csv
#   lifecycle - snapshot schema-version lint + a seeded 16-node
#              crash→snapshot→restore→digest-equivalence check
#   serve    - serving-tier gate: boot a 16-node cluster behind the API
#              (`repro serve --smoke`), then a seeded 100-client
#              loadtest that must finish with zero errors and p99
#              under a latency bound (see docs/serving.md)
#   tenancy  - multi-tenant gate: the fairshare property + model suites,
#              then a forced-tenancy fuzz batch under the tenant
#              invariant checkers (see docs/tenancy.md)
#   bench    - quick perf suite compared against the committed
#              BENCH_columnar.json baseline; OFF by default (set
#              REPRO_BENCH_GATE=1) so the flow stays fast
#
# Knobs (environment):
#   REPRO_COV_MIN         coverage fail-under percentage   (default 80)
#   REPRO_SHUFFLE_SEED    shuffle seed                     (default 1)
#   REPRO_SIMTEST_SEEDS   smoke-batch size                 (default 25)
#   REPRO_FEDERATE_SEEDS  federated smoke-batch size       (default 10)
#   REPRO_LIFECYCLE_SEED  lifecycle check scenario seed    (default 1)
#   REPRO_SERVE_SEED      loadtest trace seed              (default 1)
#   REPRO_SERVE_CLIENTS   loadtest client count            (default 100)
#   REPRO_TENANCY_SEEDS   tenant-mix fuzz-batch size       (default 100)
#   REPRO_SERVE_P99_MS    loadtest p99 latency bound, ms   (default 250;
#              generous — the gate is about catastrophic handler
#              regressions, not micro-benchmarking shared CI hosts)
#   REPRO_BENCH_GATE      run the bench stage when set to 1 (default off)
#   REPRO_BENCH_BASELINE  baseline artifact  (default BENCH_columnar_quick.json:
#                         quick-vs-quick is the only apples-to-apples compare —
#                         sweep throughput is size-dependent, build overhead
#                         dominates at smoke sizes)
#   REPRO_BENCH_MAX_REGRESS  throughput regression tolerance (default 50%;
#              generous on purpose — the quick sizes are smaller than the
#              committed full-size baseline and the machine differs, and
#              duration metrics are auto-skipped on a quick-flag mismatch)
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

STAGES="${STAGES:-tier1 shuffle cov simtest federate policies lifecycle serve tenancy bench}"
REPRO_COV_MIN="${REPRO_COV_MIN:-80}"
REPRO_SHUFFLE_SEED="${REPRO_SHUFFLE_SEED:-1}"
REPRO_SIMTEST_SEEDS="${REPRO_SIMTEST_SEEDS:-25}"
REPRO_FEDERATE_SEEDS="${REPRO_FEDERATE_SEEDS:-10}"
REPRO_LIFECYCLE_SEED="${REPRO_LIFECYCLE_SEED:-1}"
REPRO_SERVE_SEED="${REPRO_SERVE_SEED:-1}"
REPRO_SERVE_CLIENTS="${REPRO_SERVE_CLIENTS:-100}"
REPRO_SERVE_P99_MS="${REPRO_SERVE_P99_MS:-250}"
REPRO_TENANCY_SEEDS="${REPRO_TENANCY_SEEDS:-100}"
REPRO_BENCH_GATE="${REPRO_BENCH_GATE:-0}"
REPRO_BENCH_BASELINE="${REPRO_BENCH_BASELINE:-BENCH_columnar_quick.json}"
REPRO_BENCH_MAX_REGRESS="${REPRO_BENCH_MAX_REGRESS:-50%}"

banner() { printf '\n==> %s\n' "$*"; }

for stage in $STAGES; do
    case "$stage" in
        tier1)
            banner "tier-1: full suite"
            python -m pytest -x -q
            ;;
        shuffle)
            banner "shuffled order (seed $REPRO_SHUFFLE_SEED): state-leak canary"
            REPRO_TEST_SHUFFLE="$REPRO_SHUFFLE_SEED" python -m pytest -x -q
            ;;
        cov)
            if python -c 'import pytest_cov' 2>/dev/null; then
                banner "coverage gate: fail under ${REPRO_COV_MIN}%"
                python -m pytest -x -q \
                    --cov=repro --cov-report=term-missing:skip-covered \
                    --cov-fail-under="$REPRO_COV_MIN"
            else
                banner "coverage gate: SKIPPED (pytest-cov not installed;" \
                    "pip install -e .[dev] to enable)"
            fi
            ;;
        simtest)
            banner "simtest smoke batch: $REPRO_SIMTEST_SEEDS seeds"
            python -m repro.cli simtest --seeds "$REPRO_SIMTEST_SEEDS"
            ;;
        federate)
            banner "federated simtest smoke batch: $REPRO_FEDERATE_SEEDS seeds"
            python -m repro.cli federate --seeds "$REPRO_FEDERATE_SEEDS"
            ;;
        policies)
            banner "policy head-to-head vs golden fixture"
            tmpcsv="$(mktemp)"
            trap 'rm -f "$tmpcsv"' EXIT
            python -m repro.cli policies --compare --seed 1 -o "$tmpcsv"
            diff -u tests/golden/policy_head_to_head.csv "$tmpcsv" || {
                echo "policy head-to-head diverged from the golden fixture;" >&2
                echo "regenerate (if intentional) with:" >&2
                echo "  python -m repro.cli policies --compare --seed 1 \\" >&2
                echo "      -o tests/golden/policy_head_to_head.csv" >&2
                exit 1
            }
            rm -f "$tmpcsv"
            ;;
        lifecycle)
            banner "lifecycle: snapshot schema lint"
            python -m repro.cli lifecycle --schema-lint
            banner "lifecycle: crash-restore digest equivalence (seed $REPRO_LIFECYCLE_SEED, 16 nodes)"
            python -m repro.cli lifecycle --seed "$REPRO_LIFECYCLE_SEED" --nodes 16
            ;;
        serve)
            banner "serve: API boot smoke (16 nodes over HTTP)"
            python -m repro.cli serve --smoke --port 0 --nodes 16
            banner "serve: ${REPRO_SERVE_CLIENTS}-client loadtest (seed $REPRO_SERVE_SEED, zero errors, p99 <= ${REPRO_SERVE_P99_MS} ms)"
            servedir="$(mktemp -d)"
            trap 'rm -rf "$servedir"' EXIT
            python -m repro.cli loadtest \
                --clients "$REPRO_SERVE_CLIENTS" --seed "$REPRO_SERVE_SEED" \
                --p99-max "$REPRO_SERVE_P99_MS" --out "$servedir"
            rm -rf "$servedir"
            ;;
        tenancy)
            banner "tenancy: fairshare property + model suites"
            python -m pytest -x -q \
                tests/test_tenancy_fairshare_properties.py \
                tests/test_tenancy_model.py
            banner "tenancy: forced-tenancy fuzz batch ($REPRO_TENANCY_SEEDS seeds)"
            python -m repro.cli tenants --seeds "$REPRO_TENANCY_SEEDS"
            ;;
        bench)
            if [ "$REPRO_BENCH_GATE" != "1" ]; then
                banner "bench gate: SKIPPED (set REPRO_BENCH_GATE=1 to enable)"
            elif [ ! -f "$REPRO_BENCH_BASELINE" ]; then
                echo "bench gate: baseline $REPRO_BENCH_BASELINE not found" >&2
                exit 1
            else
                banner "bench gate: quick suite vs $REPRO_BENCH_BASELINE" \
                    "(max regress $REPRO_BENCH_MAX_REGRESS)"
                benchdir="$(mktemp -d)"
                trap 'rm -rf "$benchdir"' EXIT
                python -m repro.cli bench --quick --repeats 3 --name verify \
                    --out "$benchdir"
                python -m repro.cli bench \
                    --compare "$REPRO_BENCH_BASELINE" "$benchdir/BENCH_verify.json" \
                    --max-regress "$REPRO_BENCH_MAX_REGRESS"
                rm -rf "$benchdir"
            fi
            ;;
        *)
            echo "unknown stage: $stage" >&2
            exit 2
            ;;
    esac
done

banner "verify: all stages passed"
