#!/usr/bin/env python3
"""Scripted policy head-to-head: every registered policy, one workload.

The campaign behind ``python -m repro.cli policies --compare`` is an
ordinary library call, so it can be scripted: pick a subset of
policies, sweep seeds, post-process the rows. This example runs the
quick campaign on the full registry, prints the markdown table from
docs/policies.md, then narrows to the dynamic controllers and shows how
their wrapper counters (guard clamps / damper exits) respond to seed
variation — the cheap way to sanity-check a re-tuned policy before
committing new golden fixtures.

Run: ``python examples/policy_shootout.py``
"""

from repro.experiments.table4_policies import (
    HEAD_TO_HEAD_POLICIES,
    run_policy_head_to_head,
)


def main() -> None:
    # 1. The full zoo on the documented seed — byte-identical to the
    #    committed fixture tests/golden/policy_head_to_head.csv.
    result = run_policy_head_to_head(seed=1, quick=True)
    print(f"head-to-head, seed 1, {len(HEAD_TO_HEAD_POLICIES)} policies\n")
    print(result.to_markdown())

    # 2. Focus on the wrapped dynamic controllers across a few seeds:
    #    outcomes move with the workload realisation, wrapper activity
    #    should stay the same order of magnitude.
    dynamic = ("pi", "ecoshift", "checkpoint")
    print("\nwrapper activity across seeds (policy: clamps/damper/slowdown)")
    for seed in (1, 2, 3):
        rows = run_policy_head_to_head(seed=seed, quick=True, policies=dynamic).runs
        cells = ", ".join(
            f"{r.policy}: {r.guard_clamps}/{r.damper_exits}/{r.slowdown_exits}"
            for r in rows
        )
        print(f"  seed {seed}: {cells}")


if __name__ == "__main__":
    main()
