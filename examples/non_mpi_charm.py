#!/usr/bin/env python3
"""Power management of a non-MPI (Charm++) application — Figure 7.

Anything launched under a Flux job gets telemetry and power management,
MPI or not. A Charm++ NQueens solver (CPU-only, ``launcher="non-mpi"``)
enters a power-constrained cluster where a 6-node GEMM is running under
proportional sharing; GEMM's share (and node power) drops while NQueens
is in the system and recovers when it leaves.

Run: ``python examples/non_mpi_charm.py``
"""

from repro import Jobspec, ManagerConfig, PowerManagedCluster


def main() -> None:
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=8,
        seed=9,
        manager_config=ManagerConfig(
            global_cap_w=9600.0, policy="proportional", static_node_cap_w=1950.0
        ),
    )
    gemm = cluster.submit(Jobspec(app="gemm", nnodes=6, params={"work_scale": 2.0}))
    # The Charm++ job: +p160, 14 queens, grainsize=1000 (Table I).
    cluster.submit_at(
        Jobspec(app="nqueens", nnodes=2, launcher="non-mpi",
                params={"work_scale": 0.8}),
        when=60.0,
    )
    cluster.run_until_complete(timeout_s=200_000)

    jm = cluster.instance.jobmanager
    nq = next(r for r in jm.jobs.values() if r.spec.app == "nqueens")
    print(f"GEMM (MPI):        6 nodes, ran "
          f"{jm.jobs[gemm.jobid].t_start:.0f}..{jm.jobs[gemm.jobid].t_end:.0f} s")
    print(f"NQueens (Charm++): 2 nodes, ran {nq.t_start:.0f}..{nq.t_end:.0f} s "
          f"(launcher={nq.spec.launcher})")

    timeline = cluster.trace.node_timeline("lassen000")  # a GEMM node

    def avg(lo, hi):
        vals = [w for t, w in timeline if lo <= t <= hi]
        return sum(vals) / len(vals)

    print("\nGEMM node power (Fig 7 shape):")
    print(f"  before NQueens: {avg(10, nq.t_start - 5):7.1f} W")
    print(f"  during NQueens: {avg(nq.t_start + 10, nq.t_end - 10):7.1f} W")
    print(f"  after  NQueens: {avg(nq.t_end + 10, nq.t_end + 120):7.1f} W")

    print("\nNQueens telemetry (CPU-only app; GPUs idle):")
    data = cluster.telemetry(nq.jobid)
    print(f"  avg node {data.mean('node_w'):.1f} W, cpu {data.mean('cpu_w'):.1f} W, "
          f"gpu {data.mean('gpu_w'):.1f} W")


if __name__ == "__main__":
    main()
