#!/usr/bin/env python3
"""A power-managed job queue (Section IV-E).

Generates the paper's queue — 10 jobs mixing Laghos, Quicksilver,
LAMMPS and GEMM at 1-8 nodes each — and runs it on a 16-node
power-constrained Lassen allocation under proportional sharing and
under FPP, comparing makespan and per-job energy.

Run: ``python examples/job_queue_campaign.py``
"""

import numpy as np

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.apps.workloads import make_random_queue

GLOBAL_CAP_W = 19_200.0  # 16 nodes x 1200 W budget density
WORK_SCALES = {"laghos": 22.8, "quicksilver": 22.8, "lammps": 4.56, "gemm": 1.71}


def run_queue(policy: str, seed: int = 10):
    jobs = make_random_queue(
        np.random.default_rng(seed), min_nodes=1, max_nodes=8, work_scales=WORK_SCALES
    )
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=16,
        seed=seed,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=GLOBAL_CAP_W, policy=policy, static_node_cap_w=1950.0
        ),
    )
    records = [cluster.submit(j.spec) for j in jobs]
    cluster.run_until_complete(timeout_s=1_000_000)
    return cluster, records


def main() -> None:
    summaries = {}
    for policy in ("proportional", "fpp"):
        cluster, records = run_queue(policy)
        print(f"\n=== policy: {policy} ===")
        print(f"{'job':<16} {'nodes':>5} {'start':>8} {'end':>8} "
              f"{'time s':>8} {'E/node kJ':>10}")
        energies = []
        for rec in records:
            m = cluster.metrics(rec.jobid)
            energies.append(m.avg_node_energy_kj)
            print(
                f"{rec.spec.label:<16} {m.nnodes:>5} {rec.t_start:>8.1f} "
                f"{rec.t_end:>8.1f} {m.runtime_s:>8.1f} "
                f"{m.avg_node_energy_kj:>10.1f}"
            )
        summaries[policy] = (
            cluster.makespan_s(),
            sum(energies) / len(energies),
        )
        print(f"makespan: {cluster.makespan_s():.1f} s   "
              f"avg E/node per job: {summaries[policy][1]:.1f} kJ")

    p_span, p_e = summaries["proportional"]
    f_span, f_e = summaries["fpp"]
    print("\n=== comparison (paper: same makespan, FPP -1.26% energy) ===")
    print(f"makespan delta: {abs(p_span - f_span):.1f} s "
          f"({abs(p_span - f_span) / p_span * 100:.2f}%)")
    print(f"FPP energy-per-node improvement: {(p_e - f_e) / p_e * 100:+.2f}%")


if __name__ == "__main__":
    main()
