#!/usr/bin/env python3
"""Vendor neutrality: the same client code on three platforms.

The point of building on Variorum (Section II-C): the monitor, the
manager and the client code below are identical across an IBM AC922
(Lassen), an HPE Cray EX235a (Tioga, AMD) and a generic Intel machine —
only the *telemetry domains* differ, reflecting what each vendor's
hardware can measure:

* Lassen: direct node sensor (incl. uncore) + socket + memory + per-GPU
* Tioga: CPU socket + per-OAM (2 GCDs) only; node power is a
  conservative estimate; capping refused for users (early access)
* generic Intel: RAPL sockets + memory, best-effort node capping

Run: ``python examples/vendor_neutral_telemetry.py``
"""

from repro import Jobspec, PowerManagedCluster
from repro import variorum


def show_platform(platform: str) -> None:
    cluster = PowerManagedCluster(platform=platform, n_nodes=2, seed=11, trace=False)
    job = cluster.submit(Jobspec(app="lammps", nnodes=2))
    cluster.run_until_complete(timeout_s=100_000)
    cluster.run_for(4.0)

    node = cluster.nodes[0]
    sample = variorum.get_node_power_json(node, cluster.sim.now)
    print(f"\n=== {platform} ({node.spec.vendor}) ===")
    print("variorum_get_node_power_json keys:")
    for key in sorted(sample):
        print(f"  {key} = {sample[key]}")

    data = cluster.telemetry(job.jobid)
    print(f"job telemetry: avg node {data.mean('node_w'):7.1f} W, "
          f"cpu {data.mean('cpu_w'):6.1f} W, gpu {data.mean('gpu_w'):7.1f} W, "
          f"mem {data.mean('mem_w'):5.1f} W")

    # Capping capability differs per vendor; the API call is the same.
    try:
        result = variorum.cap_best_effort_node_power_limit(node, 1000.0)
        print(f"node cap 1000 W -> {result}")
    except variorum.VariorumError as exc:
        print(f"node cap 1000 W -> refused: {exc}")


def main() -> None:
    for platform in ("lassen", "tioga", "generic"):
        show_platform(platform)


if __name__ == "__main__":
    main()
