#!/usr/bin/env python3
"""A power-managed scientific workflow with a campaign report.

Chains the framework's workflow support end to end: a diamond DAG
(preprocess -> 4-wide compute fan-out -> reduce) runs under proportional
power sharing; a failed variant shows dependency cancellation; the
campaign report summarises everything for the site's power team.

Run: ``python examples/workflow_pipeline.py``
"""

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.analysis.report import summarise_campaign


def main() -> None:
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=8,
        seed=12,
        manager_config=ManagerConfig(
            global_cap_w=9600.0,
            policy="proportional",
            static_node_cap_w=1950.0,
            account_idle_nodes=True,  # whole-cluster budget compliance
        ),
    )

    # Stage 1: preprocessing (CPU-heavy) on 2 nodes.
    pre = cluster.submit(
        Jobspec(app="laghos", nnodes=2, name="preprocess", params={"work_scale": 10})
    )
    # Stage 2: four GEMM ensemble members, each on 2 nodes, after stage 1.
    fan = [
        cluster.submit(
            Jobspec(app="gemm", nnodes=2, name=f"member-{i}",
                    params={"work_scale": 0.5}),
            depends_on=[pre.jobid],
        )
        for i in range(4)
    ]
    # Stage 3: reduction over all members.
    reduce_job = cluster.submit(
        Jobspec(app="laghos", nnodes=4, name="reduce", params={"work_scale": 6}),
        depends_on=[j.jobid for j in fan],
    )
    # A side analysis that depends on a member we crash deliberately —
    # its dependents are cancelled, the pipeline itself is unaffected.
    doomed = cluster.submit(
        Jobspec(app="quicksilver", nnodes=1, name="flaky-probe",
                params={"work_scale": 20, "fail_at_s": 30.0}),
        depends_on=[pre.jobid],
    )
    cluster.submit(
        Jobspec(app="laghos", nnodes=1, name="probe-analysis",
                params={"work_scale": 2}),
        depends_on=[doomed.jobid],
    )

    cluster.run_until_complete(timeout_s=2_000_000)
    cluster.run_for(1.0)

    print("stage timeline:")
    jm = cluster.instance.jobmanager
    for rec in jm.jobs.values():
        print(
            f"  {rec.spec.label:<14} {rec.state.value:<9} "
            f"t={rec.t_start if rec.t_start is not None else float('nan'):8.1f}"
            f"..{rec.t_end:8.1f}"
        )

    print()
    print(summarise_campaign(cluster).render())


if __name__ == "__main__":
    main()
