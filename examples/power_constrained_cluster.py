#!/usr/bin/env python3
"""Dynamic power management on a power-constrained cluster.

Reproduces the Section IV-C/D scenario interactively: an 8-node Lassen
cluster with a 9.6 kW budget runs GEMM (6 nodes, compute-bound) next to
Quicksilver (2 nodes, cap-insensitive) under each policy, and prints a
Table IV-style comparison plus the proportional-sharing power timeline
(Figure 5's shape: GEMM's node power steps up when Quicksilver exits).

Run: ``python examples/power_constrained_cluster.py``
"""

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.analysis.energy import JobMetrics

BUDGET_W = 9600.0

POLICIES = {
    "unconstrained": ManagerConfig(global_cap_w=None, policy="static"),
    "ibm-static-1200W": ManagerConfig(
        global_cap_w=BUDGET_W, policy="static", static_node_cap_w=1200.0
    ),
    "ibm-static-1950W": ManagerConfig(
        global_cap_w=BUDGET_W, policy="static", static_node_cap_w=1950.0
    ),
    "proportional": ManagerConfig(
        global_cap_w=BUDGET_W, policy="proportional", static_node_cap_w=1950.0
    ),
    "fpp": ManagerConfig(
        global_cap_w=BUDGET_W, policy="fpp", static_node_cap_w=1950.0
    ),
}


def run_policy(name: str, config: ManagerConfig):
    cluster = PowerManagedCluster(
        platform="lassen", n_nodes=8, seed=1, manager_config=config
    )
    gemm = cluster.submit(Jobspec(app="gemm", nnodes=6, params={"work_scale": 2.0}))
    qs = cluster.submit(
        Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 26.77})
    )
    cluster.run_until_complete(timeout_s=200_000)
    return cluster, cluster.metrics(gemm.jobid), cluster.metrics(qs.jobid)


def main() -> None:
    print(f"{'policy':<18} " + JobMetrics.header())
    timeline_cluster = None
    for name, config in POLICIES.items():
        cluster, gm, qm = run_policy(name, config)
        for m in (gm, qm):
            print(f"{name:<18} " + m.row())
        if name == "proportional":
            timeline_cluster = (cluster, qm.runtime_s)

    # Figure 5's shape: one GEMM node's power before/after QS exits.
    cluster, qs_end = timeline_cluster
    timeline = cluster.trace.node_timeline("lassen000")
    before = [w for t, w in timeline if 30 <= t <= qs_end - 30]
    after = [w for t, w in timeline if qs_end + 30 <= t <= qs_end + 150]
    print("\nProportional sharing timeline (GEMM node lassen000):")
    print(f"  while Quicksilver runs: {sum(before)/len(before):7.1f} W")
    print(f"  after Quicksilver ends: {sum(after)/len(after):7.1f} W "
          "(share reclaimed, Fig 5)")


if __name__ == "__main__":
    main()
