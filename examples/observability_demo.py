#!/usr/bin/env python3
"""The framework observing itself — metrics, traces, overhead.

The paper's production-grade claim rests partly on Section IV-B:
the monitor costs 0.4 % of node time on average (1.2 % on Lassen,
0.04 % on Tioga). This example runs a power-constrained FPP workload
and then uses :mod:`repro.telemetry` to answer three questions about
the framework itself:

1. What did the control plane do? (metric snapshot: RPC counts and
   latencies, cap updates, FFT runs)
2. Where did the time go? (the paper-style overhead report)
3. What happened, when? (trace events, exported for chrome://tracing)

Run: ``python examples/observability_demo.py``
The same data is available from the CLI: ``python -m repro.cli observe``.
"""

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.analysis.chrome_trace import write_chrome_trace


def main() -> None:
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=8,
        seed=1,
        manager_config=ManagerConfig(
            global_cap_w=9600.0, policy="fpp", static_node_cap_w=1950.0
        ),
    )
    cluster.submit(Jobspec(app="gemm", nnodes=4, params={"work_scale": 2.0}))
    cluster.submit(Jobspec(app="lammps", nnodes=4, params={"work_scale": 2.0}))
    cluster.run_until_complete()

    hub = cluster.telemetry_hub

    # 1. What did the control plane do?
    print("=== metric snapshot " + "=" * 40)
    print(hub.metrics.render())
    rpc = hub.metrics.histogram(
        "flux_rpc_latency_seconds", labels={"topic": "power-manager.set-node-limit"}
    )
    if rpc.count:
        print(
            f"\nset-limit RPC round trip: mean {1e3 * rpc.mean:.2f} ms, "
            f"p99 <= {1e3 * rpc.quantile(0.99):.2f} ms over {rpc.count} calls"
        )

    # 2. Where did the time go? (Section IV-B overhead methodology)
    print("\n=== overhead report " + "=" * 40)
    report = cluster.overhead_report()
    print(report.render())
    print(
        f"monitor measured {report.monitor_overhead_pct:.2f} % vs "
        f"paper's {report.paper_reference_pct():.2f} % on {report.platform}"
    )

    # 3. What happened, when? Load traces.json in chrome://tracing
    # (or https://ui.perfetto.dev) to browse the timeline.
    print("\n=== trace tail " + "=" * 45)
    print(hub.tracer.render(last=8))
    n = write_chrome_trace("observability_traces.json", hub.tracer)
    print(f"\nwrote {n} events to observability_traces.json "
          f"({hub.tracer.dropped} dropped by the ring)")

    # Prometheus-format export, for diffing runs or scraping into
    # an external dashboard.
    with open("observability_metrics.prom", "w") as fh:
        fh.write(hub.metrics.to_prometheus())
    print("wrote metric exposition to observability_metrics.prom")


if __name__ == "__main__":
    main()
