#!/usr/bin/env python3
"""Quickstart: job power telemetry on a simulated Lassen cluster.

Builds a 4-node IBM AC922 (Lassen) cluster with ``flux-power-monitor``
loaded, runs one Quicksilver job, and fetches the job's power telemetry
through the external client — the same workflow a user performs on a
real Flux system:

.. code-block:: console

   $ flux module load flux-power-monitor
   $ flux submit -N2 qs ...
   $ flux-power-monitor-client <jobid> > job_power.csv

Run: ``python examples/quickstart.py``
"""

from repro import Jobspec, PowerManagedCluster


def main() -> None:
    # A 4-node Lassen-like cluster; the monitor samples Variorum every
    # 2 s on every node into a circular buffer (stateless node agents).
    cluster = PowerManagedCluster(platform="lassen", n_nodes=4, seed=7)

    # Submit a 2-node Quicksilver run (the paper's periodic-phase app).
    job = cluster.submit(
        Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 8.0})
    )
    cluster.run_until_complete()
    cluster.run_for(4.0)  # a couple more sampling ticks past job end

    # Exact job metrics from the simulator.
    m = cluster.metrics(job.jobid)
    print("Job metrics")
    print("  " + m.header())
    print("  " + m.row())

    # Telemetry as the external client sees it: per-node samples with a
    # complete/partial data flag, exportable as CSV.
    data = cluster.telemetry(job.jobid)
    print(f"\nTelemetry: {len(data.rows)} samples from {len(data.hostnames)} nodes "
          f"(complete={data.complete})")
    print(f"  avg node power: {data.mean('node_w'):7.1f} W")
    print(f"  avg GPU power:  {data.mean('gpu_w'):7.1f} W")
    print(f"  avg CPU power:  {data.mean('cpu_w'):7.1f} W")
    print(f"  max node power: {data.max_node_power_w():7.1f} W")

    csv = data.to_csv()
    print("\nFirst CSV lines:")
    for line in csv.splitlines()[:5]:
        print("  " + line)

    out = "quickstart_job_power.csv"
    data.write_csv(out)
    print(f"\nFull CSV written to ./{out}")


if __name__ == "__main__":
    main()
