#!/usr/bin/env python3
"""Writing a custom power policy (user-level customisation).

The paper's framework lets each user pick or write the power policy for
their own Flux instance. This example implements a simple *history-
based* policy — cap each GPU slightly above its recent peak draw,
reclaiming headroom that the workload never uses — deploys it behind
the NRM-style ``PolicySafetyWrapper`` (the recommended way to ship any
dynamic controller; see docs/policies.md), and compares it with
proportional sharing on a mixed workload.

Run: ``python examples/custom_policy.py``
"""

from collections import deque
from typing import Optional

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.manager.policies import PolicySafetyWrapper
from repro.manager.policies.base import PowerPolicy


class HistoryHeadroomPolicy(PowerPolicy):
    """Cap each GPU at (recent peak + margin), within the node share.

    A deliberately simple dynamic policy: it watches the last N power
    samples per GPU and sets the cap a fixed margin above the observed
    peak — cheap insurance against demand spikes, while not leaving the
    full share allocated to GPUs that never use it.
    """

    name = "history-headroom"

    def __init__(self, window: int = 15, margin_w: float = 20.0) -> None:
        super().__init__()
        self.window = window
        self.margin_w = margin_w
        self._history = []

    def attach(self, manager) -> None:
        super().attach(manager)
        self._history = [deque(maxlen=self.window) for _ in range(manager.gpu_count)]

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        if limit_w is None:
            self.manager.clear_gpu_caps()
            return
        self.manager.enforce_limit_via_gpus(limit_w)  # share is the ceiling

    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        share_cap = (
            self.manager.derive_gpu_share(self.manager.node_limit_w)
            if self.manager.node_limit_w is not None
            else self.manager.gpu_cap_range[1]
        )
        lo, hi = self.manager.gpu_cap_range
        for i, w in enumerate(gpu_w):
            self._history[i].append(w)
            if len(self._history[i]) >= self.window:
                cap = min(max(max(self._history[i]) + self.margin_w, lo), share_cap, hi)
                self.manager.set_gpu_cap(i, cap)


def guarded_history_headroom() -> PolicySafetyWrapper:
    """Factory: the custom policy behind the NRM-style guardrails.

    The wrapper attaches the inner policy to a guarded proxy of the node
    manager, so even a buggy cap computation cannot leave the device box
    or starve a GPU more than ``slowdown``× below its fair share. A
    generous ``slowdown`` suits this policy — squeezing idle GPUs is its
    whole point.
    """
    return PolicySafetyWrapper(HistoryHeadroomPolicy(), damper=0.05, slowdown=3.0)


def run(policy_name: str, policy_factory=None):
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=8,
        seed=3,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=9600.0,
            policy="proportional" if policy_factory is None else "static",
            static_node_cap_w=1950.0,
        ),
    )
    if policy_factory is not None:
        # Replace the node policy everywhere (user-level customisation).
        cluster.manager.detach()
        from repro.manager.module import attach_manager

        cluster.manager = attach_manager(
            cluster.instance,
            ManagerConfig(
                global_cap_w=9600.0, policy="proportional", static_node_cap_w=1950.0
            ),
            policy_factory=policy_factory,
        )
    jobs = [
        cluster.submit(Jobspec(app="gemm", nnodes=4, params={"work_scale": 1.5})),
        cluster.submit(
            Jobspec(app="quicksilver", nnodes=4, params={"work_scale": 20.0})
        ),
    ]
    cluster.run_until_complete(timeout_s=200_000)
    total_e = sum(
        cluster.metrics(j.jobid).avg_node_energy_kj * j.spec.nnodes for j in jobs
    )
    spans = [cluster.metrics(j.jobid).runtime_s for j in jobs]
    return total_e, spans


def main() -> None:
    base_e, base_t = run("proportional")
    custom_e, custom_t = run("safe-history-headroom", guarded_history_headroom)
    print(f"{'policy':<22} {'total energy kJ':>16} {'runtimes s':>20}")
    print(f"{'proportional':<22} {base_e:>16.0f} {str([round(t) for t in base_t]):>20}")
    print(
        f"{'safe-history-headroom':<22} {custom_e:>16.0f} "
        f"{str([round(t) for t in custom_t]):>20}"
    )
    print(f"\nenergy delta: {(custom_e - base_e) / base_e * 100:+.2f}%")


if __name__ == "__main__":
    main()
