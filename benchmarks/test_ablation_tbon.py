"""Ablation: TBON fan-out and aggregation strategy for job telemetry.

Not a paper table — a design-space probe of the substrate: how does the
tree arity and the root agent's collection strategy (flat fan-out, the
paper's implementation, versus hierarchical subtree aggregation) affect
the simulated latency of a job-power query on a 64-node instance?
"""

from conftest import emit, run_once

from repro.flux.instance import FluxInstance
from repro.monitor.module import attach_monitor
from repro.monitor.root_agent import GET_JOB_POWER_TOPIC

N_NODES = 64


def _query_latency(fanout: int, strategy: str, seed: int = 3) -> float:
    inst = FluxInstance(platform="lassen", n_nodes=N_NODES, seed=seed, fanout=fanout)
    attach_monitor(inst, strategy=strategy)
    inst.run_for(10.0)
    t0 = inst.sim.now
    fut = inst.brokers[0].rpc(
        0,
        GET_JOB_POWER_TOPIC,
        {"ranks": list(range(N_NODES)), "t_start": 0.0, "t_end": 10.0},
    )
    while not fut.triggered:
        if not inst.sim.step():
            raise RuntimeError("drained")
    assert len(fut.value["nodes"]) == N_NODES
    return inst.sim.now - t0


def test_ablation_tbon_fanout_and_strategy(benchmark):
    def sweep():
        out = {}
        for fanout in (2, 4, 8, 16):
            for strategy in ("fanout", "tree"):
                out[(fanout, strategy)] = _query_latency(fanout, strategy)
        return out

    results = run_once(benchmark, sweep)
    lines = [f"{'fanout':>6} {'strategy':<8} {'query latency (sim ms)':>22}"]
    for (fanout, strategy), latency in sorted(results.items()):
        lines.append(f"{fanout:>6} {strategy:<8} {latency * 1e3:>22.3f}")
    emit("Ablation — 64-node job-power query over the TBON", lines)

    # Wider trees are shallower: latency must not grow with fanout.
    for strategy in ("fanout", "tree"):
        assert results[(16, strategy)] <= results[(2, strategy)] * 1.1
    # All latencies are sub-5ms of simulated time (hop latency 100 us).
    assert all(v < 5e-3 for v in results.values())
