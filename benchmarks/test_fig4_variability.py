"""Regenerates Figure 4: run-to-run variability at low node counts.

Paper reference: Laghos and Quicksilver spread by >20% of the median at
1-2 Lassen nodes — whether or not the monitor is loaded — while other
cells are tight. This is what explains the Fig 3 outliers.
"""

from conftest import emit, run_once

from repro.experiments import calibration as cal
from repro.experiments.fig4_variability import run_fig4


def test_fig4_run_to_run_variability(benchmark):
    result = run_once(benchmark, run_fig4)
    emit("Fig 4 — runtime spread (max-min)/median per cell", result.table_rows())
    high = result.high_variability_cells(cal.VARIABILITY_THRESHOLD_PCT)
    emit("Fig 4 — cells exceeding 20% spread", [str(c) for c in high])

    flagged_apps = {(app, platform) for (app, platform, _) in high}
    assert ("laghos", "lassen") in flagged_apps
    assert ("quicksilver", "lassen") in flagged_apps
    # Only low node counts are flagged, and only on Lassen.
    assert all(platform == "lassen" and n <= 2 for (_, platform, n) in high)
    # The variability exists with AND without the monitor (paper's point).
    for key in high:
        cell = result.cells[key]
        assert cell.monitor_off.spread_pct > 10.0
