"""Ablation: FPP parameters (the paper's stated future work).

Section IV-D: "We also did not explore FPP parameters, such as the
power capping interval (90 seconds) or the ranges for power caps (50 W
for power reduction, 10-25 W steps) in this paper. Exploring this
research space ... is part of our future work."

This bench sweeps the control interval and the probe depth on the
Table IV workload and reports energy/runtime per setting.
"""

from dataclasses import replace

from conftest import emit, run_once

from repro.analysis.energy import combined_energy_kj
from repro.cluster import PowerManagedCluster
from repro.experiments import calibration as cal
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig
from repro.manager.policies import FPPParams


def _run_fpp(params: FPPParams, seed: int = 1):
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=cal.CLUSTER_NODES,
        seed=seed,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=cal.GLOBAL_POWER_CAP_W,
            policy="fpp",
            static_node_cap_w=1950.0,
        ),
        fpp_params=params,
    )
    g = cluster.submit(
        Jobspec(app="gemm", nnodes=6, params={"work_scale": cal.GEMM_WORK_SCALE})
    )
    q = cluster.submit(
        Jobspec(
            app="quicksilver",
            nnodes=2,
            params={"work_scale": cal.QUICKSILVER_WORK_SCALE},
        )
    )
    cluster.run_until_complete(timeout_s=200_000)
    metrics = [cluster.metrics(g.jobid), cluster.metrics(q.jobid)]
    return {
        "gemm_s": metrics[0].runtime_s,
        "qs_s": metrics[1].runtime_s,
        "energy_kj": combined_energy_kj(metrics),
    }


def test_ablation_powercap_interval(benchmark):
    base = FPPParams()

    def sweep():
        return {
            interval: _run_fpp(replace(base, powercap_time_s=interval))
            for interval in (45.0, 90.0, 180.0)
        }

    results = run_once(benchmark, sweep)
    lines = [f"{'interval s':>10} {'GEMM s':>9} {'QS s':>8} {'energy kJ':>10}"]
    for interval, r in results.items():
        lines.append(
            f"{interval:>10.0f} {r['gemm_s']:>9.1f} {r['qs_s']:>8.1f} "
            f"{r['energy_kj']:>10.0f}"
        )
    emit("Ablation — FPP power-capping interval (paper default 90 s)", lines)
    # Any interval must stay within a sane band of the default outcome.
    e90 = results[90.0]["energy_kj"]
    for r in results.values():
        assert abs(r["energy_kj"] - e90) / e90 < 0.10


def test_ablation_probe_depth(benchmark):
    base = FPPParams()

    def sweep():
        return {
            reduce_w: _run_fpp(replace(base, p_reduce_w=reduce_w))
            for reduce_w in (25.0, 50.0, 100.0)
        }

    results = run_once(benchmark, sweep)
    lines = [f"{'P_reduce W':>10} {'GEMM s':>9} {'QS s':>8} {'energy kJ':>10}"]
    for reduce_w, r in results.items():
        lines.append(
            f"{reduce_w:>10.0f} {r['gemm_s']:>9.1f} {r['qs_s']:>8.1f} "
            f"{r['energy_kj']:>10.0f}"
        )
    emit("Ablation — FPP probe depth P_reduce (paper default 50 W)", lines)
    # Deeper probes slow GEMM more (or equal) than shallow ones.
    assert results[100.0]["gemm_s"] >= results[25.0]["gemm_s"] - 2.0


def test_ablation_no_initial_probe(benchmark):
    def sweep():
        return {
            "probe": _run_fpp(FPPParams(initial_probe=True)),
            "no_probe": _run_fpp(FPPParams(initial_probe=False)),
        }

    results = run_once(benchmark, sweep)
    emit(
        "Ablation — FPP with/without the initial probe reduction",
        [
            f"{k:<9} GEMM {r['gemm_s']:7.1f} s  energy {r['energy_kj']:7.0f} kJ"
            for k, r in results.items()
        ],
    )
    # Without probing, FPP can never reduce power: it degenerates to
    # proportional sharing (same or higher energy).
    assert results["no_probe"]["gemm_s"] <= results["probe"]["gemm_s"] + 2.0
