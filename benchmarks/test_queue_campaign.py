"""Regenerates Section IV-E: policy impact on a real job queue.

Paper reference: 10 jobs (3 Laghos, 2 Quicksilver, 3 LAMMPS, 2 GEMM;
1-8 nodes each) on a 16-node allocation; makespan 1539 s under both
proportional sharing and FPP; FPP improves average per-job
energy-per-node by 1.26%.
"""

import pytest
from conftest import emit, run_once

from repro.experiments import calibration as cal
from repro.experiments.queue_campaign import run_queue_campaign


def test_queue_campaign(benchmark):
    result = run_once(benchmark, run_queue_campaign, seed=10)
    emit("Section IV-E — 10-job queue on 16 nodes", result.table_rows())
    imp = result.fpp_energy_improvement_pct()
    emit(
        "Section IV-E — summary",
        [
            f"makespans equal (<=10 s): {result.makespans_equal()}",
            f"FPP energy-per-node improvement: {imp:+.2f}% (paper +1.26%)",
            f"makespan vs paper: "
            f"{result.runs['proportional'].makespan_s:.1f} / {cal.QUEUE_MAKESPAN_S}",
        ],
    )
    assert result.makespans_equal(tolerance_s=10.0)
    assert result.runs["proportional"].makespan_s == pytest.approx(
        cal.QUEUE_MAKESPAN_S, rel=0.05
    )
    assert imp > 0.2
