"""Regenerates Table IV: static versus dynamic power capping.

Paper reference (Table IV, Lassen 8-node cluster, 9.6 kW budget):

    policy            GEMM: maxW / time / E    QS: maxW / time / E
    unconstrained     1523 / 548 / 726         952 / 348 / 177
    IBM default 1200   841 / 1145 / 805        820 / 359 / 160
    static 1950       1330 / 564 / 652         975 / 347 / 175
    proportional      1343 / 597 / 612         939 / 347 / 170
    FPP               1325 / 602 / 598         951 / 350 / 174

Headline claims: FPP -1.2% energy vs proportional (-0.8% perf);
-20% energy and 1.58x speedup vs the IBM default.
"""

from conftest import emit, run_once

from repro.experiments.table4_policies import run_table4


def test_table4_policy_comparison(benchmark):
    result = run_once(benchmark, run_table4, seed=1)
    emit("Table IV — policy comparison (measured/paper)", result.table_rows())
    claims = result.headline_claims()
    emit(
        "Table IV — headline claims",
        [f"{k}: {v:+.2f}" for k, v in claims.items()],
    )
    # Shape assertions: orderings the paper reports.
    t = {k: v.metrics["gemm"].runtime_s for k, v in result.scenarios.items()}
    e = {k: v.combined_energy_kj() for k, v in result.scenarios.items()}
    assert t["ibm_default_1200"] > 1.5 * t["static_1950"]
    assert e["fpp"] < e["proportional"] < e["static_1950"]
    assert claims["fpp_vs_prop_energy_pct"] < 0
    assert claims["fpp_vs_ibm_energy_pct"] < -10
