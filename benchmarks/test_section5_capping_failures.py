"""Regenerates the Section V observation: intermittent NVML failures.

Paper reference (Discussion): at low node caps "NVIDIA GPU power
capping failed intermittently, either picking up the last set power cap
or defaulting to the maximum power cap ... we observed in our
experiments that [reliable vendor capping] is often not the case."

This bench injects that failure mode at increasing rates and audits
share enforcement — quantifying exactly the reliability gap the paper
says delays production adoption.
"""

from conftest import emit, run_once

from repro.experiments.section5_failures import run_failure_sweep, table_rows


def test_section5_flaky_nvml_capping(benchmark):
    results = run_once(benchmark, run_failure_sweep)
    emit("Section V — NVML capping failure injection", table_rows(results))

    healthy = results[0.0]
    flaky = results[0.25]
    # A healthy driver enforces shares essentially everywhere.
    assert healthy.nvml_failures == 0
    assert healthy.violation_fraction < 0.02
    # Flaky capping produces real violations and more peak power.
    assert flaky.nvml_failures > 0
    assert flaky.violation_fraction > healthy.violation_fraction
    assert flaky.worst_violation_w > 50.0
    # Failures scale with the configured rate.
    assert results[0.10].nvml_failures > results[0.02].nvml_failures
