"""Regenerates Figure 2: telemetry while scaling on Lassen and Tioga.

Paper reference shapes: weak-scaled apps (Quicksilver, Laghos) hold
per-node power flat from 1-32 nodes; strong-scaled LAMMPS *drops*
(mostly GPU power); Tioga reads higher absolute power (8 GCDs) but has
no memory/node sensor (conservative CPU+OAM sum).
"""

from conftest import emit, run_once

from repro.experiments.fig2_scaling import run_fig2


def test_fig2_scaling_sweep(benchmark):
    result = run_once(benchmark, run_fig2)
    emit("Fig 2 — per-component average power vs node count", result.table_rows())

    # LAMMPS (strong) power declines with scale on both systems.
    for platform in ("lassen", "tioga"):
        series = result.series("lammps", platform)
        powers = [w for _, w in series]
        assert powers[0] > powers[-1] + 100.0, platform

    # Weak-scaled apps stay flat (within 6%).
    for app in ("quicksilver", "laghos"):
        series = result.series(app, "lassen")
        powers = [w for _, w in series]
        assert max(powers) / min(powers) < 1.06, app

    # Tioga draws more than Lassen for LAMMPS at equal node count.
    assert result.cell("lammps", "tioga", 4).avg_node_w > result.cell(
        "lammps", "lassen", 4
    ).avg_node_w

    # Tioga node power is an estimate (no node sensor), Lassen's is not.
    assert result.cell("laghos", "tioga", 4).node_is_estimate
    assert not result.cell("laghos", "lassen", 4).node_is_estimate
