"""Regenerates Table II: Lassen versus Tioga at 4 and 8 nodes.

Paper reference: LAMMPS -21.5% per-node energy on Tioga; Laghos +139%
(double the tasks under weak scaling); Quicksilver anomalous (~8x
runtime, HIP variant) so its energy is not compared.
"""

import pytest
from conftest import emit, run_once

from repro.experiments.table2_cross_system import run_table2


def test_table2_cross_system(benchmark):
    result = run_once(benchmark, run_table2)
    emit("Table II — cross-system comparison (measured/paper)", result.table_rows())

    assert result.energy_change_pct("lammps", 4) == pytest.approx(-21.5, abs=4.0)
    assert result.energy_change_pct("laghos", 4) == pytest.approx(139.0, abs=15.0)

    # Quicksilver energy not comparable (anomalous HIP runtime ~8x).
    with pytest.raises(ValueError):
        result.energy_change_pct("quicksilver", 4)
    ratio = (
        result.cells[("quicksilver", 4, "tioga")].runtime_s
        / result.cells[("quicksilver", 4, "lassen")].runtime_s
    )
    assert 7.0 < ratio < 9.0
