"""Regenerates Figure 3: overhead of flux-power-monitor.

Paper reference: average overhead 1.2% on Lassen (inflated by
run-to-run variability at 1-2 nodes: Laghos 6.2%/8.2%, Quicksilver
9.3%) and 0.04% on Tioga; the abstract's headline average is 0.4%.
"""

from conftest import emit, run_once

from repro.experiments import calibration as cal
from repro.experiments.fig3_overhead import run_fig3


def test_fig3_monitor_overhead(benchmark):
    result = run_once(benchmark, run_fig3)
    emit("Fig 3 — monitor overhead per app x node count", result.table_rows())
    lassen = result.platform_average_pct("lassen")
    tioga = result.platform_average_pct("tioga")
    emit(
        "Fig 3 — platform averages (measured vs paper)",
        [
            f"lassen: {lassen:+.2f}%  (paper {cal.OVERHEAD_AVG_PCT['lassen']}%)",
            f"tioga:  {tioga:+.3f}%  (paper {cal.OVERHEAD_AVG_PCT['tioga']}%)",
        ],
    )
    # Lassen average is percent-scale (inflated by low-node outliers);
    # Tioga is an order of magnitude lower.
    assert 0.5 < lassen < 3.0
    assert abs(tioga) < 0.3
    assert tioga < lassen
    # The paper's outlier cells stand out above the true overhead.
    for (app, n) in cal.OVERHEAD_OUTLIERS_PCT:
        assert result.cell(app, "lassen", n).overhead_pct > 2.0
