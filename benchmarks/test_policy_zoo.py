"""Extension bench: the full policy family on the Table IV workload.

Beyond the paper's four rows, compares every node policy the framework
ships — including the history-based policy the paper names but does not
evaluate ("policies based on past power history"). History capping
tracks each GPU's recent peak, so it reclaims headroom on the
cap-insensitive Quicksilver without touching GEMM's performance.
"""

from conftest import emit, run_once

from repro.analysis.energy import combined_energy_kj
from repro.cluster import PowerManagedCluster
from repro.experiments import calibration as cal
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig

POLICIES = ("proportional", "fpp", "history")


def _run(policy: str, seed: int = 1) -> dict:
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=cal.CLUSTER_NODES,
        seed=seed,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=cal.GLOBAL_POWER_CAP_W,
            policy=policy,
            static_node_cap_w=1950.0,
        ),
    )
    g = cluster.submit(
        Jobspec(app="gemm", nnodes=6, params={"work_scale": cal.GEMM_WORK_SCALE})
    )
    q = cluster.submit(
        Jobspec(
            app="quicksilver",
            nnodes=2,
            params={"work_scale": cal.QUICKSILVER_WORK_SCALE},
        )
    )
    cluster.run_until_complete(timeout_s=2_000_000)
    gm, qm = cluster.metrics(g.jobid), cluster.metrics(q.jobid)
    return {
        "gemm_s": gm.runtime_s,
        "qs_s": qm.runtime_s,
        "energy_kj": combined_energy_kj([gm, qm]),
    }


def test_policy_zoo(benchmark):
    def sweep():
        return {p: _run(p) for p in POLICIES}

    results = run_once(benchmark, sweep)
    lines = [f"{'policy':<14} {'GEMM s':>9} {'QS s':>8} {'energy kJ':>10}"]
    for policy, r in results.items():
        lines.append(
            f"{policy:<14} {r['gemm_s']:>9.1f} {r['qs_s']:>8.1f} "
            f"{r['energy_kj']:>10.0f}"
        )
    emit("Extension — policy family on the Table IV workload", lines)

    # History never slows Quicksilver (caps above demand) and tracks
    # proportional's GEMM runtime closely.
    assert results["history"]["qs_s"] <= results["proportional"]["qs_s"] * 1.02
    assert results["history"]["gemm_s"] <= results["proportional"]["gemm_s"] * 1.05
    # FPP remains the energy winner of the family on this workload.
    assert results["fpp"]["energy_kj"] <= min(
        results["proportional"]["energy_kj"], results["history"]["energy_kj"]
    ) * 1.01
