"""Extension bench: telemetry scalability to full-machine size.

The paper's framework is presented as *scalable*; its evaluation stops
at 32 nodes. This bench queries a whole-machine job's power on
simulated instances up to Lassen's full 792 nodes and compares the
root's flat fan-out (the paper's implementation) with hierarchical
tree aggregation.
"""

from conftest import emit, run_once

from repro.experiments.scalability import run_scalability


def test_telemetry_scalability(benchmark):
    result = run_once(benchmark, run_scalability)
    emit("Extension — whole-machine telemetry query vs instance size",
         result.table_rows())

    for strategy in ("fanout", "tree"):
        small = result.cell(32, strategy)
        full = result.cell(792, strategy)
        # Latency grows sub-linearly with size (tree depth is log N).
        assert full.query_latency_s < small.query_latency_s * (792 / 32)
        # Every node answered.
        assert full.samples_returned >= 792 * 30  # 60 s window at 2 s

    # Tree aggregation relieves the root: far fewer root-link messages.
    assert (
        result.cell(792, "tree").root_messages
        < result.cell(792, "fanout").root_messages / 10
    )
