"""Extension bench: open (Poisson) arrivals — converged computing.

The paper's Section VI lists "studying diverse job queues in converged
computing setups" as future work. This bench runs the same application
mix as a Poisson arrival stream on a power-constrained 16-node cluster
and compares proportional sharing with FPP under steady churn.
"""

from conftest import emit, run_once

from repro.experiments.converged_queue import run_converged_queue


def test_converged_open_arrivals(benchmark):
    result = run_once(benchmark, run_converged_queue, seed=5, n_jobs=20)
    emit("Extension — Poisson arrivals (converged computing)", result.table_rows())
    emit(
        "Extension — summary",
        [f"FPP energy-per-node delta: {result.fpp_energy_improvement_pct():+.2f}%"],
    )
    prop = result.runs["proportional"]
    fpp = result.runs["fpp"]
    # Both policies complete the same workload; makespans stay close
    # (arrival-dominated) and shares churn far more than in the drained
    # batch queue.
    assert prop.n_jobs == fpp.n_jobs == 20
    assert abs(prop.makespan_s - fpp.makespan_s) / prop.makespan_s < 0.05
    assert prop.share_changes > 10
