"""Engine hot-path micro-benchmarks (``pytest benchmarks/perf -m bench -s``).

These are the same measurements ``repro bench`` records in
``BENCH_<name>.json``; the pytest wrappers exist so the perf suite can
ride the normal test runner. They carry the ``bench`` marker and
``benchmarks/`` is outside tier-1 ``testpaths``, so they never slow
down the default ``pytest`` run.
"""

from __future__ import annotations

import pytest

from repro.bench.suites import engine_cancel_churn, engine_periodic, engine_prescheduled

pytestmark = pytest.mark.bench


@pytest.mark.parametrize(
    "fn", [engine_prescheduled, engine_periodic, engine_cancel_churn]
)
def test_engine_micro(fn):
    results = fn(True)
    assert results
    for r in results:
        print(f"{r.benchmark}: {r.value:,.0f} {r.metric} ({r.wall_s:.3f} s)")
        assert r.value > 0
        assert r.wall_s > 0
