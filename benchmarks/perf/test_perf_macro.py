"""Macro perf benchmarks: paper-scale scalability query and a policy run.

Run with ``pytest benchmarks/perf -m bench -s``. Quick-sized here; the
full 792-node measurement is taken by ``repro bench`` (no ``--quick``).
"""

from __future__ import annotations

import pytest

from repro.bench.suites import scalability_query, table4_policy

pytestmark = pytest.mark.bench


def test_scalability_query_quick():
    results = scalability_query(True)
    names = {r.benchmark for r in results}
    assert names == {"scalability_fanout", "scalability_tree", "scalability_sweep"}
    for r in results:
        print(f"{r.benchmark}: {r.value:.3f} {r.metric}")
        assert r.wall_s > 0


def test_table4_policy():
    (result,) = table4_policy(True)
    print(f"{result.benchmark}: {result.value:.3f} {result.metric}")
    assert result.wall_s > 0
