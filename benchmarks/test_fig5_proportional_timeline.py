"""Regenerates Figure 5: proportional power sharing timeline.

Paper reference: with GEMM (6 nodes) and Quicksilver (2 nodes) sharing
a 9.6 kW budget, GEMM's node power steps up when Quicksilver finishes —
per-node share 1200 W -> 1600 W.
"""

from conftest import emit, run_once

from repro.analysis.plotting import ascii_timeline
from repro.experiments.table4_policies import run_policy_scenario


def test_fig5_proportional_sharing_timeline(benchmark):
    res = run_once(benchmark, run_policy_scenario, "proportional", seed=1)
    qs_end = res.metrics["quicksilver"].runtime_s
    gemm_end = res.metrics["gemm"].runtime_s
    gemm_host = sorted(res.timelines)[0]
    tl = res.timelines[gemm_host]

    before = [w for t, w in tl if 30.0 <= t <= qs_end - 30.0]
    after = [w for t, w in tl if qs_end + 30.0 <= t <= gemm_end - 10.0]
    avg_before = sum(before) / len(before)
    avg_after = sum(after) / len(after)
    emit(
        "Fig 5 — proportional sharing timeline (one GEMM node)",
        [
            f"share transitions: {[(round(t,1), n, s) for t, n, s in res.share_log]}",
            f"GEMM node power while QS running: {avg_before:7.1f} W",
            f"GEMM node power after QS exits:   {avg_after:7.1f} W",
            f"QS end at t={qs_end:.1f} s; GEMM end at t={gemm_end:.1f} s",
            ascii_timeline(
                {"gemm-node": tl, "qs-node": res.timelines[sorted(res.timelines)[1]]},
                t_range=(0.0, gemm_end),
            ),
        ],
    )
    assert avg_after > avg_before + 50.0
    shares = [s for (_, _, s) in res.share_log if s is not None]
    assert any(abs(s - 1200.0) < 1 for s in shares)
    assert any(abs(s - 1600.0) < 1 for s in shares)
