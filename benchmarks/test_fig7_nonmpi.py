"""Regenerates Figure 7: proportional capping on a non-MPI job.

Paper reference: a Charm++ NQueens application (2 nodes) runs alongside
GEMM (6 nodes); GEMM power drops when NQueens enters the system and
recovers when it leaves — the framework treats non-MPI jobs identically.
"""

from conftest import emit, run_once

from repro.analysis.plotting import ascii_timeline
from repro.experiments.fig7_nonmpi import run_fig7


def test_fig7_nonmpi_proportional_capping(benchmark):
    res = run_once(benchmark, run_fig7, seed=9)
    before = res.gemm_power_before_w()
    during = res.gemm_power_during_w()
    after = res.gemm_power_after_w()
    emit(
        "Fig 7 — GEMM + Charm++ NQueens under proportional capping",
        [
            f"NQueens (non-MPI) in system: t={res.nqueens_start_s:.1f}"
            f"..{res.nqueens_end_s:.1f} s",
            f"GEMM node power before NQueens: {before:7.1f} W",
            f"GEMM node power during NQueens: {during:7.1f} W",
            f"GEMM node power after NQueens:  {after:7.1f} W",
            ascii_timeline(
                {"gemm-node": res.gemm_timeline, "nqueens-node": res.nqueens_timeline},
                t_range=(0.0, res.gemm_runtime_s),
            ),
        ],
    )
    assert during < before - 40.0
    assert after > during + 40.0
