"""Benchmark harness configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints paper-versus-measured rows. Experiments are deterministic
discrete-event simulations, so a single round is meaningful; the
benchmark timing reflects the harness cost of regenerating the artefact.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with one warm round (deterministic experiments)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, lines) -> None:
    """Print a regenerated table under a banner (visible with -s)."""
    bar = "=" * 78
    print(f"\n{bar}\n{title}\n{bar}")
    for line in lines:
        print(line)
