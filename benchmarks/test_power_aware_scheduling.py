"""Extension bench: power-aware admission versus plain FCFS.

Composes the paper's proportional-sharing manager with an admission
filter (related-work territory: SLURM power-aware scheduling plugins):
don't start a job if it would dilute every running job's share below a
floor. Under a tight budget, plain FCFS packs the machine and throttles
everything deeply; power-aware admission runs fewer jobs at healthier
operating points.
"""

from conftest import emit, run_once

from repro.analysis.energy import combined_energy_kj
from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig
from repro.manager.power_aware_sched import PowerAwareScheduler

TIGHT_BUDGET_W = 6400.0  # 8 nodes but only ~2 can run near peak GEMM draw
N_NODES = 8


def _run(power_aware: bool, seed: int = 15) -> dict:
    factory = None
    if power_aware:
        factory = lambda size: PowerAwareScheduler(  # noqa: E731
            size, global_cap_w=TIGHT_BUDGET_W, min_share_w=1100.0
        )
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=N_NODES,
        seed=seed,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=TIGHT_BUDGET_W,
            policy="proportional",
            static_node_cap_w=1950.0,
        ),
        scheduler_factory=factory,
    )
    jobs = [
        cluster.submit(Jobspec(app="gemm", nnodes=2, params={"work_scale": 0.75}))
        for _ in range(4)
    ]
    cluster.run_until_complete(timeout_s=2_000_000)
    metrics = [cluster.metrics(j.jobid) for j in jobs]
    held = getattr(cluster.instance.scheduler, "held_jobs", 0)
    return {
        "makespan_s": float(cluster.makespan_s()),
        "energy_kj": combined_energy_kj(metrics),
        "mean_job_s": sum(m.runtime_s for m in metrics) / len(metrics),
        "held": held,
    }


def test_power_aware_admission(benchmark):
    def sweep():
        return {"fcfs": _run(False), "power-aware": _run(True)}

    results = run_once(benchmark, sweep)
    lines = [
        f"{'mode':<12} {'makespan s':>11} {'mean job s':>11} "
        f"{'energy kJ':>10} {'holds':>6}"
    ]
    for mode, r in results.items():
        lines.append(
            f"{mode:<12} {r['makespan_s']:>11.1f} {r['mean_job_s']:>11.1f} "
            f"{r['energy_kj']:>10.0f} {r['held']:>6}"
        )
    emit(
        f"Extension — power-aware admission (budget {TIGHT_BUDGET_W:.0f} W)",
        lines,
    )
    fcfs = results["fcfs"]
    pa = results["power-aware"]
    # The filter actually held jobs back...
    assert pa["held"] > 0
    # ...which keeps individual jobs at healthier operating points.
    assert pa["mean_job_s"] < fcfs["mean_job_s"]
    # Work completes either way; total energy does not regress much.
    assert pa["energy_kj"] <= fcfs["energy_kj"] * 1.05
