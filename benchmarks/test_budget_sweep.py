"""Extension bench: the power-budget Pareto curve.

Sweeps the 8-node cluster budget from a deep constraint (6.4 kW) to
unconstrained under proportional sharing on the Table IV workload —
the overprovisioning trade-off [28] behind the whole line of work:
tighter budgets stretch the compute-bound job while the cap-insensitive
one barely moves, and the marginal performance cost of shaving kilowatts
shrinks near the top.
"""

from conftest import emit, run_once

from repro.experiments.budget_sweep import run_budget_sweep


def test_budget_pareto_sweep(benchmark):
    result = run_once(benchmark, run_budget_sweep)
    emit("Extension — cluster budget sweep (proportional sharing)",
         result.table_rows())

    pts = result.points
    budgets = [p.budget_w for p in pts]
    assert budgets[-1] is None  # unconstrained endpoint
    # Makespan decreases monotonically as the budget loosens.
    spans = [p.makespan_s for p in pts]
    assert all(a >= b - 1.0 for a, b in zip(spans, spans[1:]))
    # The constraint binds only below the workload's natural peak draw:
    # at 12 kW+ the workload runs as if unconstrained.
    unconstrained = pts[-1].makespan_s
    assert pts[-2].makespan_s == __import__("pytest").approx(
        unconstrained, rel=0.02
    )
    # Allocated-node power respects each budget while it binds; the raw
    # cluster max additionally carries idle nodes' ~400 W (the paper's
    # share formula divides P_G over allocated nodes only).
    for p in pts[:-1]:
        assert p.max_allocated_kw <= p.budget_w / 1e3 * 1.03
