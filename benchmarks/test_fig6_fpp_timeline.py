"""Regenerates Figure 6: the FPP timeline.

Paper reference: "FPP algorithm converges quickly for both applications,
as there is not a lot of opportunity to save power while preserving
performance" — Quicksilver's stable period converges its controllers at
the probed cap (which sits above its demand, so no performance effect);
GEMM probes, restores, and settles near its share ceiling.
"""

from conftest import emit, run_once

from repro.analysis.plotting import ascii_timeline
from repro.experiments.table4_policies import run_policy_scenario


def test_fig6_fpp_timeline(benchmark):
    res = run_once(benchmark, run_policy_scenario, "fpp", seed=1)
    gemm_end = res.metrics["gemm"].runtime_s
    qs_end = res.metrics["quicksilver"].runtime_s
    hosts = sorted(res.timelines)
    lines = [f"jobs: GEMM ends {gemm_end:.1f} s, QS ends {qs_end:.1f} s"]
    for host in hosts:
        tl = res.timelines[host]
        head = [w for t, w in tl if 0 < t <= 90]
        tail = [w for t, w in tl if max(0, qs_end - 100) <= t <= qs_end - 4]
        lines.append(
            f"{host}: first-90s avg {sum(head)/len(head):7.1f} W, "
            f"pre-QS-end avg {sum(tail)/len(tail):7.1f} W"
        )
    lines.append(
        ascii_timeline(
            {f"node-{h}": res.timelines[h] for h in hosts},
            t_range=(0.0, gemm_end),
        )
    )
    emit("Fig 6 — FPP timeline (one node per job)", lines)

    # Both jobs complete within a few percent of the proportional-share
    # runtimes (the paper's Table IV deltas), i.e. FPP converged rather
    # than oscillating.
    assert res.metrics["gemm"].runtime_s < 548.0 * 1.10
    assert res.metrics["quicksilver"].runtime_s < 348.0 * 1.03
