"""Monitor sizing and telemetry-path microbenchmarks.

Section III-A: the default circular buffer stores 100,000 Variorum JSON
samples in 43.4 MiB. This bench verifies the sizing arithmetic against
real serialised samples and times the node-agent hot path (one Variorum
read + buffer append), the cost that underlies the overhead model.
"""

import pytest
from conftest import emit, run_once

from repro import variorum
from repro.experiments import calibration as cal
from repro.hardware.platforms.lassen import make_lassen_node
from repro.monitor.buffer import CircularBuffer, DEFAULT_SAMPLE_BYTES


def test_buffer_sizing_matches_paper(benchmark):
    node = make_lassen_node("n0")

    def measure():
        samples = [variorum.get_node_power_json(node, float(t)) for t in range(200)]
        return sum(variorum.sample_bytes_estimate(s) for s in samples) / len(samples)

    avg_bytes = run_once(benchmark, measure)
    projected_mib = avg_bytes * cal.MONITOR_BUFFER_SAMPLES / (1024 * 1024)
    nominal_mib = (
        DEFAULT_SAMPLE_BYTES * cal.MONITOR_BUFFER_SAMPLES / (1024 * 1024)
    )
    emit(
        "Monitor buffer sizing (Section III-A)",
        [
            f"measured avg serialised sample: {avg_bytes:.0f} B",
            f"projected buffer ({cal.MONITOR_BUFFER_SAMPLES} samples): "
            f"{projected_mib:.1f} MiB (paper: {cal.MONITOR_BUFFER_MB} MiB)",
            f"nominal accounting constant: {nominal_mib:.1f} MiB",
        ],
    )
    assert nominal_mib == pytest.approx(cal.MONITOR_BUFFER_MB, abs=0.1)
    # Real serialised samples are the same order of magnitude.
    assert 200 <= avg_bytes <= 700


def test_sampling_hot_path(benchmark):
    """Time the per-sample work a node agent does every 2 s."""
    node = make_lassen_node("n0")
    buf = CircularBuffer()
    clock = iter(range(10_000_000))

    def one_sample():
        t = float(next(clock))
        buf.append(t, variorum.get_node_power_json(node, t))

    benchmark(one_sample)
    assert len(buf) > 0


def test_range_bisect_vs_linear_scan(benchmark):
    """Window query on a full 100k buffer: bisect vs the old O(n) scan.

    The node agent answers every aggregation query through
    ``CircularBuffer.range``; on a full buffer a narrow window (a short
    job on a long-lived agent) used to scan all 100k retained samples.
    """
    buf = CircularBuffer()
    for t in range(buf.capacity + 5_000):  # force a wrap too
        buf.append(float(t), {"t": t})
    t0, t1 = 100_000.0, 100_060.0  # 61-sample window in retained history

    def linear_scan():
        return [
            (ts, s)
            for ts, s in buf.snapshot()
            if t0 <= ts <= t1
        ]

    expected = linear_scan()
    got = run_once(benchmark, buf.range, t0, t1)
    samples, complete = got
    assert [s["t"] for s in samples] == [s["t"] for _, s in expected]
    assert len(samples) == 61 and complete

    import time

    reps = 200
    start = time.perf_counter()
    for _ in range(reps):
        buf.range(t0, t1)
    bisect_s = (time.perf_counter() - start) / reps
    start = time.perf_counter()
    scan = linear_scan()
    scan_s = time.perf_counter() - start
    emit(
        "CircularBuffer.range on a full 100k ring (61-sample window)",
        [
            f"bisect-backed range: {bisect_s * 1e6:8.1f} us",
            f"full linear scan:    {scan_s * 1e6:8.1f} us",
            f"speedup:             {scan_s / max(bisect_s, 1e-12):8.0f}x",
        ],
    )
    assert len(scan) == 61
    assert bisect_s < scan_s
