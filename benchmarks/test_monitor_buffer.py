"""Monitor sizing and telemetry-path microbenchmarks.

Section III-A: the default circular buffer stores 100,000 Variorum JSON
samples in 43.4 MiB. This bench verifies the sizing arithmetic against
real serialised samples and times the node-agent hot path (one Variorum
read + buffer append), the cost that underlies the overhead model.
"""

import pytest
from conftest import emit, run_once

from repro import variorum
from repro.experiments import calibration as cal
from repro.hardware.platforms.lassen import make_lassen_node
from repro.monitor.buffer import CircularBuffer, DEFAULT_SAMPLE_BYTES


def test_buffer_sizing_matches_paper(benchmark):
    node = make_lassen_node("n0")

    def measure():
        samples = [variorum.get_node_power_json(node, float(t)) for t in range(200)]
        return sum(variorum.sample_bytes_estimate(s) for s in samples) / len(samples)

    avg_bytes = run_once(benchmark, measure)
    projected_mib = avg_bytes * cal.MONITOR_BUFFER_SAMPLES / (1024 * 1024)
    nominal_mib = (
        DEFAULT_SAMPLE_BYTES * cal.MONITOR_BUFFER_SAMPLES / (1024 * 1024)
    )
    emit(
        "Monitor buffer sizing (Section III-A)",
        [
            f"measured avg serialised sample: {avg_bytes:.0f} B",
            f"projected buffer ({cal.MONITOR_BUFFER_SAMPLES} samples): "
            f"{projected_mib:.1f} MiB (paper: {cal.MONITOR_BUFFER_MB} MiB)",
            f"nominal accounting constant: {nominal_mib:.1f} MiB",
        ],
    )
    assert nominal_mib == pytest.approx(cal.MONITOR_BUFFER_MB, abs=0.1)
    # Real serialised samples are the same order of magnitude.
    assert 200 <= avg_bytes <= 700


def test_sampling_hot_path(benchmark):
    """Time the per-sample work a node agent does every 2 s."""
    node = make_lassen_node("n0")
    buf = CircularBuffer()
    clock = iter(range(10_000_000))

    def one_sample():
        t = float(next(clock))
        buf.append(t, variorum.get_node_power_json(node, t))

    benchmark(one_sample)
    assert len(buf) > 0
