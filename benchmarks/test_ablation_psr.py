"""Ablation: IBM's Power Shifting Ratio (PSR).

Section II-A: "The ratio of distribution can be modified using the
Power Shifting Ratio (PSR), which ranges from 0% to 100% on each
socket. In this paper, the PSR is always set to 100 (default), implying
maximum power share to the GPUs." The paper never varies it; this
ablation does: lower PSR hands less of the node budget to the GPUs, so
a GPU-bound application slows down at the same node cap.
"""

import pytest
from conftest import emit, run_once

from repro.apps.registry import get_profile
from repro.apps.run import AppRun
from repro.flux.jobspec import JobRecord, Jobspec
from repro.hardware.firmware import ibm_derived_gpu_cap
from repro.hardware.platforms.lassen import make_lassen_node
from repro.simkernel import Simulator

NODE_CAP_W = 1950.0


def _gemm_under_psr(psr: float) -> dict:
    sim = Simulator()
    node = make_lassen_node("n0")
    node.opal.psr = psr
    derived = node.opal.set_node_power_cap(NODE_CAP_W)
    record = JobRecord(jobid=1, spec=Jobspec(app="gemm", nnodes=1))
    run = AppRun(sim, record, [node], get_profile("gemm"))
    sim.run(until=20_000.0)
    assert run.finished
    return {
        "derived_gpu_cap_w": derived,
        "runtime_s": run.runtime_s,
        "energy_kj": run.avg_node_energy_j / 1e3,
    }


def test_ablation_power_shifting_ratio(benchmark):
    def sweep():
        return {psr: _gemm_under_psr(psr) for psr in (0.0, 25.0, 50.0, 75.0, 100.0)}

    results = run_once(benchmark, sweep)
    lines = [f"{'PSR %':>5} {'GPU cap W':>10} {'GEMM s':>9} {'energy kJ':>10}"]
    for psr, r in sorted(results.items()):
        lines.append(
            f"{psr:>5.0f} {r['derived_gpu_cap_w']:>10.0f} "
            f"{r['runtime_s']:>9.1f} {r['energy_kj']:>10.0f}"
        )
    emit(f"Ablation — IBM PSR at a {NODE_CAP_W:.0f} W node cap", lines)

    # PSR=100 reproduces the paper's derivation; lower PSR -> lower caps.
    assert results[100.0]["derived_gpu_cap_w"] == pytest.approx(253.0, abs=1.0)
    caps = [results[p]["derived_gpu_cap_w"] for p in (0.0, 25.0, 50.0, 75.0, 100.0)]
    assert caps == sorted(caps)
    assert caps[0] == 100.0  # clamped to the GPU floor at PSR=0
    # GPU-bound GEMM is monotonically faster with more GPU share.
    times = [results[p]["runtime_s"] for p in (0.0, 50.0, 100.0)]
    assert times[0] > times[1] > times[2]
    # The derivation helper agrees with the firmware.
    assert results[50.0]["derived_gpu_cap_w"] == pytest.approx(
        ibm_derived_gpu_cap(NODE_CAP_W, psr=50.0), abs=0.1
    )
