"""What-if: Tioga with user power capping enabled.

Section II-A notes capping "has not been enabled for users on this
early access system" — but the hardware supports CPU- and OAM-level
caps, and El Capitan-class systems will expose them. This bench flips
the E-SMI gate on and runs proportional sharing on Tioga, exercising
the AMD enforcement path end to end (per-OAM caps, 2 GCDs per dial).
"""

from conftest import emit, run_once

from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig


def _run(capping_enabled: bool, seed: int = 13) -> dict:
    cluster = PowerManagedCluster(
        platform="tioga",
        n_nodes=4,
        seed=seed,
        manager_config=ManagerConfig(
            global_cap_w=4000.0, node_peak_w=2800.0, policy="proportional"
        ),
    )
    for node in cluster.nodes:
        node.esmi.user_capping_enabled = capping_enabled
    job = cluster.submit(Jobspec(app="lammps", nnodes=4))
    cluster.run_until_complete(timeout_s=500_000)
    m = cluster.metrics(job.jobid)
    failures = sum(
        nm.cap_request_failures for nm in cluster.manager.node_managers
    )
    return {
        "runtime_s": m.runtime_s,
        "max_node_w": m.max_node_power_w,
        "energy_kj": m.avg_node_energy_kj,
        "cap_failures": failures,
    }


def test_whatif_tioga_user_capping(benchmark):
    def sweep():
        return {
            "refused (early access)": _run(False),
            "enabled (what-if)": _run(True),
        }

    results = run_once(benchmark, sweep)
    lines = [
        f"{'mode':<24} {'time s':>8} {'max node W':>11} "
        f"{'E/node kJ':>10} {'cap failures':>13}"
    ]
    for mode, r in results.items():
        lines.append(
            f"{mode:<24} {r['runtime_s']:>8.1f} {r['max_node_w']:>11.0f} "
            f"{r['energy_kj']:>10.1f} {r['cap_failures']:>13}"
        )
    emit("What-if — Tioga with user capping enabled (1000 W shares)", lines)

    refused = results["refused (early access)"]
    enabled = results["enabled (what-if)"]
    # Early access: every cap request is refused; job runs unthrottled.
    assert refused["cap_failures"] > 0
    assert enabled["cap_failures"] == 0
    # With capping enabled the 1000 W/node share is actually enforced.
    assert enabled["max_node_w"] < refused["max_node_w"] - 100.0
    assert enabled["runtime_s"] > refused["runtime_s"]
