"""Regenerates Figure 1: single-node power timelines on Lassen.

Paper reference: Quicksilver shows pronounced periodic phase behaviour
(bursts over a low baseline); LAMMPS is flat with no swings. Node, one
socket and one GPU are plotted; we print series summaries plus the
FFT-detected period.
"""

from conftest import emit, run_once

from repro.analysis.plotting import ascii_timeline
from repro.experiments.fig1_timeline import run_fig1


def _summarise(res):
    lines = []
    for name, series in res.series.items():
        vals = [w for _, w in series]
        lines.append(
            f"{res.app:<12} {name:<5} samples={len(vals):>4} "
            f"min={min(vals):7.1f} W  max={max(vals):7.1f} W"
        )
    lines.append(
        f"{res.app:<12} swing={res.swing_w():.0f} W  "
        f"FFT period={res.dominant_period_s():.1f} s"
    )
    # Render the first ~2 minutes, like the paper's figure window.
    lines.append(ascii_timeline(res.series, t_range=(0.0, 120.0)))
    return lines


def test_fig1_quicksilver_timeline(benchmark):
    res = run_once(benchmark, run_fig1, "quicksilver", work_scale=10)
    emit("Fig 1b — Quicksilver on Lassen (1 node, 4 GPUs)", _summarise(res))
    assert 17.0 <= res.dominant_period_s() <= 23.0  # periodic phases
    assert res.swing_w() > 300.0


def test_fig1_lammps_timeline(benchmark):
    res = run_once(benchmark, run_fig1, "lammps", work_scale=2)
    emit("Fig 1a — LAMMPS on Lassen (1 node, 4 GPUs)", _summarise(res))
    assert res.dominant_period_s() == 0.0  # flat timeline
