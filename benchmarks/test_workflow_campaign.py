"""Extension bench: power-managed workflow DAGs (future work §VI).

A diamond workflow (preprocess -> 4-wide GEMM fan-out -> reduce) on an
8-node, 9.6 kW cluster. Static caps must be sized for the widest stage
and throttle the narrow stages too; proportional sharing hands the idle
budget to whichever stage is active.
"""

from conftest import emit, run_once

from repro.experiments.workflow_campaign import run_workflow_campaign


def test_workflow_power_management(benchmark):
    result = run_once(benchmark, run_workflow_campaign, seed=12)
    emit("Extension — diamond workflow under power policies", result.table_rows())
    for name, run in result.runs.items():
        emit(
            f"Extension — {name} stage starts",
            [f"{k}: t={v:.1f} s" for k, v in run.stage_starts.items()],
        )
    static = result.runs["static"]
    prop = result.runs["proportional"]
    # Stage ordering held everywhere (DAG respected).
    for run in result.runs.values():
        assert run.stage_starts["preprocess"] < run.stage_starts["fanout"]
        assert run.stage_starts["fanout"] < run.stage_starts["reduce"]
    # Proportional sharing beats the conservative static cap on makespan:
    # the fan-out stage gets the full budget instead of 1200 W/node caps.
    assert prop.makespan_s < static.makespan_s * 0.95
