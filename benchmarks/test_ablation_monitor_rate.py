"""Ablation: monitor sampling interval versus overhead and coverage.

The paper fixes 2 s sampling and a 100k-sample buffer. This bench
sweeps the interval: faster sampling costs proportionally more overhead
(the Section IV-B model) and shortens the history the ring buffer can
retain, which governs when clients see 'partial' job data.
"""

import pytest
from conftest import emit, run_once

from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec
from repro.monitor.buffer import DEFAULT_CAPACITY
from repro.monitor.module import attach_monitor
from repro.monitor.overhead import sampling_overhead_fraction


def _measure(interval_s: float, seed: int = 6) -> dict:
    inst = FluxInstance(platform="lassen", n_nodes=2, seed=seed)
    mon = attach_monitor(inst, sample_interval_s=interval_s)
    rec = inst.submit(Jobspec(app="laghos", nnodes=2, params={"work_scale": 4.0}))
    inst.run_until_complete()
    runtime = inst.app_runs[rec.jobid].runtime_s
    return {
        "runtime_s": runtime,
        "overhead_frac": mon.agent_for_rank(0).node_overhead_fraction,
        "history_days": DEFAULT_CAPACITY * interval_s / 86400.0,
    }


def test_ablation_sampling_interval(benchmark):
    intervals = (0.5, 1.0, 2.0, 5.0)

    def sweep():
        return {i: _measure(i) for i in intervals}

    results = run_once(benchmark, sweep)
    lines = [
        f"{'interval s':>10} {'overhead %':>11} {'runtime s':>10} "
        f"{'buffer history (days)':>21}"
    ]
    for i, r in sorted(results.items()):
        lines.append(
            f"{i:>10.1f} {r['overhead_frac']*100:>11.3f} {r['runtime_s']:>10.2f} "
            f"{r['history_days']:>21.2f}"
        )
    emit("Ablation — monitor sampling interval (paper default 2 s)", lines)

    # Overhead scales inversely with the interval...
    assert results[0.5]["overhead_frac"] == pytest.approx(
        4 * results[2.0]["overhead_frac"], rel=0.01
    )
    # ...and shows up in measured runtimes.
    assert results[0.5]["runtime_s"] > results[5.0]["runtime_s"]
    # The paper's default retains > 2 days of history per node.
    assert results[2.0]["history_days"] > 2.0


def test_overhead_model_constants(benchmark):
    """The 2 s defaults give the platform overheads the model asserts."""
    lassen = benchmark(lambda: sampling_overhead_fraction("lassen", 2.0))
    assert lassen == pytest.approx(0.0035)
    assert sampling_overhead_fraction("tioga", 2.0) == pytest.approx(0.0004)
