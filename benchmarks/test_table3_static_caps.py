"""Regenerates Table III: static IBM node-level power allocation.

Paper reference (8-node Lassen, GEMM 6n + Quicksilver 2n):

    node cap W   derived GPU cap W   max kW   avg kW
    3050 (unc.)  300                 10.66    8.9
    1200         100                  6.05    5.1
    1800         216                  8.68    7.2
    1950         253                  9.5     7.9
"""

from conftest import emit, run_once

from repro.experiments import calibration as cal
from repro.experiments.table3_static import run_table3


def test_table3_static_power_allocation(benchmark):
    result = run_once(benchmark, run_table3, seed=1)
    emit("Table III — static IBM node caps (measured/paper)", result.table_rows())
    for cap, (gpu_ref, max_ref, _avg_ref) in cal.TABLE3.items():
        row = result.rows[cap]
        assert row.derived_gpu_cap_w == __import__("pytest").approx(gpu_ref, abs=2.0)
        assert row.max_cluster_kw == __import__("pytest").approx(max_ref, rel=0.10)
