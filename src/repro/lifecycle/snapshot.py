"""Versioned snapshot/restore of manager + monitor state.

A crashed power manager loses its books: job shares, per-rank caps,
dead-rank sets, policy controller state, federation allocations. This
module serialises all of it into one schema-versioned JSON artifact so
a manager restarted mid-run continues enforcing exactly where the dead
one stopped — without re-deriving caps (and therefore without the
re-fanned RPC storm and cap churn a cold re-derivation causes).

Layering: every stateful component owns a ``snapshot_state()`` /
``restore_state()`` pair (total: ``restore_state({})`` is the amnesiac
wipe); this module only composes them into an envelope, validates the
schema, and round-trips JSON. The restore contract is **equivalence**:
``wipe → restore`` at any instant leaves the run's remaining telemetry
byte-identical to never having crashed (fuzzed across seeds by
:mod:`repro.lifecycle.recovery`). That forces two properties on every
component: restores mutate state *in place* (replacing modules, policy
objects or timers would shift event phases) and restores are *silent*
(no metrics, traces, or cap writes).

Schema versioning: :data:`SCHEMA_FIELDS` is the exhaustive key-set per
section, fingerprinted into :data:`SCHEMA_FINGERPRINTS`. Changing any
section's fields without bumping :data:`SCHEMA_VERSION` (and appending
the new fingerprint) fails :func:`schema_lint` — wired into
``tools/verify.sh`` so the artifact format cannot drift silently.
Restores refuse artifacts from a different schema version; see
docs/lifecycle.md for the compatibility rules.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional

#: Bump when any SCHEMA_FIELDS section changes, and append the new
#: fingerprint to SCHEMA_FINGERPRINTS (keep the old ones: they document
#: which key-sets historical artifacts carry).
SCHEMA_VERSION = 1

#: Exhaustive key-set of every snapshot section. Producers are checked
#: against this at snapshot time (exact match); consumers stay lenient
#: (``.get``-based) so tests can strip sections to model naive restores.
SCHEMA_FIELDS: Dict[str, tuple] = {
    "cluster_envelope": (
        "schema_version",
        "kind",
        "t",
        "scenario",
        "manager",
        "node_managers",
        "agents",
    ),
    "site_envelope": ("schema_version", "kind", "t", "site", "clusters"),
    "manager": ("config", "lifecycle", "share_log", "jobs", "assignment_log"),
    "job": ("jobid", "ranks", "job_limit_w"),
    "node_manager": (
        "rank",
        "node_limit_w",
        "current_jobid",
        "non_gpu_est_w",
        "non_cpu_est_w",
        "recent_non_gpu",
        "recent_non_cpu",
        "recent_mem",
        "recent",
        "last_gpu_caps",
        "last_socket_caps",
        "cap_request_failures",
        "policy",
    ),
    "policy": ("name", "state"),
    "monitor": ("rank", "t_loaded", "samples_taken", "buffer"),
    "buffer": ("capacity", "total_appended", "entries"),
    "lifecycle": ("entity_kind", "states", "log"),
    "site": (
        "site_budget_w",
        "assigned_shares",
        "expected_total_w",
        "last_rebalance_t",
        "budget_log",
        "expected_jobs",
        "event_down_ranks",
        "cluster_down",
        "lifecycle",
    ),
}

#: version -> sha256 of the canonical SCHEMA_FIELDS encoding. The lint
#: recomputes the live fingerprint and demands it appear here under the
#: current SCHEMA_VERSION.
SCHEMA_FINGERPRINTS: Dict[int, str] = {
    1: "783b7fc1d6b61f386320e2a3c8396799f031de4964f12e9c2ca1ba65c8047cca",
}


def schema_fingerprint(fields: Optional[Mapping[str, tuple]] = None) -> str:
    """Canonical digest of the schema's section -> key-set map."""
    fields = SCHEMA_FIELDS if fields is None else fields
    canon = json.dumps(
        {section: sorted(keys) for section, keys in fields.items()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


def schema_lint() -> List[str]:
    """Problems with the schema-version bookkeeping (empty = clean)."""
    problems: List[str] = []
    live = schema_fingerprint()
    pinned = SCHEMA_FINGERPRINTS.get(SCHEMA_VERSION)
    if pinned is None:
        problems.append(
            f"SCHEMA_VERSION {SCHEMA_VERSION} has no entry in SCHEMA_FINGERPRINTS"
        )
    elif pinned != live:
        problems.append(
            "SCHEMA_FIELDS changed without a version bump: fingerprint "
            f"{live} != pinned {pinned} for version {SCHEMA_VERSION}; "
            "bump SCHEMA_VERSION and append the new fingerprint"
        )
    if max(SCHEMA_FINGERPRINTS) != SCHEMA_VERSION:
        problems.append(
            f"SCHEMA_VERSION {SCHEMA_VERSION} is not the newest fingerprint "
            f"entry ({max(SCHEMA_FINGERPRINTS)})"
        )
    return problems


class SnapshotError(RuntimeError):
    """A malformed, incompatible, or inapplicable snapshot artifact."""


def _validate_keys(section: str, payload: Mapping[str, Any]) -> Mapping[str, Any]:
    """Exact key-set check at *production* time.

    Catches a component growing state without the schema (and its
    version) following — the failure mode the lint exists for — while
    leaving restore lenient for deliberately stripped test artifacts.
    """
    expected = set(SCHEMA_FIELDS[section])
    actual = set(payload)
    if actual != expected:
        raise SnapshotError(
            f"snapshot section {section!r} key mismatch: "
            f"missing={sorted(expected - actual)} extra={sorted(actual - expected)}"
        )
    return payload


def _module_live(broker, module) -> bool:
    """True when *this* module object is the one loaded on the broker.

    A crashed broker unloads its modules; a restarted one loads fresh
    objects. Either way the stale handle in the deployment list must
    not be snapshotted or restored into.
    """
    return (
        module is not None
        and module.name in broker.modules
        and broker.modules[module.name] is module
    )


# ----------------------------------------------------------------------
# Cluster snapshots
# ----------------------------------------------------------------------
def snapshot_cluster(cluster, scenario=None) -> Dict[str, Any]:
    """Serialise one cluster's management state into an envelope.

    Dead ranks are skipped (their state died with the broker — the
    restored run must believe exactly what the crashed manager knew).
    ``scenario`` optionally embeds the generating scenario's dict so an
    on-disk artifact is self-describing for the CLI restore path.
    """
    manager_state = None
    node_managers: Dict[str, Any] = {}
    if cluster.manager is not None:
        root = cluster.manager.cluster
        if _module_live(root.broker, root):
            manager_state = _validate_keys("manager", root.snapshot_state())
            for job in manager_state["jobs"]:
                _validate_keys("job", job)
            _validate_keys("lifecycle", manager_state["lifecycle"])
        for rank, nm in enumerate(cluster.manager.node_managers):
            if not _module_live(cluster.instance.brokers[rank], nm):
                continue
            nm_state = _validate_keys("node_manager", nm.snapshot_state())
            _validate_keys("policy", nm_state["policy"])
            node_managers[str(rank)] = nm_state
    agents: Dict[str, Any] = {}
    if cluster.monitor is not None:
        for rank, agent in enumerate(cluster.monitor.node_agents):
            if not _module_live(cluster.instance.brokers[rank], agent):
                continue
            agent_state = _validate_keys("monitor", agent.snapshot_state())
            _validate_keys("buffer", agent_state["buffer"])
            agents[str(rank)] = agent_state
    return _validate_keys(
        "cluster_envelope",
        {
            "schema_version": SCHEMA_VERSION,
            "kind": "cluster",
            "t": cluster.sim.now,
            "scenario": scenario.to_dict() if scenario is not None else None,
            "manager": manager_state,
            "node_managers": node_managers,
            "agents": agents,
        },
    )


def _check_envelope(snap: Mapping[str, Any], kind: str) -> None:
    version = snap.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SnapshotError(
            f"snapshot schema version {version!r} != supported {SCHEMA_VERSION}"
        )
    if snap.get("kind") != kind:
        raise SnapshotError(
            f"snapshot kind {snap.get('kind')!r} is not a {kind} artifact"
        )


def restore_cluster(cluster, snap: Mapping[str, Any]) -> None:
    """Rehydrate a cluster's live management modules from an envelope.

    The cluster must be deployment-compatible with the artifact: same
    schema version and (when both run a manager) the same policy name —
    restoring a PI integral into an EcoShift controller is a config
    error, not a recovery. Ranks that died since the snapshot are
    skipped; live modules absent from the artifact are wiped (the
    artifact is the complete truth about the crashed manager).
    """
    _check_envelope(snap, "cluster")
    manager_state = snap.get("manager")
    if cluster.manager is not None:
        root = cluster.manager.cluster
        if manager_state is not None:
            snap_policy = (manager_state.get("config") or {}).get("policy")
            if snap_policy is not None and snap_policy != root.config.policy:
                raise SnapshotError(
                    f"snapshot policy {snap_policy!r} != deployed "
                    f"{root.config.policy!r}"
                )
        if _module_live(root.broker, root):
            root.restore_state(dict(manager_state or {}))
        saved_nms = snap.get("node_managers") or {}
        for rank, nm in enumerate(cluster.manager.node_managers):
            if not _module_live(cluster.instance.brokers[rank], nm):
                continue
            nm.restore_state(dict(saved_nms.get(str(rank)) or {}))
    saved_agents = snap.get("agents") or {}
    if cluster.monitor is not None:
        for rank, agent in enumerate(cluster.monitor.node_agents):
            if not _module_live(cluster.instance.brokers[rank], agent):
                continue
            agent.restore_state(dict(saved_agents.get(str(rank)) or {}))


def wipe_cluster_state(cluster) -> None:
    """Amnesiac wipe: what a restarted manager with no artifact knows.

    Every live component resets to its fresh-boot state (empty books,
    all-available lifecycle, empty rings). The crash-recovery fuzz uses
    wipe → restore to prove the artifact alone carries continuation.
    """
    if cluster.manager is not None:
        root = cluster.manager.cluster
        if _module_live(root.broker, root):
            root.restore_state({})
        for rank, nm in enumerate(cluster.manager.node_managers):
            if _module_live(cluster.instance.brokers[rank], nm):
                nm.restore_state({})
    if cluster.monitor is not None:
        for rank, agent in enumerate(cluster.monitor.node_agents):
            if _module_live(cluster.instance.brokers[rank], agent):
                agent.restore_state({})


# ----------------------------------------------------------------------
# Site snapshots
# ----------------------------------------------------------------------
def snapshot_site(site) -> Dict[str, Any]:
    """Serialise a federated site: its bookkeeping + every member cluster."""
    return _validate_keys(
        "site_envelope",
        {
            "schema_version": SCHEMA_VERSION,
            "kind": "site",
            "t": site.sim.now,
            "site": _validate_keys("site", site.snapshot_state()),
            "clusters": {
                name: snapshot_cluster(cluster)
                for name, cluster in sorted(site.clusters.items())
            },
        },
    )


def restore_site(site, snap: Mapping[str, Any]) -> None:
    _check_envelope(snap, "site")
    saved = snap.get("clusters") or {}
    unknown = set(saved) - set(site.clusters)
    if unknown:
        raise SnapshotError(f"snapshot names unknown clusters: {sorted(unknown)}")
    site.restore_state(dict(snap.get("site") or {}))
    for name, cluster in sorted(site.clusters.items()):
        cluster_snap = saved.get(name)
        if cluster_snap is None:
            wipe_cluster_state(cluster)
        else:
            restore_cluster(cluster, cluster_snap)


def wipe_site_state(site) -> None:
    site.restore_state({})
    for cluster in site.clusters.values():
        wipe_cluster_state(cluster)


# ----------------------------------------------------------------------
# Artifact I/O and diffing
# ----------------------------------------------------------------------
def save_snapshot(snap: Mapping[str, Any], path) -> None:
    """Write an artifact as canonical JSON (sorted keys, trailing NL)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snap, fh, sort_keys=True, indent=2)
        fh.write("\n")


def load_snapshot(path) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        snap = json.load(fh)
    if not isinstance(snap, dict):
        raise SnapshotError(f"{path}: snapshot artifact must be a JSON object")
    return snap


def diff_snapshots(
    a: Mapping[str, Any], b: Mapping[str, Any], prefix: str = ""
) -> List[str]:
    """Dotted paths where two artifacts disagree (empty = identical).

    Values are compared exactly — Python floats round-trip JSON
    losslessly, so exact equality is the right bar for an artifact
    whose contract is byte-identical continuation.
    """
    diffs: List[str] = []
    keys = sorted(set(a) | set(b))
    for key in keys:
        path = f"{prefix}.{key}" if prefix else str(key)
        if key not in a:
            diffs.append(f"{path}: only in second")
        elif key not in b:
            diffs.append(f"{path}: only in first")
        else:
            va, vb = a[key], b[key]
            if isinstance(va, Mapping) and isinstance(vb, Mapping):
                diffs.extend(diff_snapshots(va, vb, path))
            elif va != vb:
                diffs.append(f"{path}: {_summarise(va)} != {_summarise(vb)}")
    return diffs


def _summarise(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 60 else text[:57] + "..."
