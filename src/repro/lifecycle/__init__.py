"""Node/cluster lifecycle and crash-recoverable manager state.

Three pieces (see docs/lifecycle.md):

* :mod:`repro.lifecycle.machine` — the guarded enroll → available →
  degraded / maintenance → retired state machine the managers book
  against;
* :mod:`repro.lifecycle.snapshot` — the schema-versioned JSON artifact
  carrying manager + monitor + policy + federation state across a
  manager crash;
* :mod:`repro.lifecycle.recovery` — the crash-at-random-tick fuzz
  proving restore-equivalence against uninterrupted-run digests.
"""

from repro.lifecycle.machine import (
    AVAILABLE,
    DEGRADED,
    ENROLL,
    MAINTENANCE,
    RETIRED,
    STATES,
    TRANSITIONS,
    LifecycleError,
    LifecycleRegistry,
)
from repro.lifecycle.snapshot import (
    SCHEMA_FIELDS,
    SCHEMA_FINGERPRINTS,
    SCHEMA_VERSION,
    SnapshotError,
    diff_snapshots,
    load_snapshot,
    restore_cluster,
    restore_site,
    save_snapshot,
    schema_fingerprint,
    schema_lint,
    snapshot_cluster,
    snapshot_site,
    wipe_cluster_state,
    wipe_site_state,
)

__all__ = [
    "AVAILABLE",
    "DEGRADED",
    "ENROLL",
    "MAINTENANCE",
    "RETIRED",
    "STATES",
    "TRANSITIONS",
    "LifecycleError",
    "LifecycleRegistry",
    "RecoveryBatchResult",
    "RecoveryResult",
    "SCHEMA_FIELDS",
    "SCHEMA_FINGERPRINTS",
    "SCHEMA_VERSION",
    "SnapshotError",
    "crash_restore_setup",
    "diff_snapshots",
    "fuzz_recovery",
    "load_snapshot",
    "restore_cluster",
    "restore_site",
    "run_scenario_with_recovery",
    "save_snapshot",
    "schema_fingerprint",
    "schema_lint",
    "snapshot_cluster",
    "snapshot_site",
    "wipe_cluster_state",
    "wipe_site_state",
]

#: Recovery re-exports resolve lazily (PEP 562): the fuzz harness
#: imports the simtest stack, which imports the managers, which import
#: this package — an eager import here would be circular.
_RECOVERY_EXPORTS = (
    "RecoveryBatchResult",
    "RecoveryResult",
    "crash_restore_setup",
    "fuzz_recovery",
    "run_scenario_with_recovery",
)


def __getattr__(name):
    if name in _RECOVERY_EXPORTS:
        from repro.lifecycle import recovery

        return getattr(recovery, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
