"""Explicit node/cluster lifecycle state machine.

Managers previously tracked liveness with an ad-hoc dead-rank set; this
module replaces that with the provisioning-style state machine the
production-lifecycle roadmap item calls for (the way Ironic models
bare-metal nodes):

    enroll ──► available ◄──► degraded
                  │  ▲            │
                  ▼  └────────────┤
              maintenance ────────┤
                  │               ▼
                  └─────────► retired

* **enroll** — known to the manager but not yet managed (pre-load).
* **available** — healthy: may be booked into job power shares.
* **degraded** — the event stream says the management plane is down
  (``broker.down``); excluded from new bookings, drained from old ones.
* **maintenance** — operator-held: drained and excluded, but expected
  back. A broker event overrides the operator's intent (a node that
  crashes in maintenance is degraded — the event stream is the ground
  truth for health, maintenance only records intent).
* **retired** — terminal; never booked again.

Transitions are guarded (:data:`TRANSITIONS`); an illegal edge raises
:class:`LifecycleError`. The registry is a **pure observer** of the
simulation: it sends no messages, draws no randomness and schedules no
events, so attaching it cannot perturb a run — it only emits
``lifecycle_*`` metrics and trace instants (and those are gated by the
telemetry hub's enabled flag like every other series).

Snapshot/restore (see :mod:`repro.lifecycle.snapshot`) serialises the
state map and transition log; restore is silent (no metrics/trace
emission) so rehydrating a manager never double-counts transitions.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

Entity = Union[int, str]

ENROLL = "enroll"
AVAILABLE = "available"
DEGRADED = "degraded"
MAINTENANCE = "maintenance"
RETIRED = "retired"

STATES: Tuple[str, ...] = (ENROLL, AVAILABLE, DEGRADED, MAINTENANCE, RETIRED)

#: Legal edges. ``maintenance -> degraded`` exists because broker
#: events outrank operator intent (see module docstring); ``retired``
#: is terminal.
TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    ENROLL: (AVAILABLE, RETIRED),
    AVAILABLE: (DEGRADED, MAINTENANCE, RETIRED),
    DEGRADED: (AVAILABLE, MAINTENANCE, RETIRED),
    MAINTENANCE: (AVAILABLE, DEGRADED, RETIRED),
    RETIRED: (),
}


class LifecycleError(RuntimeError):
    """An illegal lifecycle transition (or malformed snapshot state)."""


class LifecycleRegistry:
    """Guarded lifecycle states for a set of entities (ranks or names).

    Parameters
    ----------
    entities:
        The managed population — node ranks for a cluster manager,
        cluster names for a site manager. All start in ``enroll``.
    entity_kind:
        Label value for the ``lifecycle_*`` metric families
        (``"node"`` / ``"cluster"``).
    telemetry:
        The run's :class:`~repro.telemetry.Telemetry` hub, or None for
        a silent registry (unit tests).
    """

    def __init__(
        self,
        entities: Iterable[Entity],
        entity_kind: str = "node",
        telemetry=None,
    ) -> None:
        self.entity_kind = str(entity_kind)
        self._states: Dict[Entity, str] = {e: ENROLL for e in entities}
        self._telemetry = telemetry
        #: (t, entity, from, to, reason) — the auditable history.
        self.transition_log: List[Tuple[float, Entity, str, str, str]] = []

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, entity: Entity) -> bool:
        return entity in self._states

    def entities(self) -> List[Entity]:
        return sorted(self._states)

    def state_of(self, entity: Entity) -> str:
        try:
            return self._states[entity]
        except KeyError:
            raise LifecycleError(f"unknown {self.entity_kind}: {entity!r}")

    def is_available(self, entity: Entity) -> bool:
        return self._states.get(entity) == AVAILABLE

    def in_state(self, state: str) -> List[Entity]:
        if state not in STATES:
            raise LifecycleError(f"unknown state: {state!r}")
        return sorted(e for e, s in self._states.items() if s == state)

    def counts(self) -> Dict[str, int]:
        out = {s: 0 for s in STATES}
        for s in self._states.values():
            out[s] += 1
        return out

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def can_transition(self, entity: Entity, new_state: str) -> bool:
        return new_state in TRANSITIONS.get(self.state_of(entity), ())

    def transition(
        self, entity: Entity, new_state: str, reason: str = "", t: float = 0.0
    ) -> None:
        """Move ``entity`` along a guarded edge; illegal edges raise."""
        if new_state not in STATES:
            raise LifecycleError(f"unknown state: {new_state!r}")
        old = self.state_of(entity)
        if new_state not in TRANSITIONS[old]:
            raise LifecycleError(
                f"{self.entity_kind} {entity!r}: illegal transition "
                f"{old} -> {new_state} (reason: {reason or 'unspecified'})"
            )
        self._states[entity] = new_state
        self.transition_log.append((float(t), entity, old, new_state, reason))
        self._emit(entity, old, new_state, reason)

    def ensure(
        self, entity: Entity, state: str, reason: str = "", t: float = 0.0
    ) -> bool:
        """Transition unless already there; returns True when it moved."""
        if self.state_of(entity) == state:
            return False
        self.transition(entity, state, reason=reason, t=t)
        return True

    # ------------------------------------------------------------------
    # Telemetry (pure observer: counters, gauges, trace instants)
    # ------------------------------------------------------------------
    def _emit(self, entity: Entity, old: str, new: str, reason: str) -> None:
        tel = self._telemetry
        if tel is None:
            return
        tel.metrics.counter(
            "lifecycle_transitions_total",
            labels={"entity": self.entity_kind, "from": old, "to": new},
            help="guarded lifecycle transitions, by entity kind and edge",
        ).inc()
        counts = self.counts()
        for state in (old, new):
            tel.metrics.gauge(
                "lifecycle_entities",
                labels={"entity": self.entity_kind, "state": state},
                help="entities currently in each lifecycle state",
            ).set(counts[state])
        tel.tracer.instant(
            "lifecycle.transition", "lifecycle",
            entity=str(entity), kind=self.entity_kind,
            old=old, new=new, reason=reason,
        )

    # ------------------------------------------------------------------
    # Snapshot / restore (silent: no metrics, no trace)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-able state (entity keys stringified; ints round-trip)."""
        return {
            "entity_kind": self.entity_kind,
            "states": {str(e): s for e, s in self._states.items()},
            "log": [list(entry) for entry in self.transition_log],
        }

    def restore(self, state: Optional[Mapping]) -> None:
        """Rehydrate from :meth:`snapshot` output.

        ``restore(None)`` / ``restore({})`` is the amnesiac-wipe: every
        entity resets to ``available`` (what a freshly booted manager
        that lost its state would believe) and the log clears. Entities
        present in the snapshot must be a subset of the registry's
        population; unknown states raise.
        """
        if not state:
            self._states = {e: AVAILABLE for e in self._states}
            self.transition_log = []
            return
        states = state.get("states") or {}
        restored: Dict[Entity, str] = {}
        for key, value in states.items():
            entity: Entity = int(key) if str(key).lstrip("-").isdigit() else key
            if entity not in self._states:
                raise LifecycleError(
                    f"snapshot names unknown {self.entity_kind}: {entity!r}"
                )
            if value not in STATES:
                raise LifecycleError(f"snapshot holds unknown state: {value!r}")
            restored[entity] = value
        for entity in self._states:
            self._states[entity] = restored.get(entity, AVAILABLE)
        self.transition_log = [
            (float(t), int(e) if str(e).lstrip("-").isdigit() else e,
             str(old), str(new), str(reason))
            for t, e, old, new, reason in (state.get("log") or [])
        ]
