"""Crash-at-random-tick recovery fuzzing.

The snapshot artifact's contract is *equivalence*: a manager that
crashes mid-run and is restored from its artifact must produce exactly
the telemetry the uninterrupted run would have. This module turns that
contract into an executable oracle:

1. run a seeded scenario uninterrupted and record its digest (the
   simtest harness's canonical-JSON SHA-256);
2. re-run the same scenario, but at a chosen simulated instant take a
   snapshot, JSON-round-trip it (catching unserialisable state),
   **wipe** every component to its amnesiac fresh-boot state, then
   restore from the round-tripped artifact;
3. the remaining run must land on the *same digest* — any state the
   artifact fails to carry (a PI integral, a dead-rank set, a ring
   buffer, federation bookkeeping) shifts caps or telemetry flags and
   the digests split.

The wipe step is what gives the oracle teeth: without it, state left
behind in live objects would mask snapshot gaps. Crash instants are
drawn per seed from a dedicated RNG substream (fractions of the
uninterrupted makespan), so ``fuzz_recovery`` batches are replayable.

Failures feed the existing shrinker workflow: a diverging seed is a
scenario plus a crash fraction, both printable from the batch result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import List, Optional

from repro.lifecycle.snapshot import (
    restore_cluster,
    snapshot_cluster,
    wipe_cluster_state,
)
from repro.simkernel.rng import RandomStreams
from repro.simtest.harness import SimtestResult, run_scenario
from repro.simtest.scenario import GeneratorConfig, Scenario, generate_scenario

#: Crash instants are drawn from this substream, one per seed —
#: independent of every scenario-generation stream, so adding recovery
#: fuzz to a campaign never perturbs the scenarios themselves.
CRASH_STREAM = "lifecycle/crash"

#: Keep the crash strictly inside the run: too early and the books are
#: trivially empty, too late and the drain window hides divergence.
CRASH_FRACTION_RANGE = (0.15, 0.85)


@dataclass
class RecoveryResult:
    """Outcome of one crash → restore → continue comparison."""

    scenario: Scenario
    crash_t: float
    base_digest: str
    recovered_digest: str
    base: SimtestResult
    recovered: SimtestResult

    @property
    def equivalent(self) -> bool:
        return self.base_digest == self.recovered_digest

    @property
    def ok(self) -> bool:
        return self.equivalent and self.base.ok and self.recovered.ok

    def summary(self) -> str:
        verdict = "OK  " if self.ok else "FAIL"
        detail = ""
        if not self.equivalent:
            detail = (
                f" digest split {self.base_digest[:12]} != "
                f"{self.recovered_digest[:12]}"
            )
        elif not self.ok:
            bad = self.base if not self.base.ok else self.recovered
            detail = f" [{bad.violations[0].invariant}] {bad.violations[0].message}"
        return (
            f"{verdict} {self.scenario.describe()} "
            f"crash_t={self.crash_t:.3f}{detail}"
        )


@dataclass
class RecoveryBatchResult:
    """Outcome of a multi-seed recovery fuzz batch."""

    results: List[RecoveryResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[RecoveryResult]:
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        n_fail = len(self.failures)
        return (
            f"{len(self.results)} seeds, "
            f"{len(self.results) - n_fail} equivalent, {n_fail} diverged"
        )


def crash_restore_setup(crash_t: float, snapshots: Optional[list] = None):
    """Build a harness ``setup`` hook that crashes the manager at ``crash_t``.

    At the instant: snapshot → JSON round-trip → amnesiac wipe →
    restore. ``snapshots``, when given, collects the artifact (the CLI
    uses this to also write it to disk).
    """

    def _setup(cluster, sim) -> None:
        def _crash_and_recover() -> None:
            snap = snapshot_cluster(cluster)
            blob = json.dumps(snap, sort_keys=True)
            if snapshots is not None:
                snapshots.append(snap)
            wipe_cluster_state(cluster)
            restore_cluster(cluster, json.loads(blob))

        sim.schedule_at(crash_t, _crash_and_recover)

    return _setup


def run_scenario_with_recovery(
    scenario: Scenario,
    crash_t: Optional[float] = None,
    crash_fraction: Optional[float] = None,
    base: Optional[SimtestResult] = None,
    **harness_kwargs,
) -> RecoveryResult:
    """Compare an uninterrupted run against a crash-at-``crash_t`` run.

    Exactly one of ``crash_t`` (absolute simulated seconds) or
    ``crash_fraction`` (of the uninterrupted makespan) must be given.
    ``base`` reuses an already-computed uninterrupted result.
    """
    if (crash_t is None) == (crash_fraction is None):
        raise ValueError("give exactly one of crash_t / crash_fraction")
    if base is None:
        base = run_scenario(scenario, **harness_kwargs)
    if crash_t is None:
        makespan = base.makespan_s if base.makespan_s else 1.0
        crash_t = round(float(crash_fraction) * makespan, 3)
    recovered = run_scenario(
        scenario, setup=crash_restore_setup(crash_t), **harness_kwargs
    )
    return RecoveryResult(
        scenario=scenario,
        crash_t=crash_t,
        base_digest=base.digest,
        recovered_digest=recovered.digest,
        base=base,
        recovered=recovered,
    )


def fuzz_recovery(
    seeds,
    cfg: Optional[GeneratorConfig] = None,
    progress=None,
    **harness_kwargs,
) -> RecoveryBatchResult:
    """Crash-restore equivalence over a batch of generated scenarios.

    One crash instant per seed, drawn from :data:`CRASH_STREAM` as a
    fraction of that seed's uninterrupted makespan. ``progress``, when
    given, receives each :class:`RecoveryResult` as it lands.
    """
    batch = RecoveryBatchResult()
    lo, hi = CRASH_FRACTION_RANGE
    for seed in seeds:
        scenario = generate_scenario(seed, cfg)
        rng = RandomStreams(seed=int(seed)).get(CRASH_STREAM)
        fraction = lo + float(rng.random()) * (hi - lo)
        result = run_scenario_with_recovery(
            scenario, crash_fraction=fraction, **harness_kwargs
        )
        batch.results.append(result)
        if progress is not None:
            progress(result)
    return batch
