"""FFT-based period detection (the heart of FPP).

``FFT-GET-PERIOD`` in Algorithm 1: given a buffer of power samples at a
fixed rate, find the dominant period of the signal. The implementation
detrends, applies a Hann window, takes the real FFT, and picks the
strongest non-DC bin — *if* it is prominent enough relative to the rest
of the spectrum. Flat or noise-dominated signals (GEMM, LAMMPS,
NQueens: "relatively flat power timeline without any swings") yield no
reliable peak and return ``None``; FPP treats that as a destabilised
period and backs power off upward, which is exactly the behaviour the
paper reports for GEMM.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Peak must exceed this multiple of the median non-DC magnitude.
#: 4.5 admits a square wave seen for ~2 periods (harmonics raise the
#: spectral floor) while still rejecting white noise reliably.
DEFAULT_MIN_PROMINENCE = 4.5

#: Minimum samples for a usable spectrum.
MIN_SAMPLES = 8


def estimate_period(
    values: Sequence[float],
    dt: float,
    min_prominence: float = DEFAULT_MIN_PROMINENCE,
) -> Optional[float]:
    """Dominant period of ``values`` sampled every ``dt`` seconds.

    Returns ``None`` when the signal has no prominent periodic
    component (flat, pure trend, or noise), or when fewer than
    :data:`MIN_SAMPLES` samples are available.

    Sub-bin precision comes from parabolic interpolation of the log
    magnitude around the peak — a 90 s FFP window at 2 s sampling has
    only ~1/90 Hz bin spacing, too coarse to resolve the 2 s convergence
    threshold without interpolation.
    """
    x = np.asarray(values, dtype=float)
    if x.size < MIN_SAMPLES or dt <= 0:
        return None
    # Detrend: remove best-fit line so slow drift doesn't masquerade as
    # a low-frequency peak.
    n = x.size
    t = np.arange(n, dtype=float)
    slope, intercept = np.polyfit(t, x, 1)
    x = x - (slope * t + intercept)
    if np.allclose(x, 0.0, atol=1e-9):
        return None
    x = x * np.hanning(n)
    mag = np.abs(np.fft.rfft(x))
    if mag.size < 3:
        return None
    spectrum = mag[1:]  # drop DC
    k = int(np.argmax(spectrum)) + 1

    # Harmonic correction. A low-duty burst train (Quicksilver's power
    # signature) carries harmonics comparable to its fundamental, and a
    # fundamental that falls *between* bins leaks its energy across two
    # bins while an on-bin harmonic stays sharp — so the raw argmax can
    # land on the 2nd/3rd harmonic. Compare three-bin energy clusters:
    # if a subharmonic cluster holds comparable energy, the true period
    # lives there.
    def cluster(center: int) -> float:
        lo_b = max(1, center - 1)
        return float(mag[lo_b : center + 2].sum())

    for divisor in (2, 3):
        base = int(round(k / divisor))
        if base >= 1 and base != k and cluster(base) >= 0.8 * cluster(k):
            lo_b = max(1, base - 1)
            k = lo_b + int(np.argmax(mag[lo_b : base + 2]))
            break

    others = np.delete(spectrum, k - 1)
    floor = float(np.median(others)) if others.size else 0.0
    if floor <= 0.0:
        floor = 1e-12
    if mag[k] < min_prominence * floor:
        return None
    # Parabolic interpolation on log magnitude around the peak bin.
    if 1 <= k < mag.size - 1:
        a, b, c = np.log(mag[k - 1] + 1e-12), np.log(mag[k] + 1e-12), np.log(
            mag[k + 1] + 1e-12
        )
        denom = a - 2 * b + c
        delta = 0.5 * (a - c) / denom if abs(denom) > 1e-12 else 0.0
        delta = float(np.clip(delta, -0.5, 0.5))
    else:
        delta = 0.0
    freq = (k + delta) / (n * dt)
    if freq <= 0:
        return None
    period = 1.0 / freq
    # Periods longer than half the window are unreliable.
    if period > (n * dt) / 2.0:
        return None
    return float(period)
