"""Power-aware admission: hold jobs that would dilute shares too far.

The paper's related work includes SLURM power-aware scheduling plugins
[31, 32]; its own framework deliberately separates scheduling (plain
FCFS) from power management. This module composes the two: an admission
filter in front of the FCFS scheduler that models what proportional
sharing *would* do if a job started now, and holds the job back while
the resulting per-node share sits below a floor.

Rationale: under proportional sharing, admitting one more job shrinks
*every* job's share. A compute-bound job admitted into a saturated
budget runs at a deeply throttled (energy-inefficient) operating point;
waiting until headroom exists can finish the same work sooner and
cheaper. The bench compares both admission modes under a tight budget.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.flux.scheduler import Scheduler


class PowerAwareScheduler(Scheduler):
    """FCFS + a minimum-share admission floor.

    Parameters
    ----------
    size:
        Node count.
    global_cap_w:
        The cluster budget the power manager operates under.
    min_share_w:
        Do not start a job if doing so would push the per-node share
        below this (e.g. 1000 W keeps V100 nodes above the deep-throttle
        cliff). The head job is never starved forever: it is admitted
        regardless once the cluster is otherwise empty.
    node_peak_w:
        Theoretical per-node peak (share values are capped here).
    """

    def __init__(
        self,
        size: int,
        global_cap_w: float,
        min_share_w: float = 1000.0,
        node_peak_w: float = 3050.0,
        backfill: bool = False,
    ) -> None:
        super().__init__(size, backfill=backfill)
        if global_cap_w <= 0:
            raise ValueError("global_cap_w must be positive")
        if min_share_w <= 0:
            raise ValueError("min_share_w must be positive")
        self.global_cap_w = float(global_cap_w)
        self.min_share_w = float(min_share_w)
        self.node_peak_w = float(node_peak_w)
        self.held_jobs = 0  # admission decisions deferred (telemetry)

    def _busy_nodes(self) -> int:
        return self.size - self.free_count

    def projected_share_w(self, extra_nodes: int) -> float:
        """Per-node share if a job of ``extra_nodes`` started now."""
        total = self._busy_nodes() + extra_nodes
        if total <= 0:
            return self.node_peak_w
        return min(self.node_peak_w, self.global_cap_w / total)

    def pick_next(self, queue: List[int], requests: Dict[int, int]) -> Optional[int]:
        jobid = super().pick_next(queue, requests)
        if jobid is None:
            return None
        share = self.projected_share_w(requests[jobid])
        if share >= self.min_share_w:
            return jobid
        # Never starve: an empty cluster admits the head unconditionally
        # (its share is the floor of what the budget can ever provide).
        if self._busy_nodes() == 0:
            return jobid
        self.held_jobs += 1
        return None
