"""The job-level manager (Section III-B).

Runs on the root node alongside the cluster-level manager. For each
job it receives a *job-level power limit* — the maximum power the whole
job may draw — splits it equally across the job's nodes, and pushes the
resulting *node-level power limits* to the node managers over the TBON.
It also maintains the full per-job state (ranks, current limits).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.flux.broker import Broker
from repro.flux.message import CachedSizeDict
from repro.manager.node_manager import JOB_DEPARTED_TOPIC, SET_LIMIT_TOPIC


@dataclass
class JobPowerState:
    """What the job-level manager knows about one job."""

    jobid: int
    ranks: List[int]
    job_limit_w: Optional[float] = None

    @property
    def node_limit_w(self) -> Optional[float]:
        if self.job_limit_w is None:
            return None
        return self.job_limit_w / len(self.ranks)


class JobLevelManager:
    """Splits job power limits across nodes and pushes them out."""

    def __init__(self, broker: Broker) -> None:
        self.broker = broker
        self.jobs: Dict[int, JobPowerState] = {}
        #: (time, jobid, node_limit_w) history, for the Fig 5/6 timelines.
        self.assignment_log: List[tuple] = []

    def job_started(self, jobid: int, ranks: List[int]) -> None:
        self.jobs[jobid] = JobPowerState(jobid=jobid, ranks=list(ranks))

    def job_ended(self, jobid: int) -> None:
        state = self.jobs.pop(jobid, None)
        if state is None:
            return
        for rank in state.ranks:
            self.broker.rpc(rank, JOB_DEPARTED_TOPIC, {"jobid": jobid})

    def assign(self, jobid: int, job_limit_w: Optional[float]) -> None:
        """Set a job's power limit and distribute it equally to its nodes.

        The payload carries ``t_assigned`` (always, not only when
        telemetry is enabled, so message sizes — and therefore transport
        timing — are identical either way); the node manager uses it to
        measure one-way cap-propagation latency
        (``manager_cap_update_latency_seconds``).
        """
        state = self.jobs.get(jobid)
        if state is None:
            raise KeyError(f"job {jobid} is not active")
        state.job_limit_w = job_limit_w
        node_limit = state.node_limit_w
        self.assignment_log.append((self.broker.sim.now, jobid, node_limit))
        self.broker.telemetry.metrics.counter(
            "manager_job_limit_assignments_total",
            help="job-level limit assignments fanned out to node managers",
        ).inc()
        # Every rank of the job gets the identical payload; one shared
        # write-once dict keeps the fan-out O(ranks) messages but O(1)
        # payload construction and size estimation.
        payload = CachedSizeDict(
            limit_w=node_limit,
            jobid=jobid,
            t_assigned=self.broker.sim.now,
        )
        for rank in state.ranks:
            self.broker.rpc(rank, SET_LIMIT_TOPIC, payload)

    def node_died(self, rank: int) -> List[int]:
        """Drop a dead rank from every job; returns the affected jobids.

        The dead node's manager is gone, so no departure RPC is sent to
        it; the caller (cluster manager) recomputes shares so surviving
        nodes reclaim the dead node's power. A job whose every node died
        is forgotten entirely.
        """
        affected: List[int] = []
        for jobid, state in list(self.jobs.items()):
            if rank in state.ranks:
                state.ranks.remove(rank)
                affected.append(jobid)
                if not state.ranks:
                    del self.jobs[jobid]
        return affected

    def active_node_count(self) -> int:
        return sum(len(s.ranks) for s in self.jobs.values())

    def state_of(self, jobid: int) -> Optional[JobPowerState]:
        return self.jobs.get(jobid)
