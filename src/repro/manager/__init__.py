"""``flux-power-manager``: hierarchical, state-aware power management.

Three components, mirroring Section III-B:

* :class:`ClusterLevelManager` (rank 0) — owns the cluster power
  budget. Unconstrained clusters get peak power per node and no
  capping; constrained clusters share power across jobs in proportion
  to node count (Section III-B1), recomputed on every job arrival and
  departure.
* :class:`JobLevelManager` (rank 0) — splits each job's power limit
  equally across its nodes and pushes *node-level power limits* to the
  node managers over the TBON.
* :class:`NodeManagerModule` (every rank) — enforces node limits by
  deriving per-GPU caps (via Variorum/NVML), tracks node power in a
  sampling loop, and hosts pluggable dynamic policies — including
  :class:`~repro.manager.policies.fpp.FPPPolicy`, the paper's
  FFT-based per-GPU algorithm (Algorithm 1).
"""

from repro.manager.cluster_manager import ClusterLevelManager, ManagerConfig
from repro.manager.job_level import JobLevelManager
from repro.manager.node_manager import NodeManagerModule
from repro.manager.module import PowerManager, attach_manager
from repro.manager.fft import estimate_period
from repro.manager.policies import (
    FPPParams,
    FPPPolicy,
    PowerPolicy,
    ProportionalPolicy,
    StaticPolicy,
)

__all__ = [
    "ClusterLevelManager",
    "ManagerConfig",
    "JobLevelManager",
    "NodeManagerModule",
    "PowerManager",
    "attach_manager",
    "estimate_period",
    "PowerPolicy",
    "StaticPolicy",
    "ProportionalPolicy",
    "FPPPolicy",
    "FPPParams",
]
