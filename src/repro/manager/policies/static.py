"""Static policy: no node-local dynamics.

Used for the Table III/IV baselines where the only control is the
IBM OPAL node-level cap the cluster manager installs at configuration
time (the firmware's conservative GPU derivation does the rest). The
node manager still tracks power; this policy just never touches a dial.
"""

from __future__ import annotations

from typing import Optional

from repro.manager.policies.base import PowerPolicy


class StaticPolicy(PowerPolicy):
    """No node-local dynamics; the OPAL static cap is the whole policy."""

    name = "static"

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        # Intentionally nothing: enforcement is entirely the firmware's
        # static node cap. Shares pushed by the cluster manager are
        # recorded by the node manager but not acted upon.
        return
