"""History-based power policy.

Section III-B: "The node-level-manager can also utilize dynamic power
management policies, such as ones based on past power history, measured
performance counters, or other progress metrics." FPP is the paper's
FFT instance of this family; this module implements the plain
power-history variant: cap each GPU a fixed margin above its recent
peak draw, reclaiming headroom the workload demonstrably does not use.

Compared to FPP it needs no periodicity at all — it works on flat apps
— but it can never push a device *below* its demand (no energy saving
on compute-bound work), only defragment unused allocation.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.manager.policies.base import PowerPolicy


class HistoryPolicy(PowerPolicy):
    """Cap each GPU at (recent peak + margin), within the node share.

    Parameters
    ----------
    window:
        Number of tracking samples of history per GPU (2 s apart by
        default — 15 samples ≈ 30 s of history).
    margin_w:
        Headroom above the observed peak, absorbing demand spikes
        between control actions.
    """

    name = "history"

    def __init__(self, window: int = 15, margin_w: float = 20.0) -> None:
        super().__init__()
        if window < 1:
            raise ValueError("window must be >= 1")
        if margin_w < 0:
            raise ValueError("margin_w must be >= 0")
        self.window = int(window)
        self.margin_w = float(margin_w)
        self._history: List[deque] = []

    def attach(self, manager) -> None:
        super().attach(manager)
        self._history = [
            deque(maxlen=self.window) for _ in range(manager.gpu_count)
        ]

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        assert self.manager is not None
        if limit_w is None:
            self.manager.clear_gpu_caps()
            return
        # The share is the ceiling until history accumulates.
        self.manager.enforce_limit_via_gpus(limit_w)

    def _share_ceiling(self) -> float:
        assert self.manager is not None
        lo, hi = self.manager.gpu_cap_range
        if self.manager.node_limit_w is None:
            return hi
        return self.manager.derive_gpu_share(self.manager.node_limit_w)

    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        assert self.manager is not None
        ceiling = self._share_ceiling()
        lo, hi = self.manager.gpu_cap_range
        for i, watts in enumerate(gpu_w):
            self._history[i].append(watts)
            if len(self._history[i]) < self.window:
                continue  # not enough history yet
            cap = max(self._history[i]) + self.margin_w
            cap = min(max(cap, lo), ceiling, hi)
            self.manager.set_gpu_cap(i, cap)

    def reset_job_state(self) -> None:
        assert self.manager is not None
        self._history = [
            deque(maxlen=self.window) for _ in range(self.manager.gpu_count)
        ]

    def snapshot(self) -> dict:
        return {"history": [list(h) for h in self._history]}

    def restore(self, state) -> None:
        assert self.manager is not None
        self._history = [
            deque(maxlen=self.window) for _ in range(self.manager.gpu_count)
        ]
        for h, saved in zip(self._history, state.get("history") or []):
            h.extend(float(w) for w in saved)

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "window": self.window,
            "margin_w": self.margin_w,
            "history_fill": [len(h) for h in self._history],
        }
