"""NRM-style safety wrapper: guardrails around any dynamic policy.

Argo NRM's ``PowerPolicyManager`` refuses to act on control steps that
are too small to matter (``damper``) and refuses to push an application
more than a configured factor below its fair operating point
(``slowdown``), counting each refusal in ``damperexits`` /
``slowdownexits``. :class:`PolicySafetyWrapper` ports that idea to the
node-policy interface: it hosts an inner :class:`PowerPolicy` and hands
it a *guarded proxy* of the node manager, so every cap the inner
controller tries to write passes through four checks:

1. **budget** — the sum of device caps may not exceed the node limit
   minus the measured non-device power (per-device ceiling
   ``max(lo, (limit − other_w) / n)``), so a runaway controller cannot
   allocate power the node does not have;
2. **slowdown** — no device cap may fall below ``uniform_share /
   slowdown`` (floored at the device minimum), bounding how far below
   its fair share a controller can starve a device;
3. **box** — the cap is clamped into the device capping range
   ``[lo, hi]`` (the hardware would clamp anyway; counting it here
   makes misbehaving controllers visible);
4. **damper** — writes that move the cap by less than
   ``damper × (hi − lo)`` watts are *skipped* entirely, suppressing
   oscillation and driver churn from jittery controllers.

Units: ``damper`` is a fraction of the device capping span (0.1 on a
100–300 W GPU means "ignore moves under 20 W"); ``slowdown`` is a
dimensionless ratio ≥ 1 ("never cap below share/1.1"). Everything else
is watts. Exit counters are exposed in :meth:`describe` and as the
``policy_guard_clamps_total`` / ``policy_damper_exits_total`` /
``policy_slowdown_exits_total`` metrics.

The guard arithmetic lives in the pure :func:`guard_cap` so the safety
property — a guarded write is always inside ``[lo, hi]`` and under the
budget ceiling — is property-tested without a simulator
(``tests/test_property_policy_guards.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.manager.policies.base import PowerPolicy

#: NRM's shipped defaults (nrm/daemon.py): damper 0.1, slowdown 1.1.
DEFAULT_DAMPER = 0.1
DEFAULT_SLOWDOWN = 1.1


@dataclass(frozen=True)
class GuardDecision:
    """Outcome of guarding one cap write.

    ``cap_w`` is the watts to install, or ``None`` when the damper
    suppressed the write. ``clamps`` names the guards that fired, in
    application order (subset of ``budget``/``slowdown``/``low``/
    ``high``/``damper``).
    """

    cap_w: Optional[float]
    clamps: Tuple[str, ...]


def guard_cap(
    proposed_w: float,
    last_w: Optional[float],
    lo_w: float,
    hi_w: float,
    ceiling_w: Optional[float] = None,
    floor_w: Optional[float] = None,
    damper_w: float = 0.0,
) -> GuardDecision:
    """Pure guard arithmetic for a single device-cap write.

    Applies, in order: budget ceiling, slowdown floor, box clamp to
    ``[lo_w, hi_w]``, then the damper (skip if the surviving value
    moves less than ``damper_w`` watts from ``last_w``). The floor is
    applied after the ceiling, so when a misconfiguration makes them
    cross, the floor (progress protection) wins — and the box clamp
    still bounds the result.
    """
    if hi_w < lo_w:
        raise ValueError(f"cap range inverted: [{lo_w}, {hi_w}]")
    clamps = []
    v = float(proposed_w)
    if ceiling_w is not None and v > ceiling_w:
        v = float(ceiling_w)
        clamps.append("budget")
    if floor_w is not None and v < floor_w:
        v = float(floor_w)
        clamps.append("slowdown")
    if v < lo_w:
        v = lo_w
        clamps.append("low")
    elif v > hi_w:
        v = hi_w
        clamps.append("high")
    if last_w is not None and damper_w > 0.0 and abs(v - last_w) < damper_w:
        return GuardDecision(None, ("damper",))
    return GuardDecision(v, tuple(clamps))


class _GuardedManagerProxy:
    """The node manager as seen by a wrapped policy.

    Transparent for reads (``__getattr__`` delegates), interposing on
    the three write paths: ``set_gpu_cap``, ``set_socket_cap`` and
    ``enforce_limit_via_gpus``.
    """

    def __init__(self, manager, wrapper: "PolicySafetyWrapper") -> None:
        self._manager = manager
        self._wrapper = wrapper

    def __getattr__(self, name):
        return getattr(self._manager, name)

    def set_gpu_cap(self, index: int, watts: float) -> None:
        self._wrapper._guarded_write("gpu", index, watts)

    def set_socket_cap(self, index: int, watts: float) -> None:
        self._wrapper._guarded_write("socket", index, watts)

    def enforce_limit_via_gpus(self, node_limit_w: float) -> None:
        # An inner policy asking to enforce *above* the assigned node
        # limit is exactly the runaway this wrapper exists to stop.
        assigned = self._manager.node_limit_w
        if assigned is not None:
            node_limit_w = min(float(node_limit_w), float(assigned))
        per_gpu = self._manager.derive_gpu_share(node_limit_w)
        for i in range(self._manager.gpu_count):
            self._wrapper._guarded_write("gpu", i, per_gpu)


class PolicySafetyWrapper(PowerPolicy):
    """Host an inner policy behind damper/slowdown/budget guardrails.

    Parameters
    ----------
    inner:
        The wrapped policy. It is attached to a guarded proxy, not the
        real manager, so it needs no cooperation — existing policies
        wrap unchanged.
    damper:
        Fraction of the device capping span below which cap *changes*
        are skipped (NRM's ``damper``, default 0.1). 0 disables.
    slowdown:
        Maximum allowed ratio between a device's uniform fair share
        and its cap (NRM's ``slowdown``, default 1.1, i.e. a device
        may be pushed at most ~9 % below its share). 1.0 pins caps at
        the share itself; must be >= 1.
    """

    def __init__(
        self,
        inner: PowerPolicy,
        damper: float = DEFAULT_DAMPER,
        slowdown: float = DEFAULT_SLOWDOWN,
    ) -> None:
        super().__init__()
        if damper < 0.0:
            raise ValueError("damper must be >= 0 (fraction of cap span)")
        if slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        self.inner = inner
        self.name = f"safe-{inner.name}"
        self.damper = float(damper)
        self.slowdown = float(slowdown)
        self.damperexits = 0
        self.slowdownexits = 0
        self.clamps: Dict[str, int] = {}
        self._proxy: Optional[_GuardedManagerProxy] = None
        self._intents: Dict[Tuple[str, int], float] = {}

    # ------------------------------------------------------------------
    # Lifecycle: forward everything to the inner policy
    # ------------------------------------------------------------------
    def attach(self, manager) -> None:
        super().attach(manager)
        self._proxy = _GuardedManagerProxy(manager, self)
        self._intents.clear()
        self.inner.attach(self._proxy)

    def detach(self) -> None:
        self.inner.detach()
        self._proxy = None
        super().detach()

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        self.inner.on_node_limit(limit_w)

    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        self.inner.on_sample(timestamp, node_w, gpu_w)

    def on_job_state(self, state: str, payload: dict) -> None:
        self.inner.on_job_state(state, payload)

    def reset_job_state(self) -> None:
        self._intents.clear()
        reset = getattr(self.inner, "reset_job_state", None)
        if reset is not None:
            reset()

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        # ``_intents`` is the damper's last-actuation memory: dropping
        # it would make the restored wrapper treat its first post-restore
        # write as unprecedented (no damper suppression), and restoring
        # the exit counters keeps describe()/regression accounting from
        # double-counting across the restore boundary.
        return {
            "damperexits": self.damperexits,
            "slowdownexits": self.slowdownexits,
            "clamps": dict(self.clamps),
            "intents": {
                f"{domain}:{index}": watts
                for (domain, index), watts in self._intents.items()
            },
            "inner": self.inner.snapshot(),
        }

    def restore(self, state) -> None:
        self.damperexits = int(state.get("damperexits", 0))
        self.slowdownexits = int(state.get("slowdownexits", 0))
        self.clamps = {
            str(k): int(v) for k, v in (state.get("clamps") or {}).items()
        }
        self._intents.clear()
        for key, watts in (state.get("intents") or {}).items():
            domain, _, index = str(key).partition(":")
            self._intents[(domain, int(index))] = float(watts)
        self.inner.restore(state.get("inner") or {})

    # ------------------------------------------------------------------
    # Guarded write path
    # ------------------------------------------------------------------
    def _bounds(self, domain: str) -> Tuple[float, float, int, Optional[float]]:
        """(lo, hi, device count, uniform share) for a cap domain."""
        m = self.manager
        assert m is not None
        limit = m.node_limit_w
        if domain == "gpu":
            lo, hi = m.gpu_cap_range
            n = m.gpu_count
            share = None if limit is None else m.derive_gpu_share(limit)
        else:
            lo, hi = m.socket_cap_range
            n = m.socket_count
            share = None if limit is None else m.derive_socket_share(limit)
        return lo, hi, n, share

    def _guarded_write(self, domain: str, index: int, watts: float) -> None:
        m = self.manager
        assert m is not None
        lo, hi, n, share = self._bounds(domain)
        limit = m.node_limit_w
        ceiling = None
        if limit is not None and n > 0:
            other_w = (
                m.non_gpu_power_w() if domain == "gpu" else m.non_cpu_power_w()
            )
            ceiling = max(lo, (float(limit) - other_w) / n)
        floor = None
        if share is not None:
            floor = max(lo, share / self.slowdown)
        decision = guard_cap(
            watts,
            last_w=self._intents.get((domain, index)),
            lo_w=lo,
            hi_w=hi,
            ceiling_w=ceiling,
            floor_w=floor,
            damper_w=self.damper * (hi - lo),
        )
        tel = m.broker.telemetry
        if decision.cap_w is None:
            self.damperexits += 1
            tel.metrics.counter(
                "policy_damper_exits_total",
                help="cap writes skipped by the safety wrapper's damper",
            ).inc()
            return
        for bound in decision.clamps:
            self.clamps[bound] = self.clamps.get(bound, 0) + 1
            tel.metrics.counter(
                "policy_guard_clamps_total", labels={"bound": bound},
                help="cap writes clamped by the safety wrapper, by bound",
            ).inc()
            if bound == "slowdown":
                self.slowdownexits += 1
                tel.metrics.counter(
                    "policy_slowdown_exits_total",
                    help="cap writes raised to the slowdown floor",
                ).inc()
        self._intents[(domain, index)] = decision.cap_w
        if domain == "gpu":
            m.set_gpu_cap(index, decision.cap_w)
        else:
            m.set_socket_cap(index, decision.cap_w)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "policy": self.name,
            "damper": self.damper,
            "slowdown": self.slowdown,
            "damperexits": self.damperexits,
            "slowdownexits": self.slowdownexits,
            "clamps": dict(self.clamps),
            "inner": self.inner.describe(),
        }
