"""Node-level dynamic power policies.

A policy plugs into the :class:`~repro.manager.node_manager.NodeManagerModule`
and decides how a node's power limit translates into device caps over
time. The paper evaluates:

* :class:`StaticPolicy` — no dynamic behaviour; the cluster manager's
  static node cap (IBM OPAL) is the whole story.
* :class:`ProportionalPolicy` — enforce whatever share the cluster
  manager assigns, by deriving uniform per-GPU caps from the share.
* :class:`FPPPolicy` — Algorithm 1: per-GPU FFT period tracking with
  probe/adjust/converge cap control on a 90 s cadence.
"""

from repro.manager.policies.base import PowerPolicy
from repro.manager.policies.static import StaticPolicy
from repro.manager.policies.proportional import ProportionalPolicy
from repro.manager.policies.fpp import FPPParams, FPPPolicy, FPPGpuController
from repro.manager.policies.fpp_socket import FPPSocketPolicy, SOCKET_FPP_PARAMS
from repro.manager.policies.history import HistoryPolicy

POLICY_FACTORIES = {
    "static": StaticPolicy,
    "proportional": ProportionalPolicy,
    "fpp": FPPPolicy,
    "fpp-socket": FPPSocketPolicy,
    "history": HistoryPolicy,
}

__all__ = [
    "PowerPolicy",
    "StaticPolicy",
    "ProportionalPolicy",
    "FPPPolicy",
    "FPPParams",
    "FPPGpuController",
    "FPPSocketPolicy",
    "SOCKET_FPP_PARAMS",
    "HistoryPolicy",
    "POLICY_FACTORIES",
]
