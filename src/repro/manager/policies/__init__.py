"""Node-level dynamic power policies (the policy zoo).

A policy plugs into the :class:`~repro.manager.node_manager.NodeManagerModule`
and decides how a node's power limit translates into device caps over
time. The paper evaluates the first three; the rest grew out of its
"other progress metrics" discussion (Section III-B). See
docs/policies.md for the cookbook.

* :class:`StaticPolicy` — no dynamic behaviour; the cluster manager's
  static node cap (IBM OPAL) is the whole story.
* :class:`ProportionalPolicy` — enforce whatever share the cluster
  manager assigns, by deriving uniform per-GPU caps from the share.
* :class:`FPPPolicy` — Algorithm 1: per-GPU FFT period tracking with
  probe/adjust/converge cap control on a 90 s cadence.
* :class:`HistoryPolicy` — cap each GPU a margin above its recent peak.
* :class:`PIPolicy` — feedback: a PI loop on measured node power error
  drives the total GPU budget (anti-windup, pure ``pi_step`` core).
* :class:`EcoShiftPolicy` — re-split the node limit across CPU and GPU
  domains by measured demand (pure ``split_node_budget`` water-fill).
* :class:`CheckpointAwarePolicy` — coordinate caps with application
  checkpoint windows signalled through the apps registry.

The three zoo policies are registered **wrapped** in the NRM-style
:class:`PolicySafetyWrapper` (damper / slowdown / budget guardrails) —
a controller bug cannot push a node outside its cap box. The paper's
original policies register unwrapped, exactly as before, so existing
experiments and golden fixtures are untouched.
"""

from repro.manager.policies.base import PowerPolicy
from repro.manager.policies.static import StaticPolicy
from repro.manager.policies.proportional import ProportionalPolicy
from repro.manager.policies.fpp import FPPParams, FPPPolicy, FPPGpuController
from repro.manager.policies.fpp_socket import FPPSocketPolicy, SOCKET_FPP_PARAMS
from repro.manager.policies.history import HistoryPolicy
from repro.manager.policies.pi import PIParams, PIPolicy, pi_step
from repro.manager.policies.ecoshift import EcoShiftPolicy, split_node_budget
from repro.manager.policies.checkpoint import CheckpointAwarePolicy
from repro.manager.policies.safety import (
    GuardDecision,
    PolicySafetyWrapper,
    guard_cap,
)


def _wrapped_pi() -> PolicySafetyWrapper:
    # Damper 2 % of the GPU span: PI corrections are small by design
    # (residual error around the share); NRM's 10 % would eat them.
    return PolicySafetyWrapper(PIPolicy(), damper=0.02, slowdown=1.5)


def _wrapped_ecoshift() -> PolicySafetyWrapper:
    # EcoShift deliberately moves budget away from an idle domain, so
    # its slowdown allowance must permit deep per-domain cuts.
    return PolicySafetyWrapper(EcoShiftPolicy(), damper=0.05, slowdown=2.5)


def _wrapped_checkpoint() -> PolicySafetyWrapper:
    # Checkpoint windows collapse GPU draw to a small fraction of the
    # share; the floor still bounds how far the squeeze can go.
    return PolicySafetyWrapper(
        CheckpointAwarePolicy(), damper=0.02, slowdown=4.0
    )


POLICY_FACTORIES = {
    "static": StaticPolicy,
    "proportional": ProportionalPolicy,
    "fpp": FPPPolicy,
    "fpp-socket": FPPSocketPolicy,
    "history": HistoryPolicy,
    # The policy zoo: always deployed behind the safety wrapper.
    "pi": _wrapped_pi,
    "ecoshift": _wrapped_ecoshift,
    "checkpoint": _wrapped_checkpoint,
}

__all__ = [
    "PowerPolicy",
    "StaticPolicy",
    "ProportionalPolicy",
    "FPPPolicy",
    "FPPParams",
    "FPPGpuController",
    "FPPSocketPolicy",
    "SOCKET_FPP_PARAMS",
    "HistoryPolicy",
    "PIPolicy",
    "PIParams",
    "pi_step",
    "EcoShiftPolicy",
    "split_node_budget",
    "CheckpointAwarePolicy",
    "PolicySafetyWrapper",
    "GuardDecision",
    "guard_cap",
    "POLICY_FACTORIES",
]
