"""Socket-level FPP: the paper's device-agnostic extension.

Section III-B2: "While we utilize this policy on GPUs, it is
device-agnostic from a logistical perspective, and can be easily
extended to be utilized for socket-level or memory-level power
capping." This policy runs Algorithm 1 unchanged, but per *CPU socket*:
the period detector consumes socket power and the cap dial is the
socket limit (RAPL on Intel, E-SMI on AMD, the service processor on
IBM). Parameters default to socket-appropriate magnitudes — a Power9
socket spans ~50-250 W rather than a V100's 100-300 W.
"""

from __future__ import annotations

from typing import List, Optional

from repro.manager.policies.base import PowerPolicy
from repro.manager.policies.fpp import FPPGpuController, FPPParams

#: Socket-scaled Algorithm 1 constants: shallower probe and steps for
#: the narrower socket power range.
SOCKET_FPP_PARAMS = FPPParams(
    p_reduce_w=25.0,
    powercap_levels_w=(5.0, 10.0, 15.0),
    max_gpu_cap_w=250.0,  # acts as the per-socket hard max here
)


class FPPSocketPolicy(PowerPolicy):
    """Algorithm 1 applied to CPU sockets instead of GPUs."""

    name = "fpp-socket"

    def __init__(self, params: Optional[FPPParams] = None) -> None:
        super().__init__()
        self.params = params or SOCKET_FPP_PARAMS
        self.controllers: List[FPPGpuController] = []
        self.caps_w: List[float] = []
        self._timer = None
        self._last_limit_w: Optional[float] = None

    def attach(self, manager) -> None:
        super().attach(manager)
        n = manager.socket_count
        self.controllers = [
            FPPGpuController(i, self.params, manager.sample_interval_s)
            for i in range(n)
        ]
        lo, hi = manager.socket_cap_range
        self.caps_w = [min(self.params.max_gpu_cap_w, hi)] * n
        self._timer = manager.add_timer(
            self.params.powercap_time_s, self._control_tick
        )

    def detach(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        super().detach()

    def _ceiling(self) -> float:
        assert self.manager is not None
        lo, hi = self.manager.socket_cap_range
        limit = self.manager.node_limit_w
        derived = hi if limit is None else self.manager.derive_socket_share(limit)
        return min(self.params.max_gpu_cap_w, derived, hi)

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        assert self.manager is not None
        previous = self._last_limit_w
        self._last_limit_w = limit_w
        if limit_w != previous:
            self.reset_job_state()
            return
        ceiling = self._ceiling()
        lo, _hi = self.manager.socket_cap_range
        for i in range(len(self.caps_w)):
            if self.caps_w[i] > ceiling:
                self.caps_w[i] = max(lo, ceiling)
            self.manager.set_socket_cap(i, self.caps_w[i])

    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        assert self.manager is not None
        # The tracker hands GPU power; socket FPP reads its own dials.
        cpu_w = [d.actual_w for d in self.manager.broker.node.cpu_domains]
        for ctl, w in zip(self.controllers, cpu_w):
            ctl.store_power(w)
        if self.manager.node_limit_w is not None:
            ceiling = self._ceiling()
            lo, _hi = self.manager.socket_cap_range
            for i in range(len(self.caps_w)):
                if self.caps_w[i] > ceiling + 10.0:
                    self.caps_w[i] = max(lo, ceiling)
                    self.manager.set_socket_cap(i, self.caps_w[i])

    def _control_tick(self, _timer) -> None:
        assert self.manager is not None
        if self.manager.node_limit_w is None and not self.manager.job_present:
            return
        lo, _hi = self.manager.socket_cap_range
        ceiling = self._ceiling()
        for i, ctl in enumerate(self.controllers):
            ctl.refresh_period()
            new_cap = ctl.next_cap(self.caps_w[i], lo, ceiling)
            if new_cap != self.caps_w[i]:
                self.caps_w[i] = new_cap
                self.manager.set_socket_cap(i, new_cap)
            ctl.reset_buffer()

    def reset_job_state(self) -> None:
        assert self.manager is not None
        n = self.manager.socket_count
        self.controllers = [
            FPPGpuController(i, self.params, self.manager.sample_interval_s)
            for i in range(n)
        ]
        lo, _hi = self.manager.socket_cap_range
        ceiling = self._ceiling()
        self.caps_w = [max(lo, ceiling)] * n
        for i in range(n):
            self.manager.set_socket_cap(i, self.caps_w[i])

    def snapshot(self) -> dict:
        return {
            "caps_w": list(self.caps_w),
            "last_limit_w": self._last_limit_w,
            "controllers": [c.snapshot() for c in self.controllers],
        }

    def restore(self, state) -> None:
        assert self.manager is not None
        n = self.manager.socket_count
        ctl_states = state.get("controllers")
        if ctl_states is None:
            self.controllers = [
                FPPGpuController(i, self.params, self.manager.sample_interval_s)
                for i in range(n)
            ]
            _lo, hi = self.manager.socket_cap_range
            self.caps_w = [min(self.params.max_gpu_cap_w, hi)] * n
            self._last_limit_w = None
            return
        if len(ctl_states) != n:
            raise ValueError(
                f"snapshot has {len(ctl_states)} controllers, "
                f"node has {n} sockets"
            )
        for ctl, ctl_state in zip(self.controllers, ctl_states):
            ctl.restore(ctl_state)
        self.caps_w = [float(w) for w in state.get("caps_w") or []]
        last_limit = state.get("last_limit_w")
        self._last_limit_w = None if last_limit is None else float(last_limit)

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "caps_w": list(self.caps_w),
            "controllers": [c.describe() for c in self.controllers],
        }
