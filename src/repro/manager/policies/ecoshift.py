"""EcoShift: demand-driven CPU/GPU budget reallocation.

The share-enforcement policies spend the whole node limit on the GPU
side and leave CPU sockets uncapped — fine for GPU-bound codes, wasteful
for anything with real CPU phases. EcoShift treats the node limit as a
single budget over *both* cappable domains and re-splits it on a slow
cadence according to measured demand:

1. reserve the uncappable draw (memory domains, recent peak) off the
   top,
2. water-fill the remainder across the CPU-socket and GPU domain boxes
   toward each side's measured demand (recent peak × a headroom
   factor),
3. install the result as uniform per-socket and per-GPU caps.

The split arithmetic is the pure :func:`split_node_budget`, so the
conservation property — allocations stay inside their boxes and sum to
the budget whenever the budget is feasible — is property-tested without
a simulator (``tests/test_property_policy_guards.py``).

This is the per-node analogue of the federation tier's
``split_site_budget`` (same water-fill shape, one level down), and of
the CPU/GPU power-shifting governors in the PowerStack literature.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

from repro.manager.policies.base import PowerPolicy


def split_node_budget(
    budget_w: float,
    boxes: Sequence[Tuple[float, float]],
    demands_w: Sequence[float],
) -> List[float]:
    """Water-fill ``budget_w`` across domain boxes toward demand.

    ``boxes`` are per-domain ``(lo, hi)`` total-watt bounds;
    ``demands_w`` the desired watts per domain. Returns one allocation
    per domain with ``lo_i <= alloc_i <= hi_i`` and
    ``sum(alloc) == clamp(budget_w, sum(lo), sum(hi))`` (the budget is
    conserved whenever it is feasible; an infeasible budget is clamped
    to the nearest feasible total). Pure and deterministic.

    Two passes: first fill every domain toward its (box-clamped)
    demand, pro-rata when the budget cannot cover all demands; then
    spread any surplus toward the ``hi`` bounds pro-rata to remaining
    headroom, so spare power is not stranded.
    """
    if len(boxes) != len(demands_w):
        raise ValueError("boxes and demands_w must have equal length")
    for lo, hi in boxes:
        if hi < lo:
            raise ValueError(f"domain box inverted: [{lo}, {hi}]")
    los = [float(lo) for lo, _ in boxes]
    his = [float(hi) for _, hi in boxes]
    total = min(max(float(budget_w), sum(los)), sum(his))
    alloc = list(los)
    remaining = total - sum(los)

    targets = [
        min(hi, max(lo, float(d))) for (lo, hi), d in zip(boxes, demands_w)
    ]
    want = [t - a for t, a in zip(targets, alloc)]
    want_total = sum(want)
    if want_total > 0.0 and remaining > 0.0:
        scale = min(1.0, remaining / want_total)
        alloc = [a + w * scale for a, w in zip(alloc, want)]
        remaining -= want_total * scale

    if remaining > 0.0:
        head = [hi - a for hi, a in zip(his, alloc)]
        head_total = sum(head)
        if head_total > 0.0:
            # remaining <= head_total because total <= sum(his).
            scale = min(1.0, remaining / head_total)
            alloc = [a + h * scale for a, h in zip(alloc, head)]
    return alloc


class EcoShiftPolicy(PowerPolicy):
    """Re-split the node limit across CPU and GPU domains by demand.

    Parameters
    ----------
    control_interval_s:
        Re-split cadence in seconds. Slow by design: domain demand
        moves with application phases, not samples.
    headroom:
        Multiplier on measured demand (>= 1) so the granted budget
        absorbs spikes between control actions.
    window:
        Tracking samples of demand history per domain (recent peak).
    """

    name = "ecoshift"

    def __init__(
        self,
        control_interval_s: float = 10.0,
        headroom: float = 1.1,
        window: int = 8,
    ) -> None:
        super().__init__()
        if control_interval_s <= 0:
            raise ValueError("control_interval_s must be > 0")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.control_interval_s = float(control_interval_s)
        self.headroom = float(headroom)
        self.window = int(window)
        self._gpu_demand = deque(maxlen=self.window)
        self._cpu_demand = deque(maxlen=self.window)
        self.last_split_w: Optional[Tuple[float, float]] = None
        self._timer = None

    # ------------------------------------------------------------------
    def attach(self, manager) -> None:
        super().attach(manager)
        self._timer = manager.add_timer(
            self.control_interval_s, self._control_tick
        )

    def detach(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        super().detach()

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        assert self.manager is not None
        if limit_w is None:
            self.manager.clear_gpu_caps()
            self.manager.clear_socket_caps()
            return
        # Until demand history accumulates, enforce the GPU-side share
        # like the proportional policy (safe: sockets stay uncapped).
        self.manager.enforce_limit_via_gpus(limit_w)

    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        assert self.manager is not None
        gpu_sum = sum(gpu_w)
        self._gpu_demand.append(gpu_sum)
        cpu_w = node_w - gpu_sum - self.manager.mem_power_w()
        self._cpu_demand.append(max(0.0, cpu_w))

    def reset_job_state(self) -> None:
        self._gpu_demand.clear()
        self._cpu_demand.clear()
        self.last_split_w = None

    def snapshot(self) -> dict:
        return {
            "gpu_demand": list(self._gpu_demand),
            "cpu_demand": list(self._cpu_demand),
            "last_split_w": (
                list(self.last_split_w) if self.last_split_w is not None else None
            ),
        }

    def restore(self, state) -> None:
        self._gpu_demand.clear()
        self._gpu_demand.extend(float(w) for w in state.get("gpu_demand") or [])
        self._cpu_demand.clear()
        self._cpu_demand.extend(float(w) for w in state.get("cpu_demand") or [])
        split = state.get("last_split_w")
        self.last_split_w = None if split is None else (float(split[0]), float(split[1]))

    # ------------------------------------------------------------------
    def _control_tick(self, _timer) -> None:
        m = self.manager
        assert m is not None
        limit = m.node_limit_w
        if limit is None or not m.job_present:
            return
        if len(self._gpu_demand) < self.window:
            return  # still warming up; share enforcement holds
        n_gpu = m.gpu_count
        n_sock = m.socket_count
        if n_gpu == 0 or n_sock == 0:
            return
        g_lo, g_hi = m.gpu_cap_range
        s_lo, s_hi = m.socket_cap_range
        budget = float(limit) - m.mem_power_w()
        cpu_alloc, gpu_alloc = split_node_budget(
            budget,
            boxes=[(n_sock * s_lo, n_sock * s_hi), (n_gpu * g_lo, n_gpu * g_hi)],
            demands_w=[
                max(self._cpu_demand) * self.headroom,
                max(self._gpu_demand) * self.headroom,
            ],
        )
        self.last_split_w = (cpu_alloc, gpu_alloc)
        for i in range(n_sock):
            m.set_socket_cap(i, cpu_alloc / n_sock)
        for i in range(n_gpu):
            m.set_gpu_cap(i, gpu_alloc / n_gpu)
        tel = m.broker.telemetry
        tel.metrics.gauge(
            "policy_domain_budget_w", labels={"domain": "cpu"},
            help="EcoShift per-domain budget allocations (watts)",
        ).set(cpu_alloc)
        tel.metrics.gauge(
            "policy_domain_budget_w", labels={"domain": "gpu"},
            help="EcoShift per-domain budget allocations (watts)",
        ).set(gpu_alloc)
        tel.metrics.counter(
            "policy_control_updates_total", labels={"policy": self.name},
            help="dynamic-policy control-loop evaluations, by policy",
        ).inc()

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "headroom": self.headroom,
            "last_split_w": self.last_split_w,
            "demand_fill": (len(self._cpu_demand), len(self._gpu_demand)),
        }
