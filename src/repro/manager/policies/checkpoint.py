"""Checkpoint-aware policy: coordinate caps with application phases.

Defensive checkpointing inverts a node's power profile: accelerator
draw collapses while CPU/IO draw bursts (state serialization + file
system writes). A share-enforcement policy wastes the whole GPU budget
during every such window and — worse — lets the node manager's non-GPU
power estimate learn the *checkpoint* CPU burst as the steady-state
reserve, shrinking compute-phase GPU budgets for the rest of the job.

This policy is *state-aware* (Section III-B's "other progress
metrics"): it learns which application landed on the node from the job
manager's existing ``job-state.*`` events (via
:meth:`~repro.manager.policies.base.PowerPolicy.on_job_state`), pulls
the app's :class:`~repro.apps.base.CheckpointProfile` from the apps
registry, and then runs a two-mode controller:

* **compute** — enforce the uniform GPU share, but derived from the
  policy's own *compute-phase* non-GPU estimate (samples taken during
  checkpoint windows are excluded, fixing the estimate-poisoning
  problem above);
* **checkpoint** — detected by the measured GPU-power dip the schedule
  predicts: cap GPUs down to their (collapsed) measured draw plus a
  margin and grant the freed watts to the CPU sockets, accelerating
  the burst; the schedule's ``duration_s`` bounds the window so a
  missed recovery cannot strand the GPUs capped low.

For applications with no checkpoint profile in the registry the policy
degenerates to proportional share enforcement.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.apps.base import CheckpointProfile
from repro.apps.registry import get_profile
from repro.manager.policies.base import PowerPolicy


class CheckpointAwarePolicy(PowerPolicy):
    """Two-mode (compute / checkpoint) cap controller.

    Parameters
    ----------
    dip_fraction:
        Fraction of the compute-phase GPU peak below which the node is
        considered inside a checkpoint window. Dimensionless in (0, 1);
        only dips at least this deep trigger the mode switch, so phase
        modulation alone does not.
    margin_w:
        Headroom (watts) left above measured GPU draw when capping
        GPUs down inside a window.
    window:
        Tracking samples of compute-phase history (recent peak).
    """

    name = "checkpoint"

    def __init__(
        self,
        dip_fraction: float = 0.5,
        margin_w: float = 15.0,
        window: int = 8,
    ) -> None:
        super().__init__()
        if not 0.0 < dip_fraction < 1.0:
            raise ValueError("dip_fraction must be in (0, 1)")
        if margin_w < 0:
            raise ValueError("margin_w must be >= 0")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.dip_fraction = float(dip_fraction)
        self.margin_w = float(margin_w)
        self.window = int(window)
        self.schedule: Optional[CheckpointProfile] = None
        self.app: Optional[str] = None
        self.in_checkpoint = False
        self.windows_seen = 0
        self._entered_at: Optional[float] = None
        self._gpu_peak = deque(maxlen=self.window)
        self._compute_non_gpu = deque(maxlen=self.window)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_job_state(self, state: str, payload: dict) -> None:
        if state not in ("running", "scheduled"):
            return
        app = payload.get("app")
        if not app:
            return
        self.app = app
        try:
            profile = get_profile(app)
        except KeyError:
            self.schedule = None
            return
        ck = profile.checkpoint
        self.schedule = ck if (ck is not None and ck.enabled) else None

    def reset_job_state(self) -> None:
        self.schedule = None
        self.app = None
        self.in_checkpoint = False
        self._entered_at = None
        self._gpu_peak.clear()
        self._compute_non_gpu.clear()

    def snapshot(self) -> dict:
        # The schedule object comes from the apps registry; snapshot the
        # app name plus a scheduled flag and re-resolve on restore so
        # the artifact stays plain JSON.
        return {
            "app": self.app,
            "scheduled": self.schedule is not None,
            "in_checkpoint": self.in_checkpoint,
            "windows_seen": self.windows_seen,
            "entered_at": self._entered_at,
            "gpu_peak": list(self._gpu_peak),
            "compute_non_gpu": list(self._compute_non_gpu),
        }

    def restore(self, state) -> None:
        app = state.get("app")
        self.app = None if app is None else str(app)
        self.schedule = None
        if state.get("scheduled") and self.app:
            try:
                ck = get_profile(self.app).checkpoint
            except KeyError:
                ck = None
            self.schedule = ck if (ck is not None and ck.enabled) else None
        self.in_checkpoint = bool(state.get("in_checkpoint", False))
        self.windows_seen = int(state.get("windows_seen", 0))
        entered = state.get("entered_at")
        self._entered_at = None if entered is None else float(entered)
        self._gpu_peak.clear()
        self._gpu_peak.extend(float(w) for w in state.get("gpu_peak") or [])
        self._compute_non_gpu.clear()
        self._compute_non_gpu.extend(
            float(w) for w in state.get("compute_non_gpu") or []
        )

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        assert self.manager is not None
        if limit_w is None:
            self.manager.clear_gpu_caps()
            self.manager.clear_socket_caps()
            return
        self._enforce_compute_share(limit_w)

    # ------------------------------------------------------------------
    # Compute-phase share (own non-GPU estimate)
    # ------------------------------------------------------------------
    def _compute_share(self, limit_w: float) -> float:
        """Per-GPU cap from the *compute-phase* non-GPU estimate."""
        m = self.manager
        assert m is not None
        lo, hi = m.gpu_cap_range
        n = m.gpu_count
        if n == 0:
            return 0.0
        if self._compute_non_gpu:
            non_gpu = max(self._compute_non_gpu)
            per_gpu = (float(limit_w) - non_gpu) / n
            return float(min(max(per_gpu, lo), hi))
        return m.derive_gpu_share(float(limit_w))

    def _enforce_compute_share(self, limit_w: float) -> None:
        m = self.manager
        assert m is not None
        per_gpu = self._compute_share(limit_w)
        for i in range(m.gpu_count):
            m.set_gpu_cap(i, per_gpu)

    # ------------------------------------------------------------------
    # Sampling: mode detection + enforcement
    # ------------------------------------------------------------------
    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        m = self.manager
        assert m is not None
        limit = m.node_limit_w
        if limit is None:
            return
        if self.schedule is None:
            # No checkpoint knowledge: plain share enforcement.
            m.enforce_limit_via_gpus(limit)
            return
        gpu_sum = sum(gpu_w)
        if self.in_checkpoint:
            self._sample_in_window(timestamp, limit, gpu_w, gpu_sum)
        else:
            self._sample_in_compute(timestamp, node_w, limit, gpu_w, gpu_sum)

    def _sample_in_compute(
        self,
        timestamp: float,
        node_w: float,
        limit: float,
        gpu_w: List[float],
        gpu_sum: float,
    ) -> None:
        m = self.manager
        assert m is not None
        peak = max(self._gpu_peak) if self._gpu_peak else 0.0
        if (
            len(self._gpu_peak) >= self.window // 2 + 1
            and peak > 0.0
            and gpu_sum < self.dip_fraction * peak
        ):
            # The scheduled dip arrived: enter checkpoint mode.
            self.in_checkpoint = True
            self._entered_at = timestamp
            self.windows_seen += 1
            m.broker.telemetry.metrics.counter(
                "policy_checkpoint_windows_total",
                help="checkpoint windows entered by the checkpoint policy",
            ).inc()
            self._apply_window_caps(limit, gpu_w)
            return
        self._gpu_peak.append(gpu_sum)
        self._compute_non_gpu.append(max(0.0, node_w - gpu_sum))
        self._enforce_compute_share(limit)

    def _sample_in_window(
        self,
        timestamp: float,
        limit: float,
        gpu_w: List[float],
        gpu_sum: float,
    ) -> None:
        assert self.schedule is not None and self._entered_at is not None
        peak = max(self._gpu_peak) if self._gpu_peak else 0.0
        elapsed = timestamp - self._entered_at
        recovered = peak > 0.0 and gpu_sum > self.dip_fraction * peak
        # The schedule bounds the window: even if the caps we installed
        # prevent the power signal from ever "recovering", exit after
        # the profile's declared duration (plus one-interval slack).
        timed_out = elapsed >= 2.0 * self.schedule.duration_s
        if recovered or timed_out:
            self.in_checkpoint = False
            self._entered_at = None
            self._restore_compute_caps(limit)
            return
        self._apply_window_caps(limit, gpu_w)

    # ------------------------------------------------------------------
    # Cap actions
    # ------------------------------------------------------------------
    def _apply_window_caps(self, limit: float, gpu_w: List[float]) -> None:
        """Inside a window: squeeze GPUs, grant the surplus to sockets."""
        m = self.manager
        assert m is not None
        g_lo, g_hi = m.gpu_cap_range
        granted = 0.0
        for i, w in enumerate(gpu_w):
            cap = min(max(w + self.margin_w, g_lo), g_hi)
            m.set_gpu_cap(i, cap)
            granted += cap
        n_sock = m.socket_count
        if n_sock == 0:
            return
        s_lo, s_hi = m.socket_cap_range
        # CPU-side budget: everything the limit allows once the
        # (squeezed) GPU grant and the uncappable memory draw are paid.
        cpu_budget = float(limit) - granted - m.mem_power_w()
        per_sock = min(max(cpu_budget / n_sock, s_lo), s_hi)
        for i in range(n_sock):
            m.set_socket_cap(i, per_sock)

    def _restore_compute_caps(self, limit: float) -> None:
        m = self.manager
        assert m is not None
        self._enforce_compute_share(limit)
        n_sock = m.socket_count
        if n_sock == 0:
            return
        s_lo, s_hi = m.socket_cap_range
        # Back to compute mode: sockets return to their uniform share
        # of what the limit leaves after the GPU grant.
        per_gpu = self._compute_share(limit)
        cpu_budget = (
            float(limit) - per_gpu * m.gpu_count - m.mem_power_w()
        )
        per_sock = min(max(cpu_budget / n_sock, s_lo), s_hi)
        for i in range(n_sock):
            m.set_socket_cap(i, per_sock)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "policy": self.name,
            "app": self.app,
            "scheduled": self.schedule is not None,
            "in_checkpoint": self.in_checkpoint,
            "windows_seen": self.windows_seen,
        }
