"""Proportional-share enforcement policy (Section III-B1).

The cluster manager computes each job's share; the job manager splits
it per node; this policy *enforces* the resulting node limit by setting
uniform per-GPU caps: the GPU budget is the node limit minus the node
manager's running estimate of non-GPU power (CPU + memory + uncore,
tracked from live measurements), divided across GPUs and clamped into
the device capping range.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.manager.policies.base import PowerPolicy


# ----------------------------------------------------------------------
# Share arithmetic (pure; property-tested)
# ----------------------------------------------------------------------
def per_node_share(budget_w: float, active_nodes: int, node_peak_w: float) -> float:
    """The paper's ``P_n = min(peak, P_G / (N_k + N_i))``.

    Every allocated node gets its theoretical peak while the budget
    covers it; past that point the whole budget is divided evenly over
    the allocated nodes. Pure so the cluster manager's arithmetic can
    be property-tested without a simulator
    (``tests/test_property_buffer_shares.py``).
    """
    if active_nodes <= 0:
        raise ValueError(f"active_nodes must be > 0, got {active_nodes}")
    if active_nodes * node_peak_w <= budget_w:
        return node_peak_w
    return budget_w / active_nodes


def split_budget(
    budget_w: float, job_nodes: Mapping[int, int], node_peak_w: float
) -> Dict[int, float]:
    """Per-job power limits: each job gets ``share × its node count``."""
    total = sum(job_nodes.values())
    if total == 0:
        return {}
    share = per_node_share(budget_w, total, node_peak_w)
    return {jobid: share * n for jobid, n in job_nodes.items()}


class ProportionalPolicy(PowerPolicy):
    """Enforce the assigned node share via uniform per-GPU caps."""

    name = "proportional"

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        assert self.manager is not None
        if limit_w is None:
            self.manager.clear_gpu_caps()
            return
        self.manager.enforce_limit_via_gpus(limit_w)

    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        # Re-derive caps as the non-GPU power estimate refines — a share
        # computed against a stale estimate can strand or overshoot
        # power. Cheap: only reissues NVML calls when the cap moved.
        assert self.manager is not None
        if self.manager.node_limit_w is not None:
            self.manager.enforce_limit_via_gpus(self.manager.node_limit_w)
