"""Proportional-share enforcement policy (Section III-B1).

The cluster manager computes each job's share; the job manager splits
it per node; this policy *enforces* the resulting node limit by setting
uniform per-GPU caps: the GPU budget is the node limit minus the node
manager's running estimate of non-GPU power (CPU + memory + uncore,
tracked from live measurements), divided across GPUs and clamped into
the device capping range.
"""

from __future__ import annotations

from typing import Optional

from repro.manager.policies.base import PowerPolicy


class ProportionalPolicy(PowerPolicy):
    """Enforce the assigned node share via uniform per-GPU caps."""

    name = "proportional"

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        assert self.manager is not None
        if limit_w is None:
            self.manager.clear_gpu_caps()
            return
        self.manager.enforce_limit_via_gpus(limit_w)

    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        # Re-derive caps as the non-GPU power estimate refines — a share
        # computed against a stale estimate can strand or overshoot
        # power. Cheap: only reissues NVML calls when the cap moved.
        assert self.manager is not None
        if self.manager.node_limit_w is not None:
            self.manager.enforce_limit_via_gpus(self.manager.node_limit_w)
