"""Policy interface: the contract every node-level policy implements.

See docs/policies.md for the full cookbook (lifecycle, units, safety
wrapper, gain tuning). The short version:

**Lifecycle.** The node manager calls :meth:`attach` once when the
policy is installed (and again with a *fresh* policy instance after a
job departs), then

* :meth:`on_node_limit` whenever the cluster → job → node cap chain
  assigns a new node power limit,
* :meth:`on_sample` on every power-tracking tick (default every 2 s),
* :meth:`on_job_state` when a ``job-state.*`` event touching this
  node's rank arrives (the hook the checkpoint-aware policy uses to
  look up the incoming application in the apps registry),
* :meth:`reset_job_state` (optional, looked up via ``getattr``) when a
  *different* job lands on the node while the policy stays attached,
* :meth:`detach` when the policy is unloaded.

Policies create their own control-cadence timers through the manager's
module helpers (``self.manager.add_timer(...)``).

**Units.** Every power value crossing this interface is **watts**:
``limit_w`` (whole node), ``node_w`` (whole node, measured),
``gpu_w`` (per device, measured), and everything returned by the
manager's ``derive_*``/``non_*_power_w`` helpers. Quantities that are
*not* watts are fractions or ratios and are named accordingly — e.g.
the safety wrapper's ``damper`` (fraction of the device capping span)
and ``slowdown`` (dimensionless ratio >= 1); see
:mod:`repro.manager.policies.safety`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.manager.node_manager import NodeManagerModule


class PowerPolicy:
    """Base class for node-level power policies.

    Subclasses override the hooks they need; every default is a no-op,
    so a policy that only reacts to limits (``StaticPolicy``) and one
    that runs a full control loop (``FPPPolicy``, ``PIPolicy``) share
    this interface. Dynamic policies should normally be deployed inside
    a :class:`~repro.manager.policies.safety.PolicySafetyWrapper`.
    """

    name = "base"

    def __init__(self) -> None:
        #: The hosting node manager (or the safety wrapper's guarded
        #: proxy of it) — None while detached.
        self.manager: Optional["NodeManagerModule"] = None

    def attach(self, manager: "NodeManagerModule") -> None:
        """Install on a node manager. Called once before any other hook."""
        self.manager = manager

    def detach(self) -> None:
        """Unload: drop timers/state; the manager reference dies here."""
        self.manager = None

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        """A new node power limit arrived (watts; None = unconstrained)."""

    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        """Periodic power reading from the node manager's tracker.

        ``timestamp`` is simulation seconds, ``node_w`` the measured
        whole-node power in watts, ``gpu_w`` the per-accelerator watts
        in device order.
        """

    def on_job_state(self, state: str, payload: dict) -> None:
        """A ``job-state.<state>`` event whose ranks include this node.

        ``payload`` carries the job manager's event fields (``jobid``,
        ``app``, ``nnodes``, ``ranks``, ``t``). Only forwarded for
        events that involve this node's rank.
        """

    def snapshot(self) -> dict:
        """JSON-able continuation state for crash recovery.

        Everything a restored policy needs to continue the control loop
        it was running — learned estimates, integrals, demand windows —
        but never object references, timers or hardware handles (the
        restored policy keeps its own). Stateless policies return ``{}``
        (the default). Must round-trip through ``json.dumps``.
        """
        return {}

    def restore(self, state: Mapping) -> None:
        """Rehydrate from :meth:`snapshot` output, while attached.

        The contract is *total*: missing keys reset to fresh-attach
        defaults, so ``restore({})`` doubles as the amnesiac wipe the
        crash-recovery harness uses. Restore is silent — it installs
        state without emitting metrics or re-writing device caps.
        """

    def describe(self) -> dict:
        """Telemetry/debug snapshot of policy state."""
        return {"policy": self.name}
