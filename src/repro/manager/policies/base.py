"""Policy interface."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.manager.node_manager import NodeManagerModule


class PowerPolicy:
    """Base class for node-level power policies.

    Lifecycle: the node manager calls :meth:`attach` once, then
    :meth:`on_node_limit` whenever the cluster/job managers assign a new
    node power limit, :meth:`on_sample` from its power-tracking loop,
    and :meth:`detach` when the job leaves the node. Policies create
    their own timers through the node manager's module helpers.
    """

    name = "base"

    def __init__(self) -> None:
        self.manager: Optional["NodeManagerModule"] = None

    def attach(self, manager: "NodeManagerModule") -> None:
        self.manager = manager

    def detach(self) -> None:
        self.manager = None

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        """A new node power limit arrived (None = unconstrained)."""

    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        """Periodic power reading from the node manager's tracker."""

    def describe(self) -> dict:
        """Telemetry/debug snapshot of policy state."""
        return {"policy": self.name}
