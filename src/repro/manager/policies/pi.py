"""PI feedback policy: close the loop on measured node power.

The share-enforcement policies are *feed-forward*: they derive device
caps from the node limit and a conservative non-device power estimate,
so a node typically settles somewhat below its limit (stranded power)
or rides measurement error. This policy adds the classical feedback
alternative from the production power-management literature (PowerAPI /
GEOPM-style governors): a proportional-integral controller on the
error between the assigned node limit and *measured* node power,
actuating the total GPU budget.

    error_w  = (node_limit_w - margin_w) - node_w
    budget_w = base_w + kp * error_w + ki * integral(error_w dt)

``base_w`` is the feed-forward operating point (the uniform-share GPU
budget), so the P and I terms only correct the *residual* — with zero
gains the policy degenerates to proportional enforcement.

Anti-windup uses **conditional integration**: the integral stops
accumulating while the controller output is saturated at a budget
bound *and* the error keeps pushing further into saturation; an
absolute clamp on the integral term bounds the stored correction even
across long saturated stretches. The arithmetic is the pure
:func:`pi_step` so the no-escape property (output always inside the
commanded box) is property-tested without a simulator.

Deliberately mis-tuned gains make this controller oscillate hard —
that is what the :class:`~repro.manager.policies.safety.
PolicySafetyWrapper` is for, and the registry only ever exposes the
wrapped form (``"pi"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.manager.policies.base import PowerPolicy


@dataclass(frozen=True)
class PIParams:
    """Controller constants. See docs/policies.md for tuning guidance.

    Attributes
    ----------
    kp:
        Proportional gain, watts of budget per watt of error
        (dimensionless). The default 0.4 recovers about a third of the
        observed error per control interval without overshooting on
        the plant's ~one-sample actuation delay.
    ki:
        Integral gain, 1/s: watts of budget per accumulated watt-second
        of error.
    control_interval_s:
        Control cadence. Must be >= the sampling interval (the error
        signal only refreshes per sample).
    margin_w:
        Setpoint backoff below the node limit, in watts. A small
        margin keeps transient overshoot from tripping node-level
        enforcement.
    integral_clamp_ws:
        Absolute bound on the stored integral, in watt-seconds
        (|ki * integral| <= ki * clamp watts of correction).
    """

    kp: float = 0.4
    ki: float = 0.02
    control_interval_s: float = 6.0
    margin_w: float = 10.0
    integral_clamp_ws: float = 4000.0


def pi_step(
    error_w: float,
    integral_ws: float,
    dt_s: float,
    kp: float,
    ki: float,
    base_w: float,
    out_lo_w: float,
    out_hi_w: float,
    integral_clamp_ws: float,
) -> Tuple[float, float]:
    """One PI update with conditional-integration anti-windup.

    Returns ``(output_w, new_integral_ws)`` with ``output_w`` clamped
    into ``[out_lo_w, out_hi_w]`` and ``|new_integral_ws|`` never
    exceeding ``max(|integral_ws|, integral_clamp_ws)``. Pure — this is
    the function under property test.
    """
    if out_hi_w < out_lo_w:
        raise ValueError(f"output box inverted: [{out_lo_w}, {out_hi_w}]")
    if dt_s < 0.0:
        raise ValueError("dt_s must be >= 0")
    clamp = abs(integral_clamp_ws)
    cand = integral_ws + error_w * dt_s
    cand = min(max(cand, -clamp), clamp)
    unsat = base_w + kp * error_w + ki * cand
    # Conditional integration: freeze the integral while saturated and
    # the error pushes further into the same bound.
    if (unsat > out_hi_w and error_w > 0.0) or (
        unsat < out_lo_w and error_w < 0.0
    ):
        new_integral = integral_ws
    else:
        new_integral = cand
    out = base_w + kp * error_w + ki * new_integral
    return min(max(out, out_lo_w), out_hi_w), new_integral


class PIPolicy(PowerPolicy):
    """Uniform per-GPU caps driven by a PI loop on node power error."""

    name = "pi"

    def __init__(self, params: Optional[PIParams] = None) -> None:
        super().__init__()
        self.params = params or PIParams()
        if self.params.control_interval_s <= 0:
            raise ValueError("control_interval_s must be > 0")
        self.integral_ws = 0.0
        self.last_error_w: Optional[float] = None
        self._last_node_w: Optional[float] = None
        self._timer = None

    # ------------------------------------------------------------------
    def attach(self, manager) -> None:
        super().attach(manager)
        self._timer = manager.add_timer(
            self.params.control_interval_s, self._control_tick
        )

    def detach(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        super().detach()

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        assert self.manager is not None
        if limit_w is None:
            self.integral_ws = 0.0
            self.manager.clear_gpu_caps()
            return
        # Feed-forward step to the uniform share; the loop corrects the
        # residual from the next control tick on.
        self.manager.enforce_limit_via_gpus(limit_w)

    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        self._last_node_w = node_w

    def reset_job_state(self) -> None:
        self.integral_ws = 0.0
        self.last_error_w = None
        self._last_node_w = None

    def snapshot(self) -> dict:
        return {
            "integral_ws": self.integral_ws,
            "last_error_w": self.last_error_w,
            "last_node_w": self._last_node_w,
        }

    def restore(self, state) -> None:
        self.integral_ws = float(state.get("integral_ws", 0.0))
        last_error = state.get("last_error_w")
        self.last_error_w = None if last_error is None else float(last_error)
        last_node = state.get("last_node_w")
        self._last_node_w = None if last_node is None else float(last_node)

    # ------------------------------------------------------------------
    def _control_tick(self, _timer) -> None:
        m = self.manager
        assert m is not None
        limit = m.node_limit_w
        if limit is None or self._last_node_w is None or not m.job_present:
            return
        n = m.gpu_count
        if n == 0:
            return
        lo, hi = m.gpu_cap_range
        p = self.params
        error_w = (float(limit) - p.margin_w) - self._last_node_w
        base_w = m.derive_gpu_share(limit) * n
        budget_w, self.integral_ws = pi_step(
            error_w,
            self.integral_ws,
            p.control_interval_s,
            p.kp,
            p.ki,
            base_w,
            out_lo_w=lo * n,
            out_hi_w=hi * n,
            integral_clamp_ws=p.integral_clamp_ws,
        )
        self.last_error_w = error_w
        per_gpu = budget_w / n
        for i in range(n):
            m.set_gpu_cap(i, per_gpu)
        m.broker.telemetry.metrics.counter(
            "policy_control_updates_total", labels={"policy": self.name},
            help="dynamic-policy control-loop evaluations, by policy",
        ).inc()

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "kp": self.params.kp,
            "ki": self.params.ki,
            "integral_ws": self.integral_ws,
            "last_error_w": self.last_error_w,
        }
