"""FPP: the FFT-based dynamic power policy (Algorithm 1).

Per GPU, FPP keeps a buffer of power samples, estimates the signal's
dominant period every ``fft_update_s`` (30 s), and every
``powercap_time_s`` (90 s) adjusts the GPU cap based on how the period
moved since the previous control interval:

* ``|Δ| <= converge_th`` (2 s) — the application is unaffected by the
  current cap: stop adjusting (persistent converged flag).
* ``Δ < 0`` and ``converge_th < |Δ| < change_th`` (5 s) — the period
  shrank a little: the application is not significantly affected, so
  reduce the cap by ``P_reduce`` (50 W).
* otherwise — the period grew (the cap is hurting progress): give
  power back in steps of ``powercap_levels[min(|Δ|/5, 2)]`` W.

Two points in the published pseudocode are ambiguous and resolved here,
consistent with the paper's narrative (Section IV-D):

1. ``F_converge`` is initialised inside GET-GPU-CAP, which would reset
   it on every call; the text says "power adjustments cease when the
   delta falls below the convergence threshold", so the flag is kept
   *persistent* per GPU.
2. On the very first control interval (``P_cap_prev is None``) the
   pseudocode returns the current cap unchanged — but then no reduction
   could ever occur, since a stable app converges immediately. The text
   says "FPP first *tries to reduce power*", so the first interval
   records the baseline period and applies an initial probe reduction
   of ``P_reduce``.

When the period detector returns ``None`` (flat or noise-dominated
signal — GEMM/LAMMPS/NQueens have "relatively flat power timelines"),
the change is treated as exceeding the change threshold and power is
restored at the maximum step — reproducing "FPP ... sees that the
period doubles and instantly gives back the power".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.manager.fft import estimate_period
from repro.manager.policies.base import PowerPolicy
from repro.telemetry import FPP_FFT_COST_S


@dataclass(frozen=True)
class FPPParams:
    """Algorithm 1 constants (all overridable; defaults are the paper's).

    The defaults assume "a GPU similar to the NVIDIA Volta" (300 W max);
    the ablation bench sweeps ``p_reduce_w``, ``powercap_time_s`` and
    the step levels, which the paper lists as unexplored future work.
    """

    converge_th_s: float = 2.0
    change_th_s: float = 5.0
    p_reduce_w: float = 50.0
    powercap_levels_w: Tuple[float, float, float] = (10.0, 15.0, 25.0)
    powercap_time_s: float = 90.0
    fft_update_s: float = 30.0
    max_gpu_cap_w: float = 300.0
    initial_probe: bool = True


class FPPGpuController:
    """Per-GPU FPP state machine: buffer, period history, cap decisions."""

    def __init__(self, index: int, params: FPPParams, sample_dt_s: float) -> None:
        self.index = index
        self.params = params
        self.sample_dt_s = float(sample_dt_s)
        self.buffer: List[float] = []
        self.period_s: Optional[float] = None
        self.t_prev: Optional[float] = None
        self.cap_prev: Optional[float] = None
        self.converged = False
        self.last_delta: Optional[float] = None
        self._samples_since_update = 0

    # ------------------------------------------------------------------
    # FFT-GET-PERIOD
    # ------------------------------------------------------------------
    def store_power(self, watts: float) -> None:
        """STOREPOWERDATA + the 30 s rolling period refresh."""
        self.buffer.append(float(watts))
        self._samples_since_update += 1
        if self._samples_since_update * self.sample_dt_s >= self.params.fft_update_s:
            self._samples_since_update = 0
            period = estimate_period(self.buffer, self.sample_dt_s)
            if period is not None or len(self.buffer) * self.sample_dt_s >= (
                self.params.fft_update_s
            ):
                self.period_s = period

    def refresh_period(self) -> None:
        """Re-estimate from the full current buffer (freshest data).

        Called by the policy right before a control decision so the
        decision never acts on an estimate up to 30 s stale.
        """
        period = estimate_period(self.buffer, self.sample_dt_s)
        if period is not None or (
            len(self.buffer) * self.sample_dt_s >= self.params.fft_update_s
        ):
            self.period_s = period

    def reset_buffer(self) -> None:
        """MAIN line 42: reset the FFT buffer each control interval."""
        self.buffer.clear()
        self._samples_since_update = 0

    # ------------------------------------------------------------------
    # GET-GPU-CAP
    # ------------------------------------------------------------------
    def next_cap(
        self, cap_cur: float, cap_floor: float, cap_ceiling: float
    ) -> float:
        """One control-interval decision; returns the cap to install."""
        p = self.params
        t_cur = self.period_s
        if self.converged:
            return cap_cur
        if self.cap_prev is None:
            # First interval: record baseline, probe downward (see
            # module docstring, disambiguation 2).
            self.t_prev = t_cur
            self.cap_prev = cap_cur
            if p.initial_probe:
                return max(cap_floor, cap_cur - p.p_reduce_w)
            return cap_cur

        if t_cur is None or self.t_prev is None:
            delta = math.inf
            delta_abs = math.inf
        else:
            delta = t_cur - self.t_prev
            delta_abs = abs(delta)
        self.last_delta = None if math.isinf(delta_abs) else delta
        self.t_prev = t_cur
        self.cap_prev = cap_cur

        if delta_abs <= p.converge_th_s:
            self.converged = True
            return cap_cur
        if delta < 0 and p.converge_th_s < delta_abs < p.change_th_s:
            return max(cap_floor, cap_cur - p.p_reduce_w)
        if math.isinf(delta_abs):
            level = p.powercap_levels_w[-1]
        else:
            idx = min(int(delta_abs / p.change_th_s), len(p.powercap_levels_w) - 1)
            level = p.powercap_levels_w[idx]
        return min(cap_ceiling, cap_cur + level)

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "buffer": list(self.buffer),
            "period_s": self.period_s,
            "t_prev": self.t_prev,
            "cap_prev": self.cap_prev,
            "converged": self.converged,
            "last_delta": self.last_delta,
            "samples_since_update": self._samples_since_update,
        }

    def restore(self, state) -> None:
        self.buffer = [float(w) for w in state.get("buffer") or []]
        period = state.get("period_s")
        self.period_s = None if period is None else float(period)
        t_prev = state.get("t_prev")
        self.t_prev = None if t_prev is None else float(t_prev)
        cap_prev = state.get("cap_prev")
        self.cap_prev = None if cap_prev is None else float(cap_prev)
        self.converged = bool(state.get("converged", False))
        last_delta = state.get("last_delta")
        self.last_delta = None if last_delta is None else float(last_delta)
        self._samples_since_update = int(state.get("samples_since_update", 0))

    def describe(self) -> dict:
        return {
            "gpu": self.index,
            "period_s": self.period_s,
            "converged": self.converged,
            "last_delta_s": self.last_delta,
        }


class FPPPolicy(PowerPolicy):
    """Node-level FPP: one controller per GPU, 90 s control cadence.

    The node power limit assigned by the job-level manager defines each
    GPU's *ceiling* (``GPU_Power_Lim``, derived exactly like the
    proportional policy's uniform split); FPP then moves each GPU's cap
    independently below that ceiling — non-uniform per-GPU distribution
    is the point of running it per device.
    """

    name = "fpp"

    def __init__(self, params: Optional[FPPParams] = None) -> None:
        super().__init__()
        self.params = params or FPPParams()
        self.controllers: List[FPPGpuController] = []
        self.caps_w: List[float] = []
        self._timer = None
        self._last_limit_w: Optional[float] = None

    # ------------------------------------------------------------------
    def attach(self, manager) -> None:
        super().attach(manager)
        n = manager.gpu_count
        self.controllers = [
            FPPGpuController(i, self.params, manager.sample_interval_s)
            for i in range(n)
        ]
        lo, hi = manager.gpu_cap_range
        self.caps_w = [min(self.params.max_gpu_cap_w, hi)] * n
        self._timer = manager.add_timer(
            self.params.powercap_time_s, self._control_tick
        )

    def detach(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None
        super().detach()

    # ------------------------------------------------------------------
    def _ceiling(self) -> float:
        """GPU_Power_Lim: derived max cap from the node-level limit."""
        assert self.manager is not None
        lo, hi = self.manager.gpu_cap_range
        limit = self.manager.node_limit_w
        if limit is None:
            derived = hi
        else:
            derived = self.manager.derive_gpu_share(limit)
        return min(self.params.max_gpu_cap_w, derived, hi)

    def on_node_limit(self, limit_w: Optional[float]) -> None:
        assert self.manager is not None
        ceiling = self._ceiling()
        lo, _hi = self.manager.gpu_cap_range
        previous = self._last_limit_w
        self._last_limit_w = limit_w
        if limit_w != previous:
            increased = (
                previous is not None
                and limit_w is not None
                and limit_w > previous
            ) or (limit_w is None and previous is not None)
            if increased:
                # Headroom appeared (a co-running job departed).
                # Algorithm 1's MAIN derives P_cap_cur from the
                # node-level limit, so restart the per-GPU state
                # machines at the new ceiling and probe again.
                self.reset_job_state()
                return
            # A share decrease is a hard budget change: clamp caps
            # below (handled by the loop that follows) but keep the
            # controllers' learned state — repeated re-probing on
            # every arrival would thrash busy queues.
        for i in range(len(self.caps_w)):
            # Same limit re-announced: only enforce the (possibly
            # refined) ceiling downward; FPP walks caps up on its own
            # cadence.
            if self.caps_w[i] > ceiling:
                self.caps_w[i] = max(lo, ceiling)
            self.manager.set_gpu_cap(i, self.caps_w[i])

    def on_sample(self, timestamp: float, node_w: float, gpu_w: list) -> None:
        for ctl, w in zip(self.controllers, gpu_w):
            ctl.store_power(w)
        # The budget ceiling moves as the node manager's non-GPU power
        # estimate refines; a meaningful ceiling decrease must be
        # enforced at once (the share is a hard limit), while increases
        # wait for FPP's own control cadence. The 10 W hysteresis stops
        # phase-induced jitter in the estimate from ratcheting caps
        # down between control ticks.
        assert self.manager is not None
        if self.manager.node_limit_w is not None:
            ceiling = self._ceiling()
            lo, _hi = self.manager.gpu_cap_range
            for i in range(len(self.caps_w)):
                if self.caps_w[i] > ceiling + 10.0:
                    self.caps_w[i] = max(lo, ceiling)
                    self.manager.set_gpu_cap(i, self.caps_w[i])

    def _control_tick(self, _timer) -> None:
        assert self.manager is not None
        if self.manager.node_limit_w is None and not self.manager.job_present:
            return  # idle node: nothing to manage
        tel = self.manager.broker.telemetry
        rank = self.manager.broker.rank
        tel.metrics.counter(
            "fpp_control_ticks_total",
            help="FPP 90 s control-interval evaluations (active nodes)",
        ).inc()
        lo, _hi = self.manager.gpu_cap_range
        ceiling = self._ceiling()
        with tel.tracer.trace_span(
            "fpp.control_tick", "manager", rank=rank, gpus=len(self.controllers)
        ):
            for i, ctl in enumerate(self.controllers):
                ctl.refresh_period()
                tel.metrics.counter(
                    "fpp_fft_runs_total",
                    help="FFT period estimations at control ticks",
                ).inc()
                tel.accountant.charge("manager", FPP_FFT_COST_S)
                outcome = "detected" if ctl.period_s is not None else "none"
                tel.metrics.counter(
                    "fpp_periods_total", labels={"outcome": outcome},
                    help="period-detection outcomes (detected vs flat/noisy)",
                ).inc()
                if ctl.period_s is not None:
                    tel.metrics.histogram(
                        "fpp_period_seconds",
                        buckets=(2.0, 5.0, 10.0, 20.0, 30.0, 45.0, 60.0, 90.0),
                        help="detected dominant application periods",
                    ).observe(ctl.period_s)
                new_cap = ctl.next_cap(self.caps_w[i], lo, ceiling)
                if new_cap != self.caps_w[i]:
                    direction = "down" if new_cap < self.caps_w[i] else "up"
                    tel.metrics.counter(
                        "fpp_cap_changes_total", labels={"direction": direction},
                        help="FPP per-GPU cap adjustments, by direction",
                    ).inc()
                    self.caps_w[i] = new_cap
                    self.manager.set_gpu_cap(i, new_cap)
                ctl.reset_buffer()

    def reset_job_state(self) -> None:
        """Fresh controllers when a new job lands on the node."""
        assert self.manager is not None
        n = self.manager.gpu_count
        self.controllers = [
            FPPGpuController(i, self.params, self.manager.sample_interval_s)
            for i in range(n)
        ]
        lo, hi = self.manager.gpu_cap_range
        ceiling = self._ceiling()
        self.caps_w = [max(lo, ceiling)] * n
        for i in range(n):
            self.manager.set_gpu_cap(i, self.caps_w[i])

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        return {
            "caps_w": list(self.caps_w),
            "last_limit_w": self._last_limit_w,
            "controllers": [c.snapshot() for c in self.controllers],
        }

    def restore(self, state) -> None:
        assert self.manager is not None
        n = self.manager.gpu_count
        ctl_states = state.get("controllers")
        if ctl_states is None:
            # Amnesiac wipe: back to attach-fresh state (no cap writes;
            # installed hardware caps are environment, not policy state).
            self.controllers = [
                FPPGpuController(i, self.params, self.manager.sample_interval_s)
                for i in range(n)
            ]
            _lo, hi = self.manager.gpu_cap_range
            self.caps_w = [min(self.params.max_gpu_cap_w, hi)] * n
            self._last_limit_w = None
            return
        if len(ctl_states) != n:
            raise ValueError(
                f"snapshot has {len(ctl_states)} controllers, node has {n} GPUs"
            )
        for ctl, ctl_state in zip(self.controllers, ctl_states):
            ctl.restore(ctl_state)
        self.caps_w = [float(w) for w in state.get("caps_w") or []]
        last_limit = state.get("last_limit_w")
        self._last_limit_w = None if last_limit is None else float(last_limit)

    def describe(self) -> dict:
        return {
            "policy": self.name,
            "caps_w": list(self.caps_w),
            "controllers": [c.describe() for c in self.controllers],
        }
