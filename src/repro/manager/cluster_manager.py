"""The cluster-level manager (Section III-B, III-B1).

State-aware: subscribes to ``job-state.*`` events from the job manager,
so it always knows which jobs occupy which nodes. On every arrival or
departure it recomputes power shares:

* **Unconstrained** cluster (no global cap): every node is allowed its
  theoretical peak and no capping is performed.
* **Power-constrained**: first try to give every active node peak
  power; if the budget does not cover that, redistribute to *all* jobs
  proportionally to node count — per-node allocation
  ``P_n = P_G / (N_k + N_i)``, a new job receiving ``N_i * P_n``.

A configured static node cap (IBM OPAL on Lassen) is installed by every
node manager at load time; this is the Table III/IV "static" baseline
and also the hard backstop above the dynamic policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.flux.broker import Broker
from repro.flux.message import Message
from repro.flux.module import Module
from repro.manager.job_level import JobLevelManager
from repro.manager.policies.proportional import per_node_share
from repro.telemetry import MANAGER_RECOMPUTE_COST_PER_JOB_S


@dataclass(frozen=True)
class ManagerConfig:
    """Deployment configuration for flux-power-manager.

    Attributes
    ----------
    global_cap_w:
        Cluster power budget; ``None`` models an unconstrained system.
    node_peak_w:
        Theoretical per-node peak (3050 W on Lassen) — the allocation
        when the budget allows it.
    policy:
        Node-policy name resolved against
        :data:`repro.manager.policies.POLICY_FACTORIES`: the paper's
        ``"static"``, ``"proportional"`` and ``"fpp"``, plus
        ``"fpp-socket"``, ``"history"`` and the safety-wrapped zoo
        policies ``"pi"``, ``"ecoshift"`` and ``"checkpoint"``.
    static_node_cap_w:
        OPAL node cap installed on every node at load time (IBM's
        mechanism; also the backstop for the dynamic policies, 1950 W
        in Table IV).
    sample_interval_s:
        Node managers' power-tracking period.
    account_idle_nodes:
        The paper's formula ``P_n = P_G/(N_k + N_i)`` divides the whole
        budget over *allocated* nodes; idle nodes' draw rides on top,
        so total cluster power exceeds ``P_G`` whenever the machine is
        partially allocated. With this flag the manager reserves
        ``idle_node_w`` per unallocated node out of the budget first,
        making the constraint hold for the *whole* cluster.
    idle_node_w:
        Reserved per idle node when ``account_idle_nodes`` is set
        (Lassen idles at ~400 W).
    """

    global_cap_w: Optional[float] = None
    node_peak_w: float = 3050.0
    policy: str = "proportional"
    static_node_cap_w: Optional[float] = None
    sample_interval_s: float = 2.0
    account_idle_nodes: bool = False
    idle_node_w: float = 400.0


class ClusterLevelManager(Module):
    """Rank-0 budget owner: proportional sharing across jobs."""

    name = "power-manager-root"

    def __init__(self, broker: Broker, config: ManagerConfig) -> None:
        if broker.rank != 0:
            raise ValueError("cluster manager runs on rank 0")
        super().__init__(broker)
        self.config = config
        self.job_level = JobLevelManager(broker)
        #: (time, total_active_nodes, per_node_share_w) — Fig 5 series.
        self.share_log: List[tuple] = []
        #: Ranks the event stream says are down. The scheduler does not
        #: track broker liveness, so a job can start on a rank whose
        #: management plane is dead; booking it would pay a power share
        #: to a node that can never install the cap.
        self._down_ranks: Set[int] = set()

    def on_load(self) -> None:
        self.subscribe("job-state.", self._on_job_state)
        self.subscribe("broker.", self._on_broker_event)

    # ------------------------------------------------------------------
    # Job state tracking
    # ------------------------------------------------------------------
    def _on_job_state(self, msg: Message) -> None:
        state = msg.topic.split(".", 1)[1]
        jobid = msg.payload["jobid"]
        if state == "running":
            ranks = [r for r in msg.payload["ranks"] if r not in self._down_ranks]
            dropped = len(msg.payload["ranks"]) - len(ranks)
            if dropped:
                self.broker.telemetry.metrics.counter(
                    "manager_dead_ranks_skipped_total",
                    help="dead ranks excluded from new jobs' power shares",
                ).inc(dropped)
            if ranks:
                self.job_level.job_started(jobid, ranks)
            self._recompute()
        elif state in ("completed", "cancelled"):
            self.job_level.job_ended(jobid)
            self._recompute()

    def _on_broker_event(self, msg: Message) -> None:
        """React to node death: reclaim its share in one recompute.

        A crashed broker takes its node manager with it; leaving the
        dead rank in the books would keep paying it a share of the
        budget forever. Dropping it and recomputing immediately lets
        the surviving nodes of every affected job absorb the reclaimed
        power (``P_n = P_G/(N_k + N_i)`` over the *live* node count).
        """
        if msg.topic == "broker.up":
            self._down_ranks.discard(int(msg.payload["rank"]))
            return
        if msg.topic != "broker.down":
            return
        rank = int(msg.payload["rank"])
        self._down_ranks.add(rank)
        affected = self.job_level.node_died(rank)
        tel = self.broker.telemetry
        tel.metrics.counter(
            "manager_node_deaths_total",
            help="broker down-events processed by the cluster manager",
        ).inc()
        tel.tracer.instant(
            "manager.node_down", "manager", rank=self.broker.rank,
            dead_rank=rank, affected_jobs=len(affected),
        )
        if affected:
            self._recompute()

    # ------------------------------------------------------------------
    # Proportional sharing (Section III-B1)
    # ------------------------------------------------------------------
    def per_node_share_w(self) -> Optional[float]:
        """Current per-node allocation, or None when uncapped."""
        if self.config.global_cap_w is None:
            return None
        total_nodes = self.job_level.active_node_count()
        if total_nodes == 0:
            return None
        budget = self.config.global_cap_w
        if self.config.account_idle_nodes:
            idle = max(0, self.broker.overlay.size - total_nodes)
            budget = max(0.0, budget - idle * self.config.idle_node_w)
        return per_node_share(budget, total_nodes, self.config.node_peak_w)

    def _recompute(self) -> None:
        if self.config.policy == "static":
            # Static deployments never push dynamic shares; the OPAL
            # node cap installed at load time is the entire policy.
            return
        share = self.per_node_share_w()
        self.share_log.append(
            (self.sim.now, self.job_level.active_node_count(), share)
        )
        tel = self.broker.telemetry
        tel.metrics.counter(
            "manager_share_recomputes_total",
            help="cluster-level proportional-share recomputations",
        ).inc()
        tel.metrics.gauge(
            "manager_active_nodes",
            help="nodes currently allocated to jobs",
        ).set(self.job_level.active_node_count())
        tel.metrics.gauge(
            "manager_per_node_share_w",
            help="current per-node power share (0 when uncapped/idle)",
        ).set(share if share is not None else 0.0)
        tel.tracer.instant(
            "manager.recompute", "manager", rank=self.broker.rank,
            share_w=share, jobs=len(self.job_level.jobs),
        )
        tel.accountant.charge(
            "manager",
            MANAGER_RECOMPUTE_COST_PER_JOB_S * max(1, len(self.job_level.jobs)),
        )
        for jobid, state in list(self.job_level.jobs.items()):
            job_limit = None if share is None else share * len(state.ranks)
            self.job_level.assign(jobid, job_limit)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "global_cap_w": self.config.global_cap_w,
            "policy": self.config.policy,
            "active_jobs": sorted(self.job_level.jobs),
            "active_nodes": self.job_level.active_node_count(),
            "per_node_share_w": self.per_node_share_w(),
        }
