"""The cluster-level manager (Section III-B, III-B1).

State-aware: subscribes to ``job-state.*`` events from the job manager,
so it always knows which jobs occupy which nodes. On every arrival or
departure it recomputes power shares:

* **Unconstrained** cluster (no global cap): every node is allowed its
  theoretical peak and no capping is performed.
* **Power-constrained**: first try to give every active node peak
  power; if the budget does not cover that, redistribute to *all* jobs
  proportionally to node count — per-node allocation
  ``P_n = P_G / (N_k + N_i)``, a new job receiving ``N_i * P_n``.

A configured static node cap (IBM OPAL on Lassen) is installed by every
node manager at load time; this is the Table III/IV "static" baseline
and also the hard backstop above the dynamic policies.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.flux.broker import Broker
from repro.flux.message import Message
from repro.flux.module import Module
from repro.lifecycle.machine import (
    AVAILABLE,
    DEGRADED,
    MAINTENANCE,
    RETIRED,
    LifecycleRegistry,
)
from repro.manager.job_level import JobLevelManager, JobPowerState
from repro.manager.node_manager import JOB_DEPARTED_TOPIC
from repro.manager.policies.proportional import per_node_share
from repro.telemetry import MANAGER_RECOMPUTE_COST_PER_JOB_S


@dataclass(frozen=True)
class ManagerConfig:
    """Deployment configuration for flux-power-manager.

    Attributes
    ----------
    global_cap_w:
        Cluster power budget; ``None`` models an unconstrained system.
    node_peak_w:
        Theoretical per-node peak (3050 W on Lassen) — the allocation
        when the budget allows it.
    policy:
        Node-policy name resolved against
        :data:`repro.manager.policies.POLICY_FACTORIES`: the paper's
        ``"static"``, ``"proportional"`` and ``"fpp"``, plus
        ``"fpp-socket"``, ``"history"`` and the safety-wrapped zoo
        policies ``"pi"``, ``"ecoshift"`` and ``"checkpoint"``.
    static_node_cap_w:
        OPAL node cap installed on every node at load time (IBM's
        mechanism; also the backstop for the dynamic policies, 1950 W
        in Table IV).
    sample_interval_s:
        Node managers' power-tracking period.
    account_idle_nodes:
        The paper's formula ``P_n = P_G/(N_k + N_i)`` divides the whole
        budget over *allocated* nodes; idle nodes' draw rides on top,
        so total cluster power exceeds ``P_G`` whenever the machine is
        partially allocated. With this flag the manager reserves
        ``idle_node_w`` per unallocated node out of the budget first,
        making the constraint hold for the *whole* cluster.
    idle_node_w:
        Reserved per idle node when ``account_idle_nodes`` is set
        (Lassen idles at ~400 W).
    """

    global_cap_w: Optional[float] = None
    node_peak_w: float = 3050.0
    policy: str = "proportional"
    static_node_cap_w: Optional[float] = None
    sample_interval_s: float = 2.0
    account_idle_nodes: bool = False
    idle_node_w: float = 400.0


class ClusterLevelManager(Module):
    """Rank-0 budget owner: proportional sharing across jobs."""

    name = "power-manager-root"

    def __init__(self, broker: Broker, config: ManagerConfig) -> None:
        if broker.rank != 0:
            raise ValueError("cluster manager runs on rank 0")
        super().__init__(broker)
        self.config = config
        self.job_level = JobLevelManager(broker)
        #: (time, total_active_nodes, per_node_share_w) — Fig 5 series.
        self.share_log: List[tuple] = []
        #: Optional fairshare hook installed by the tenancy tier
        #: (:class:`repro.tenancy.coordinator.TenancyCoordinator`):
        #: ``splitter(budget_w, {jobid: nodes}, node_peak_w) ->
        #: {jobid: job_limit_w}``. When None (the default) the manager
        #: runs the paper's anonymous proportional split untouched.
        self.share_splitter = None
        #: Per-rank lifecycle: only AVAILABLE ranks are booked into new
        #: jobs' power shares. The scheduler does not track broker
        #: liveness, so a job can start on a rank whose management plane
        #: is dead (DEGRADED), drained (MAINTENANCE) or decommissioned
        #: (RETIRED); booking it would pay a power share to a node that
        #: can never install the cap.
        self.lifecycle = LifecycleRegistry(
            range(broker.overlay.size), "node", broker.telemetry
        )

    def on_load(self) -> None:
        self.subscribe("job-state.", self._on_job_state)
        self.subscribe("broker.", self._on_broker_event)
        for rank in self.lifecycle.entities():
            self.lifecycle.ensure(rank, AVAILABLE, reason="enroll", t=self.sim.now)

    @property
    def down_ranks(self) -> FrozenSet[int]:
        """Ranks whose management plane the event stream says is dead."""
        return frozenset(self.lifecycle.in_state(DEGRADED))

    # ------------------------------------------------------------------
    # Job state tracking
    # ------------------------------------------------------------------
    def _on_job_state(self, msg: Message) -> None:
        state = msg.topic.split(".", 1)[1]
        jobid = msg.payload["jobid"]
        if state == "running":
            ranks = [
                r for r in msg.payload["ranks"] if self.lifecycle.is_available(r)
            ]
            dropped = len(msg.payload["ranks"]) - len(ranks)
            if dropped:
                self.broker.telemetry.metrics.counter(
                    "manager_dead_ranks_skipped_total",
                    help="dead ranks excluded from new jobs' power shares",
                ).inc(dropped)
            if ranks:
                self.job_level.job_started(jobid, ranks)
            self._recompute()
        elif state in ("completed", "cancelled"):
            self.job_level.job_ended(jobid)
            self._recompute()

    def _on_broker_event(self, msg: Message) -> None:
        """React to node death: reclaim its share in one recompute.

        A crashed broker takes its node manager with it; leaving the
        dead rank in the books would keep paying it a share of the
        budget forever. Dropping it and recomputing immediately lets
        the surviving nodes of every affected job absorb the reclaimed
        power (``P_n = P_G/(N_k + N_i)`` over the *live* node count).
        """
        if msg.topic == "broker.up":
            rank = int(msg.payload["rank"])
            # Only a death is undone by a revival: maintenance and
            # retirement are operator intent, not liveness, and stay
            # put until the operator ends them.
            if self.lifecycle.state_of(rank) == DEGRADED:
                self.lifecycle.transition(
                    rank, AVAILABLE, reason="broker.up", t=self.sim.now
                )
            return
        if msg.topic != "broker.down":
            return
        rank = int(msg.payload["rank"])
        if self.lifecycle.state_of(rank) in (DEGRADED, RETIRED):
            # Repeat down events and deaths of decommissioned nodes
            # carry no new information.
            return
        self.lifecycle.transition(
            rank, DEGRADED, reason=msg.topic, t=self.sim.now
        )
        affected = self.job_level.node_died(rank)
        tel = self.broker.telemetry
        tel.metrics.counter(
            "manager_node_deaths_total",
            help="broker down-events processed by the cluster manager",
        ).inc()
        tel.tracer.instant(
            "manager.node_down", "manager", rank=self.broker.rank,
            dead_rank=rank, affected_jobs=len(affected),
        )
        if affected:
            self._recompute()

    # ------------------------------------------------------------------
    # Operator lifecycle controls
    # ------------------------------------------------------------------
    def _drain(self, rank: int) -> None:
        """Remove a rank from the books and rebalance immediately.

        Unlike a broker death the drained rank is *alive*, so each
        affected job also gets a departure RPC to it — its node manager
        releases the limit and caps exactly as when a job ends (one
        TBON latency later; the ``lifecycle`` invariant's cap check
        allows that settle tick).
        """
        affected = self.job_level.node_died(rank)
        for jobid in affected:
            self.broker.rpc(rank, JOB_DEPARTED_TOPIC, {"jobid": jobid})
        if affected:
            self._recompute()

    def begin_maintenance(self, rank: int, reason: str = "maintenance") -> None:
        """Drain a rank for planned service: AVAILABLE → MAINTENANCE."""
        self.lifecycle.transition(rank, MAINTENANCE, reason=reason, t=self.sim.now)
        self._drain(rank)

    def end_maintenance(self, rank: int, reason: str = "maintenance-done") -> None:
        """Return a serviced rank to the pool: MAINTENANCE → AVAILABLE."""
        self.lifecycle.transition(rank, AVAILABLE, reason=reason, t=self.sim.now)

    def retire_node(self, rank: int, reason: str = "retired") -> None:
        """Permanently decommission a rank (terminal state)."""
        self.lifecycle.transition(rank, RETIRED, reason=reason, t=self.sim.now)
        self._drain(rank)

    # ------------------------------------------------------------------
    # Crash recovery (see repro.lifecycle.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-able continuation state for the manager chain on rank 0.

        Config rides along because retunes mutate it mid-run (the
        federation tier replaces ``global_cap_w`` every epoch); jobs
        are stored in insertion order so a restore reproduces dict
        iteration order exactly.
        """
        return {
            "config": asdict(self.config),
            "lifecycle": self.lifecycle.snapshot(),
            "share_log": [list(row) for row in self.share_log],
            "jobs": [
                {
                    "jobid": state.jobid,
                    "ranks": list(state.ranks),
                    "job_limit_w": state.job_limit_w,
                }
                for state in self.job_level.jobs.values()
            ],
            "assignment_log": [list(row) for row in self.job_level.assignment_log],
        }

    def restore_state(self, state: dict) -> None:
        """Rehydrate from :meth:`snapshot_state`; ``{}`` wipes to fresh.

        Silent: rebuilding the job books must NOT call
        :meth:`JobLevelManager.assign` — the node managers hold (or are
        themselves restored to) the last pushed limits, and re-fanning
        RPCs would shift transport timing versus the uninterrupted run.
        """
        cfg = state.get("config")
        if cfg is not None:
            self.config = ManagerConfig(**cfg)
        self.lifecycle.restore(state.get("lifecycle"))
        self.share_log = [tuple(row) for row in state.get("share_log") or []]
        self.job_level.jobs = {
            int(job["jobid"]): JobPowerState(
                jobid=int(job["jobid"]),
                ranks=[int(r) for r in job["ranks"]],
                job_limit_w=(
                    None
                    if job.get("job_limit_w") is None
                    else float(job["job_limit_w"])
                ),
            )
            for job in state.get("jobs") or []
        }
        self.job_level.assignment_log = [
            tuple(row) for row in state.get("assignment_log") or []
        ]

    # ------------------------------------------------------------------
    # Proportional sharing (Section III-B1)
    # ------------------------------------------------------------------
    def effective_budget_w(self) -> Optional[float]:
        """The budget the proportional split divides: the global cap
        minus the idle-node reserve (when accounted); None if uncapped."""
        if self.config.global_cap_w is None:
            return None
        budget = self.config.global_cap_w
        if self.config.account_idle_nodes:
            total_nodes = self.job_level.active_node_count()
            idle = max(0, self.broker.overlay.size - total_nodes)
            budget = max(0.0, budget - idle * self.config.idle_node_w)
        return budget

    def per_node_share_w(self) -> Optional[float]:
        """Current per-node allocation, or None when uncapped."""
        if self.config.global_cap_w is None:
            return None
        total_nodes = self.job_level.active_node_count()
        if total_nodes == 0:
            return None
        budget = self.effective_budget_w()
        return per_node_share(budget, total_nodes, self.config.node_peak_w)

    def _recompute(self) -> None:
        if self.config.policy == "static":
            # Static deployments never push dynamic shares; the OPAL
            # node cap installed at load time is the entire policy.
            return
        share = self.per_node_share_w()
        self.share_log.append(
            (self.sim.now, self.job_level.active_node_count(), share)
        )
        tel = self.broker.telemetry
        tel.metrics.counter(
            "manager_share_recomputes_total",
            help="cluster-level proportional-share recomputations",
        ).inc()
        tel.metrics.gauge(
            "manager_active_nodes",
            help="nodes currently allocated to jobs",
        ).set(self.job_level.active_node_count())
        tel.metrics.gauge(
            "manager_per_node_share_w",
            help="current per-node power share (0 when uncapped/idle)",
        ).set(share if share is not None else 0.0)
        tel.tracer.instant(
            "manager.recompute", "manager", rank=self.broker.rank,
            share_w=share, jobs=len(self.job_level.jobs),
        )
        tel.accountant.charge(
            "manager",
            MANAGER_RECOMPUTE_COST_PER_JOB_S * max(1, len(self.job_level.jobs)),
        )
        # Fairshare hook: when the tenancy tier installed a splitter and
        # the cluster is capped with active jobs, job limits come from
        # the weighted water-fill instead of the flat share. With the
        # hook absent (every anonymous deployment) this is the exact
        # historical code path, byte for byte.
        weighted: Optional[Dict[int, float]] = None
        if self.share_splitter is not None and share is not None:
            weighted = self.share_splitter(
                self.effective_budget_w(),
                {
                    jobid: len(state.ranks)
                    for jobid, state in self.job_level.jobs.items()
                },
                self.config.node_peak_w,
            )
        for jobid, state in list(self.job_level.jobs.items()):
            if weighted is not None:
                job_limit: Optional[float] = weighted.get(jobid, 0.0)
            else:
                job_limit = None if share is None else share * len(state.ranks)
            self.job_level.assign(jobid, job_limit)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "global_cap_w": self.config.global_cap_w,
            "policy": self.config.policy,
            "active_jobs": sorted(self.job_level.jobs),
            "active_nodes": self.job_level.active_node_count(),
            "per_node_share_w": self.per_node_share_w(),
        }
