"""The node-level manager (Section III-B).

Present on every node. Responsibilities:

* install the configured *static* node-level cap (IBM OPAL) at load
  time, where the platform supports one,
* accept *node-level power limits* over RPC from the job-level manager
  and record which job they belong to,
* track node and per-GPU power in a periodic sampling loop (a separate
  thread in the real module), maintaining a running estimate of non-GPU
  power used to derive GPU budgets,
* host the pluggable dynamic policy (static / proportional / FPP / the
  policy zoo) and forward limits, samples and ``job-state.*`` events to
  it.

Units at this interface are uniform: every power quantity is **watts**
— node limits (whole node), device caps (one GPU / one socket), and
the ``non_*_power_w`` estimates (whole node minus the named device
class). The safety wrapper's ``damper`` (fraction of a device's
capping span) and ``slowdown`` (dimensionless ratio >= 1) are the only
non-watt control knobs; see :mod:`repro.manager.policies.safety`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional, Tuple

from repro import variorum
from repro.flux.broker import Broker
from repro.flux.message import Message
from repro.flux.module import Module
from repro.hardware.firmware import CappingError
from repro.manager.policies.base import PowerPolicy
from repro.telemetry import MANAGER_TRACK_COST_S

SET_LIMIT_TOPIC = "power-manager.set-node-limit"
JOB_DEPARTED_TOPIC = "power-manager.job-departed"
STATUS_TOPIC = "power-manager.status"

#: Smoothing factor for the non-GPU power estimate (EMA).
EMA_ALPHA = 0.3

#: Window (samples) for the conservative peak estimates used to derive
#: device budgets. Mean-based estimates under-reserve during the high
#: phase of a periodic app, producing sustained share overshoot; a
#: recent-peak estimate keeps the node under its limit at the cost of
#: slightly smaller device budgets.
PEAK_WINDOW = 16


class NodeManagerModule(Module):
    """Per-node power enforcement + dynamic policy host."""

    name = "power-manager"

    def __init__(
        self,
        broker: Broker,
        policy_factory: Callable[[], PowerPolicy],
        sample_interval_s: float = 2.0,
        static_node_cap_w: Optional[float] = None,
    ) -> None:
        if broker.node is None:
            raise ValueError("node manager needs hardware attached to the broker")
        super().__init__(broker)
        self.policy_factory = policy_factory
        self.policy = policy_factory()
        self.sample_interval_s = float(sample_interval_s)
        self.static_node_cap_w = static_node_cap_w

        self.node_limit_w: Optional[float] = None
        self.current_jobid: Optional[int] = None
        self._non_gpu_est_w: Optional[float] = None
        self._non_cpu_est_w: Optional[float] = None
        self._recent_non_gpu = deque(maxlen=PEAK_WINDOW)
        self._recent_non_cpu = deque(maxlen=PEAK_WINDOW)
        self._recent_mem = deque(maxlen=PEAK_WINDOW)
        self._recent = deque(maxlen=64)
        self._last_gpu_caps: List[Optional[float]] = []
        self._last_socket_caps: List[Optional[float]] = []
        self.cap_request_failures = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_load(self) -> None:
        node = self.broker.node
        self.register_service(SET_LIMIT_TOPIC, self._handle_set_limit)
        self.register_service(JOB_DEPARTED_TOPIC, self._handle_job_departed)
        self.register_service(STATUS_TOPIC, self._handle_status)
        if self.static_node_cap_w is not None:
            # Best effort: on Lassen this installs the OPAL node cap
            # (whose firmware derives its conservative GPU caps); on
            # Intel/AMD it splits across sockets; Tioga refuses.
            try:
                variorum.cap_best_effort_node_power_limit(
                    node, self.static_node_cap_w
                )
            except variorum.VariorumError:
                self.cap_request_failures += 1
        self._last_gpu_caps = [None] * self.gpu_count
        self._last_socket_caps = [None] * self.socket_count
        # State-aware policies (checkpoint) learn which application is
        # arriving from the job manager's existing job-state events —
        # no new message traffic, just a subscription.
        self.subscribe("job-state.", self._on_job_state)
        self.add_timer(self.sample_interval_s, self._track, start_delay=0.0)
        self.policy.attach(self)

    def on_unload(self) -> None:
        self.policy.detach()
        self.clear_gpu_caps()

    # ------------------------------------------------------------------
    # Hardware accessors used by policies
    # ------------------------------------------------------------------
    @property
    def gpu_count(self) -> int:
        return len(self.broker.node.gpu_domains)

    @property
    def gpu_cap_range(self) -> Tuple[float, float]:
        gpus = self.broker.node.gpu_domains
        if not gpus:
            return (0.0, 0.0)
        spec = gpus[0].spec
        return (spec.min_cap_w or 0.0, spec.max_cap_w or spec.max_w)

    @property
    def socket_count(self) -> int:
        return len(self.broker.node.cpu_domains)

    @property
    def socket_cap_range(self) -> Tuple[float, float]:
        cpus = self.broker.node.cpu_domains
        if not cpus:
            return (0.0, 0.0)
        spec = cpus[0].spec
        return (spec.min_cap_w or 0.0, spec.max_cap_w or spec.max_w)

    @property
    def job_present(self) -> bool:
        return self.current_jobid is not None

    def non_gpu_power_w(self) -> float:
        """Conservative estimate of node power not attributable to GPUs.

        The *recent peak* over the tracking window, not the mean: a
        phase-swinging workload's non-GPU draw must be reserved at its
        high-phase level or the derived GPU budgets push the node over
        its share during every high phase. Before any measurement
        arrives, fall back to the idle non-GPU floor plus an activity
        margin — also conservative, so initial budgets never overshoot
        while the estimate warms up.
        """
        if self._recent_non_gpu:
            return max(self._recent_non_gpu)
        node = self.broker.node
        idle_non_gpu = node.idle_power_w() - sum(
            d.spec.idle_w for d in node.gpu_domains
        )
        return idle_non_gpu + 150.0

    def derive_gpu_share(self, node_limit_w: float) -> float:
        """Uniform per-GPU cap that fits the node limit, given non-GPU power."""
        n = self.gpu_count
        if n == 0:
            return 0.0
        lo, hi = self.gpu_cap_range
        budget = node_limit_w - self.non_gpu_power_w()
        per_gpu = budget / n
        return float(min(max(per_gpu, lo), hi))

    # ------------------------------------------------------------------
    # Cap dials
    # ------------------------------------------------------------------
    def set_gpu_cap(self, index: int, watts: float) -> None:
        """Set one GPU's cap (watts) through the platform driver.

        Clamped into the device capping range; idempotent (repeat
        writes of the installed value are not re-issued to NVML/ROCm).
        """
        node = self.broker.node
        lo, hi = self.gpu_cap_range
        watts = min(max(watts, lo), hi)
        if self._last_gpu_caps[index] == watts:
            return
        try:
            if node.nvml is not None:
                node.nvml.set_power_limit(index, watts)
            elif node.esmi is not None:
                per_oam = watts  # OAM domains are the cappable unit on AMD
                node.esmi.set_oam_power_cap(index, per_oam)
            else:
                raise CappingError("no GPU capping driver on this platform")
            self._last_gpu_caps[index] = watts
            self.broker.telemetry.metrics.counter(
                "manager_gpu_cap_sets_total",
                help="GPU power-cap writes through the platform drivers",
            ).inc()
        except CappingError:
            self.cap_request_failures += 1
            self.broker.telemetry.metrics.counter(
                "manager_cap_failures_total",
                help="failed device cap requests (NVML faults, no driver)",
            ).inc()

    def enforce_limit_via_gpus(self, node_limit_w: float) -> None:
        """Uniformly cap all GPUs so the node fits its limit."""
        per_gpu = self.derive_gpu_share(node_limit_w)
        for i in range(self.gpu_count):
            self.set_gpu_cap(i, per_gpu)

    # ------------------------------------------------------------------
    # Socket-level dials (FPP's device-agnostic extension path)
    # ------------------------------------------------------------------
    def non_cpu_power_w(self) -> float:
        """Conservative (recent-peak) non-CPU power estimate (watts)."""
        if self._recent_non_cpu:
            return max(self._recent_non_cpu)
        node = self.broker.node
        idle_non_cpu = node.idle_power_w() - sum(
            d.spec.idle_w for d in node.cpu_domains
        )
        return idle_non_cpu + 30.0

    def mem_power_w(self) -> float:
        """Conservative (recent-peak) memory-domain power estimate.

        Memory domains are the node's *uncappable* draw: a policy that
        splits the node limit across the cappable CPU and GPU domains
        (EcoShift) must reserve this much off the top. Watts; falls
        back to the memory idle floor plus a small activity margin
        before any measurement arrives.
        """
        if self._recent_mem:
            return max(self._recent_mem)
        node = self.broker.node
        return sum(d.spec.idle_w for d in node.memory_domains) + 20.0

    def derive_socket_share(self, node_limit_w: float) -> float:
        """Uniform per-socket cap that fits the node limit."""
        n = self.socket_count
        if n == 0:
            return 0.0
        lo, hi = self.socket_cap_range
        per_socket = (node_limit_w - self.non_cpu_power_w()) / n
        return float(min(max(per_socket, lo), hi))

    def set_socket_cap(self, index: int, watts: float) -> None:
        """Set one CPU socket's cap (watts); clamped and idempotent
        like :meth:`set_gpu_cap`."""
        node = self.broker.node
        lo, hi = self.socket_cap_range
        watts = min(max(watts, lo), hi)
        if self._last_socket_caps[index] == watts:
            return
        try:
            if node.rapl is not None:
                node.rapl.set_socket_power_cap(index, watts)
            elif node.esmi is not None:
                node.esmi.set_socket_power_cap(index, watts)
            elif node.cpu_domains:
                # IBM path: socket caps through the service processor.
                node.cpu_domains[index].set_cap("socket-manager", watts)
            else:
                raise CappingError("no CPU capping driver on this platform")
            self._last_socket_caps[index] = watts
            self.broker.telemetry.metrics.counter(
                "manager_socket_cap_sets_total",
                help="CPU socket power-cap writes through the platform drivers",
            ).inc()
        except CappingError:
            self.cap_request_failures += 1
            self.broker.telemetry.metrics.counter(
                "manager_cap_failures_total",
                help="failed device cap requests (NVML faults, no driver)",
            ).inc()

    def clear_socket_caps(self) -> None:
        node = self.broker.node
        for dom in node.cpu_domains:
            dom.set_cap("socket-manager", None)
            if node.rapl is not None:
                dom.set_cap(node.rapl.CAP_SOURCE, None)
        self._last_socket_caps = [None] * self.socket_count

    def clear_gpu_caps(self) -> None:
        node = self.broker.node
        if node.nvml is not None:
            node.nvml.clear_all()
        self._last_gpu_caps = [None] * self.gpu_count

    # ------------------------------------------------------------------
    # Power tracking loop
    # ------------------------------------------------------------------
    def _track(self, _timer) -> None:
        node = self.broker.node
        node_w = node.total_power_w()
        gpu_w = [d.actual_w for d in node.gpu_domains]
        # Idle samples would poison the non-GPU estimate with a value
        # far below what a running workload draws, making the first GPU
        # budgets overshoot the node limit. Only learn from samples
        # where something is actually drawing power.
        if node_w > node.idle_power_w() + 5.0:
            non_gpu = node_w - sum(gpu_w)
            self._recent_non_gpu.append(non_gpu)
            self._recent_mem.append(
                sum(d.actual_w for d in node.memory_domains)
            )
            if self._non_gpu_est_w is None:
                self._non_gpu_est_w = non_gpu
            else:
                self._non_gpu_est_w = (
                    EMA_ALPHA * non_gpu + (1.0 - EMA_ALPHA) * self._non_gpu_est_w
                )
            non_cpu = node_w - sum(d.actual_w for d in node.cpu_domains)
            self._recent_non_cpu.append(non_cpu)
            if self._non_cpu_est_w is None:
                self._non_cpu_est_w = non_cpu
            else:
                self._non_cpu_est_w = (
                    EMA_ALPHA * non_cpu + (1.0 - EMA_ALPHA) * self._non_cpu_est_w
                )
        self._recent.append((self.sim.now, node_w, tuple(gpu_w)))
        self.broker.telemetry.accountant.charge("manager", MANAGER_TRACK_COST_S)
        self.policy.on_sample(self.sim.now, node_w, gpu_w)

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------
    def _handle_set_limit(self, broker: Broker, msg: Message) -> None:
        """Install a node-level limit pushed down the cap-decision chain."""
        limit = msg.payload.get("limit_w")
        jobid = msg.payload.get("jobid")
        t_assigned = msg.payload.get("t_assigned")
        tel = broker.telemetry
        tel.metrics.counter(
            "manager_node_limit_updates_total",
            help="node-level limit updates applied by node managers",
        ).inc()
        if t_assigned is not None:
            # One-way latency of the cluster→job→node cap chain — the
            # "policy loop" the paper's responsiveness rests on.
            tel.metrics.histogram(
                "manager_cap_update_latency_seconds",
                help="cap-chain propagation, share decision to node apply",
            ).observe(self.sim.now - float(t_assigned))
            tel.tracer.span(
                "manager.cap_update", "manager", float(t_assigned),
                rank=broker.rank, jobid=jobid, limit_w=limit,
            )
        if limit is not None:
            try:
                limit = float(limit)
            except (TypeError, ValueError):
                broker.respond(msg, errnum=22, errmsg="bad limit_w")
                return
            if limit <= 0:
                broker.respond(msg, errnum=22, errmsg="limit_w must be positive")
                return
        if jobid is not None and jobid != self.current_jobid:
            # New job on this node: dynamic policy state and the power
            # estimates start fresh (the previous job's draw profile is
            # stale information).
            self.current_jobid = jobid
            self._recent_non_gpu.clear()
            self._recent_non_cpu.clear()
            self._recent_mem.clear()
            reset = getattr(self.policy, "reset_job_state", None)
            if reset is not None:
                reset()
        self.node_limit_w = limit
        self.policy.on_node_limit(limit)
        broker.respond(msg, {"limit_w": limit, "rank": broker.rank})

    def _handle_job_departed(self, broker: Broker, msg: Message) -> None:
        self.current_jobid = None
        self.node_limit_w = None
        self._recent_non_gpu.clear()
        self._recent_non_cpu.clear()
        self._recent_mem.clear()
        self.clear_gpu_caps()
        self.policy.detach()
        self.policy = self.policy_factory()
        self.policy.attach(self)
        broker.respond(msg, {"rank": broker.rank})

    def _on_job_state(self, msg: Message) -> None:
        """Forward job-state events that involve this node to the policy."""
        ranks = msg.payload.get("ranks") or []
        if self.broker.rank not in ranks:
            return
        _, _, state = msg.topic.partition(".")
        self.policy.on_job_state(state, msg.payload)

    # ------------------------------------------------------------------
    # Crash recovery (see repro.lifecycle.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-able continuation state for this node's manager.

        Captures the assigned limit, the learned power estimates and the
        policy's controller state — everything a restored manager needs
        to continue enforcing without re-deriving caps. Installed device
        caps (``_last_*_caps``) ride along so the restored idempotence
        check doesn't re-issue writes the hardware already holds.
        """
        return {
            "rank": self.broker.rank,
            "node_limit_w": self.node_limit_w,
            "current_jobid": self.current_jobid,
            "non_gpu_est_w": self._non_gpu_est_w,
            "non_cpu_est_w": self._non_cpu_est_w,
            "recent_non_gpu": list(self._recent_non_gpu),
            "recent_non_cpu": list(self._recent_non_cpu),
            "recent_mem": list(self._recent_mem),
            "recent": [[t, w, list(gpus)] for t, w, gpus in self._recent],
            "last_gpu_caps": list(self._last_gpu_caps),
            "last_socket_caps": list(self._last_socket_caps),
            "cap_request_failures": self.cap_request_failures,
            "policy": {"name": self.policy.name, "state": self.policy.snapshot()},
        }

    def restore_state(self, state: dict) -> None:
        """Rehydrate from :meth:`snapshot_state`; ``{}`` wipes to fresh.

        Mutates in place — module registration, timers and the policy
        object survive, so the event schedule is untouched. Never
        touches the hardware: installed caps are environment, not
        manager state.
        """
        limit = state.get("node_limit_w")
        self.node_limit_w = None if limit is None else float(limit)
        self.current_jobid = state.get("current_jobid")
        est = state.get("non_gpu_est_w")
        self._non_gpu_est_w = None if est is None else float(est)
        est = state.get("non_cpu_est_w")
        self._non_cpu_est_w = None if est is None else float(est)
        for attr, key in (
            ("_recent_non_gpu", "recent_non_gpu"),
            ("_recent_non_cpu", "recent_non_cpu"),
            ("_recent_mem", "recent_mem"),
        ):
            window = getattr(self, attr)
            window.clear()
            window.extend(float(w) for w in state.get(key) or [])
        self._recent.clear()
        for t, w, gpus in state.get("recent") or []:
            self._recent.append(
                (float(t), float(w), tuple(float(g) for g in gpus))
            )
        caps = state.get("last_gpu_caps")
        if caps is None:
            caps = [None] * self.gpu_count
        self._last_gpu_caps = [None if c is None else float(c) for c in caps]
        caps = state.get("last_socket_caps")
        if caps is None:
            caps = [None] * self.socket_count
        self._last_socket_caps = [None if c is None else float(c) for c in caps]
        self.cap_request_failures = int(state.get("cap_request_failures", 0))
        policy_state = state.get("policy") or {}
        self.policy.restore(policy_state.get("state") or {})

    def _handle_status(self, broker: Broker, msg: Message) -> None:
        broker.respond(
            msg,
            {
                "rank": broker.rank,
                "node_limit_w": self.node_limit_w,
                "jobid": self.current_jobid,
                "non_gpu_w": self.non_gpu_power_w(),
                "gpu_caps_w": list(self._last_gpu_caps),
                "cap_failures": self.cap_request_failures,
                "policy": self.policy.describe(),
            },
        )
