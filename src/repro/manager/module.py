"""Convenience wiring for the power manager.

``attach_manager(instance, config)`` loads node managers on every
broker and the cluster-level manager on rank 0 — the analogue of
``flux module load flux-power-manager`` with a site policy config.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.flux.instance import FluxInstance
from repro.manager.cluster_manager import ClusterLevelManager, ManagerConfig
from repro.manager.node_manager import NodeManagerModule
from repro.manager.policies import POLICY_FACTORIES, FPPParams, FPPPolicy, PowerPolicy


@dataclass
class PowerManager:
    """Handle over a loaded manager deployment."""

    instance: FluxInstance
    config: ManagerConfig
    cluster: ClusterLevelManager
    node_managers: List[NodeManagerModule]
    #: Kept so a broker restart can reload an identical node manager.
    policy_factory: Optional[Callable[[], PowerPolicy]] = None

    def node_manager_for_rank(self, rank: int) -> NodeManagerModule:
        return self.node_managers[rank]

    def reload_node_manager(self, rank: int) -> NodeManagerModule:
        """Load a fresh node manager on ``rank`` (post-restart recovery).

        The new manager re-installs the configured static node cap but
        knows nothing of pre-crash job limits — those return with the
        cluster manager's next recompute, as on a real node reboot.
        """
        broker = self.instance.brokers[rank]
        if NodeManagerModule.name in broker.modules:
            broker.unload_module(NodeManagerModule.name)
        manager = NodeManagerModule(
            broker,
            policy_factory=self.policy_factory,
            sample_interval_s=self.config.sample_interval_s,
            static_node_cap_w=self.config.static_node_cap_w,
        )
        broker.load_module(manager)
        self.node_managers[rank] = manager
        return manager

    @property
    def share_log(self):
        return self.cluster.share_log

    def detach(self) -> None:
        self.instance.unload_module_everywhere(NodeManagerModule.name)
        self.instance.unload_module_everywhere(ClusterLevelManager.name)


def attach_manager(
    instance: FluxInstance,
    config: ManagerConfig,
    policy_factory: Optional[Callable[[], PowerPolicy]] = None,
    fpp_params: Optional[FPPParams] = None,
) -> PowerManager:
    """Load flux-power-manager across an instance.

    ``policy_factory`` overrides the policy named in the config (used
    for custom user policies — the user-level customisation story);
    ``fpp_params`` customises FPP when that policy is selected.
    """
    if policy_factory is None:
        if config.policy not in POLICY_FACTORIES:
            raise ValueError(
                f"unknown policy {config.policy!r}; "
                f"choices: {sorted(POLICY_FACTORIES)} (or pass policy_factory)"
            )
        if config.policy == "fpp":
            params = fpp_params or FPPParams()
            policy_factory = lambda: FPPPolicy(params)  # noqa: E731
        else:
            policy_factory = POLICY_FACTORIES[config.policy]

    node_managers = instance.load_module_on_all(
        lambda broker: NodeManagerModule(
            broker,
            policy_factory=policy_factory,
            sample_interval_s=config.sample_interval_s,
            static_node_cap_w=config.static_node_cap_w,
        )
    )
    cluster = instance.load_module_on_root(
        lambda broker: ClusterLevelManager(broker, config)
    )
    return PowerManager(
        instance=instance,
        config=config,
        cluster=cluster,  # type: ignore[arg-type]
        node_managers=node_managers,  # type: ignore[arg-type]
        policy_factory=policy_factory,
    )
