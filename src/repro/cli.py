"""Command-line interface.

Mirrors the user-facing tools of the paper's deployment:

* ``repro telemetry`` — run a job on a simulated cluster and print its
  power CSV (the flux-power-monitor client workflow).
* ``repro observe`` — run a managed workload and dump the framework's
  own observability data: metric snapshot (text/Prometheus/JSON), the
  paper-style overhead report, recent trace events, and optionally a
  ``chrome://tracing`` file (see docs/observability.md).
* ``repro policies`` — regenerate the Table IV policy comparison, list
  the registered policies (``--list``), or run the policy-zoo
  head-to-head campaign (``--compare``; see docs/policies.md).
* ``repro static-caps`` — regenerate the Table III static-cap sweep.
* ``repro queue`` — the Section IV-E job-queue campaign.
* ``repro chaos`` — the fault-injection campaign (graceful degradation).
* ``repro bench`` — time the hot paths and write a ``BENCH_<name>.json``
  perf artifact (see docs/performance.md).
* ``repro simtest`` — seeded scenario fuzzing under the runtime
  invariant checkers, with failure shrinking and seed/artifact replay
  (see docs/testing.md).
* ``repro tenants`` — multi-tenant fairness: the weighted/oversubscribed
  demo report (``--report``, optional accounting CSV export) or seeded
  tenant-forced scenario fuzzing (see docs/tenancy.md).
* ``repro federate`` — the site tier: a scripted two-cluster federation
  demo (``--demo``), or seeded *federated* scenario fuzzing under the
  site-level invariant checkers (see docs/federation.md).
* ``repro lifecycle`` — crash-recovery tooling: snapshot/restore a
  seeded run's manager state, diff artifacts, fuzz crash-at-random-tick
  restore equivalence, and lint the snapshot schema version (see
  docs/lifecycle.md).
* ``repro serve`` — boot the asyncio HTTP power-management API over a
  seeded cluster (``--smoke`` boots, checks, exits; see docs/serving.md).
* ``repro loadtest`` — run a seeded, deterministic load campaign
  against the API and write a ``BENCH_<name>.json`` artifact.
* ``repro apps`` — list the calibrated application models.

Usage::

    python -m repro.cli telemetry --app quicksilver --nodes 2
    python -m repro.cli observe --policy fpp --format prom
    python -m repro.cli policies --seed 1
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps.registry import get_profile, list_apps
from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig


def _cmd_telemetry(args: argparse.Namespace) -> int:
    cluster = PowerManagedCluster(
        platform=args.platform, n_nodes=args.cluster_nodes, seed=args.seed
    )
    job = cluster.submit(
        Jobspec(
            app=args.app,
            nnodes=args.nodes,
            params={"work_scale": args.work_scale},
        )
    )
    cluster.run_until_complete(timeout_s=10_000_000)
    cluster.run_for(4.0)
    data = cluster.telemetry(job.jobid)
    if args.output:
        data.write_csv(args.output)
        print(f"wrote {len(data.rows)} samples to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(data.to_csv())
    m = cluster.metrics(job.jobid)
    print(
        f"# job {job.jobid}: {m.runtime_s:.1f} s, avg {m.avg_node_power_w:.0f} W/node, "
        f"{m.avg_node_energy_kj:.1f} kJ/node, complete={data.complete}",
        file=sys.stderr,
    )
    return 0


def _cmd_observe(args: argparse.Namespace) -> int:
    """Run a small managed workload and dump the observability data."""
    from repro.analysis.chrome_trace import write_chrome_trace

    cluster = PowerManagedCluster(
        platform=args.platform,
        n_nodes=args.cluster_nodes,
        seed=args.seed,
        manager_config=ManagerConfig(
            global_cap_w=1200.0 * args.cluster_nodes,
            policy=args.policy,
            static_node_cap_w=1950.0,
        ),
    )
    per_job = max(1, args.cluster_nodes // max(1, args.jobs))
    for _ in range(args.jobs):
        cluster.submit(Jobspec(app=args.app, nnodes=per_job))
    cluster.run_until_complete(timeout_s=10_000_000)

    hub = cluster.telemetry_hub
    if args.format == "prom":
        text = hub.metrics.to_prometheus()
    elif args.format == "json":
        text = hub.metrics.to_json(indent=2) + "\n"
    else:
        text = hub.metrics.render() + "\n\n" + cluster.overhead_report().render() + "\n"
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote metrics to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    if args.trace:
        print(hub.tracer.render(last=args.trace))
    if args.chrome:
        n = write_chrome_trace(args.chrome, hub.tracer)
        print(f"wrote {n} trace events to {args.chrome}", file=sys.stderr)
    return 0


def _cmd_policies(args: argparse.Namespace) -> int:
    from repro.manager.policies import POLICY_FACTORIES

    if args.list:
        print(f"{'name':<14} {'class':<24} wrapped")
        for name in sorted(POLICY_FACTORIES):
            policy = POLICY_FACTORIES[name]()
            wrapped = policy.name.startswith("safe-")
            cls = (
                type(policy.inner).__name__  # type: ignore[attr-defined]
                if wrapped
                else type(policy).__name__
            )
            print(f"{name:<14} {cls:<24} {'yes' if wrapped else 'no'}")
        return 0

    if args.compare:
        from repro.experiments.table4_policies import run_policy_head_to_head

        result = run_policy_head_to_head(
            seed=args.seed,
            quick=not args.full,
            policies=args.only.split(",") if args.only else None,
        )
        text = result.to_markdown() if args.markdown else result.to_csv()
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(text)
            print(f"wrote {len(result.runs)} rows to {args.output}", file=sys.stderr)
        else:
            sys.stdout.write(text)
        return 0

    from repro.experiments.table4_policies import run_table4

    result = run_table4(seed=args.seed)
    for line in result.table_rows():
        print(line)
    print()
    for key, value in result.headline_claims().items():
        print(f"{key}: {value:+.2f}")
    return 0


def _cmd_static_caps(args: argparse.Namespace) -> int:
    from repro.experiments.table3_static import run_table3

    result = run_table3(seed=args.seed)
    for line in result.table_rows():
        print(line)
    return 0


def _cmd_queue(args: argparse.Namespace) -> int:
    from repro.experiments.queue_campaign import run_queue_campaign

    result = run_queue_campaign(seed=args.seed)
    for line in result.table_rows():
        print(line)
    print(f"makespans equal: {result.makespans_equal()}")
    print(f"FPP energy-per-node improvement: {result.fpp_energy_improvement_pct():+.2f}%")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """Check every headline claim; exit nonzero on any failure."""
    from repro.experiments.validate import run_validation

    report = run_validation(seed=args.seed, queue_seed=args.queue_seed)
    print(report.render())
    return 0 if report.all_passed else 1


def _cmd_report(args: argparse.Namespace) -> int:
    """Run the queue campaign under one policy and print a report."""
    import numpy as np

    from repro.analysis.report import summarise_campaign
    from repro.apps.workloads import make_random_queue
    from repro.experiments.queue_campaign import QUEUE_WORK_SCALES

    jobs = make_random_queue(
        np.random.default_rng(args.seed),
        min_nodes=1,
        max_nodes=8,
        work_scales=QUEUE_WORK_SCALES,
    )
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=16,
        seed=args.seed,
        manager_config=ManagerConfig(
            global_cap_w=19_200.0, policy=args.policy, static_node_cap_w=1950.0
        ),
    )
    for entry in jobs:
        cluster.submit(entry.spec)
    cluster.run_until_complete(timeout_s=10_000_000)
    cluster.run_for(1.0)
    print(summarise_campaign(cluster).render())
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run the fault-injection campaign and print the degradation audit."""
    from repro.experiments.chaos_campaign import run_chaos_campaign

    result = run_chaos_campaign(seed=args.seed, n_nodes=args.nodes)
    for line in result.table_rows():
        print(line)
    return 0 if result.degraded_ok() else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run the perf benchmark suite and write a BENCH_<name>.json artifact."""
    import os

    from repro.bench import default_suite, run_suite, validate_report, write_report

    if args.compare:
        return _bench_compare(args)
    suite = default_suite(only=args.only)
    if not suite:
        print(f"no benchmarks match --only {args.only!r}", file=sys.stderr)
        return 2
    report = run_suite(
        suite,
        name=args.name,
        quick=args.quick,
        progress=lambda msg: print(msg, file=sys.stderr),
        repeats=args.repeats,
    )
    validate_report(report.to_dict())
    for line in report.table_rows():
        print(line)
    path = os.path.join(args.out, f"BENCH_{args.name}.json")
    write_report(report, path)
    print(f"wrote {path}", file=sys.stderr)
    return 0


def _bench_compare(args: argparse.Namespace) -> int:
    """Diff two BENCH_*.json artifacts and gate on --max-regress."""
    from repro.bench import compare_report_files, parse_max_regress

    try:
        max_regress = parse_max_regress(args.max_regress)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    base_path, new_path = args.compare
    try:
        result = compare_report_files(base_path, new_path, max_regress)
    except (OSError, ValueError) as exc:
        print(f"cannot compare bench artifacts: {exc}", file=sys.stderr)
        return 2
    for warning in result.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    for line in result.table_rows():
        print(line)
    print(result.summary())
    return 0 if result.ok else 1


def _digest_matches(digest: str, expected: str) -> bool:
    """True if *expected* is the full digest or a >=12-char prefix of it.

    Result summaries print a 12-char digest prefix; accepting that
    prefix back keeps ``--expect-digest`` usable straight from the
    printed output. Shorter strings must match exactly.
    """
    if digest == expected:
        return True
    return len(expected) >= 12 and digest.startswith(expected)


def _cmd_simtest(args: argparse.Namespace) -> int:
    """Seeded scenario fuzzing: batch runs, seed replay, artifact replay."""
    from repro.simtest import (
        Scenario,
        default_checkers,
        generate_scenario,
        load_reproducer,
        run_batch,
        run_scenario,
    )

    if args.replay:
        scenario = load_reproducer(args.replay)
        result = run_scenario(scenario, checkers=default_checkers())
        print(result.summary())
        if not result.ok:
            for v in result.violations[: args.max_violations]:
                print(f"  [{v.invariant}] t={v.t:.3f}: {v.message}")
        return 0 if result.ok else 1

    if args.seed is not None:
        result = run_scenario(
            generate_scenario(args.seed), checkers=default_checkers()
        )
        print(result.summary())
        if not result.ok:
            for v in result.violations[: args.max_violations]:
                print(f"  [{v.invariant}] t={v.t:.3f}: {v.message}")
        if args.expect_digest and not _digest_matches(
            result.digest, args.expect_digest
        ):
            print(
                f"digest mismatch: got {result.digest}, "
                f"expected {args.expect_digest}",
                file=sys.stderr,
            )
            return 2
        return 0 if result.ok else 1

    seeds = range(args.seed_start, args.seed_start + args.seeds)
    report = run_batch(
        seeds,
        shrink=not args.no_shrink,
        artifact_dir=args.artifacts,
        progress=(
            (lambda r: print(r.summary(), file=sys.stderr))
            if args.verbose
            else None
        ),
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_tenants(args: argparse.Namespace) -> int:
    """Multi-tenant fairness: demo report and tenant-forced fuzzing."""
    if args.report:
        from repro.tenancy.report import run_demo

        run_demo(args.seed if args.seed is not None else 0, csv_path=args.csv)
        return 0

    from repro.simtest import default_checkers, generate_scenario, run_scenario
    from repro.simtest.fuzzer import run_batch
    from repro.simtest.scenario import GeneratorConfig

    # Every seed carries a tenant mix (the knob rides its own substream,
    # so the rest of the scenario matches plain `repro simtest` seeds).
    config = GeneratorConfig(p_tenancy=1.0)

    if args.seed is not None:
        result = run_scenario(
            generate_scenario(args.seed, config), checkers=default_checkers()
        )
        print(result.summary())
        if not result.ok:
            for v in result.violations[: args.max_violations]:
                print(f"  [{v.invariant}] t={v.t:.3f}: {v.message}")
        return 0 if result.ok else 1

    seeds = range(args.seed_start, args.seed_start + args.seeds)
    report = run_batch(
        seeds,
        config=config,
        shrink=not args.no_shrink,
        artifact_dir=args.artifacts,
        progress=(
            (lambda r: print(r.summary(), file=sys.stderr))
            if args.verbose
            else None
        ),
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_federate(args: argparse.Namespace) -> int:
    """Site-tier demo campaign and federated scenario fuzzing."""
    if args.demo:
        from repro.experiments.federation_campaign import run_federation_campaign

        result = run_federation_campaign(seed=args.seed if args.seed is not None else 1)
        if args.output:
            with open(args.output, "w") as fh:
                fh.write(result.timeline_csv())
            print(f"wrote timeline to {args.output}", file=sys.stderr)
        else:
            sys.stdout.write(result.timeline_csv())
        for line in result.table_rows():
            print(line, file=sys.stderr)
        return 0

    from repro.simtest.federation import (
        generate_federated_scenario,
        load_federated_reproducer,
        run_federated_batch,
        run_federated_scenario,
    )
    from repro.simtest.invariants import site_checkers

    if args.replay:
        scenario = load_federated_reproducer(args.replay)
        result = run_federated_scenario(scenario, checkers=site_checkers())
        print(result.summary())
        if not result.ok:
            for v in result.violations[: args.max_violations]:
                print(f"  [{v.invariant}] t={v.t:.3f}: {v.message}")
        return 0 if result.ok else 1

    if args.seed is not None:
        result = run_federated_scenario(
            generate_federated_scenario(args.seed), checkers=site_checkers()
        )
        print(result.summary())
        if not result.ok:
            for v in result.violations[: args.max_violations]:
                print(f"  [{v.invariant}] t={v.t:.3f}: {v.message}")
        if args.expect_digest and not _digest_matches(
            result.digest, args.expect_digest
        ):
            print(
                f"digest mismatch: got {result.digest}, "
                f"expected {args.expect_digest}",
                file=sys.stderr,
            )
            return 2
        return 0 if result.ok else 1

    seeds = range(args.seed_start, args.seed_start + args.seeds)
    report = run_federated_batch(
        seeds,
        artifact_dir=args.artifacts,
        progress=(
            (lambda r: print(r.summary(), file=sys.stderr))
            if args.verbose
            else None
        ),
    )
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_lifecycle(args: argparse.Namespace) -> int:
    """Crash-recovery tooling: snapshot, restore, diff, fuzz, lint."""
    from repro.lifecycle.recovery import (
        crash_restore_setup,
        fuzz_recovery,
        run_scenario_with_recovery,
    )
    from repro.lifecycle.snapshot import (
        diff_snapshots,
        load_snapshot,
        restore_cluster,
        save_snapshot,
        schema_lint,
        snapshot_cluster,
        wipe_cluster_state,
    )
    from repro.simtest import generate_scenario, run_scenario
    from repro.simtest.scenario import GeneratorConfig, Scenario

    if args.schema_lint:
        problems = schema_lint()
        for problem in problems:
            print(problem, file=sys.stderr)
        print("schema lint: " + ("FAIL" if problems else "OK"))
        return 1 if problems else 0

    if args.diff:
        a, b = (load_snapshot(path) for path in args.diff)
        diffs = diff_snapshots(a, b)
        for line in diffs:
            print(line)
        print(f"{len(diffs)} difference(s)")
        return 1 if diffs else 0

    def _pinned_scenario(seed: int) -> Scenario:
        # The verify stage's reference workload: a 16-node generated
        # scenario, so CI exercises a fixed topology while jobs/faults
        # still vary with the seed.
        return generate_scenario(
            seed, GeneratorConfig(min_nodes=args.nodes, max_nodes=args.nodes)
        )

    if args.snapshot:
        scenario = _pinned_scenario(args.seed)
        base = run_scenario(scenario)
        makespan = base.makespan_s if base.makespan_s else 1.0
        crash_t = round(args.at * makespan, 3)
        snapshots: list = []

        def _setup(cluster, sim):
            sim.schedule_at(
                crash_t,
                lambda: snapshots.append(snapshot_cluster(cluster, scenario)),
            )

        run_scenario(scenario, setup=_setup)
        save_snapshot(snapshots[0], args.snapshot)
        print(
            f"wrote {args.snapshot}: {scenario.describe()} at t={crash_t}",
            file=sys.stderr,
        )
        return 0

    if args.restore:
        snap = load_snapshot(args.restore)
        if not snap.get("scenario"):
            print(
                f"{args.restore} embeds no scenario; cannot rebuild the run",
                file=sys.stderr,
            )
            return 2
        scenario = Scenario.from_dict(snap["scenario"])
        base = run_scenario(scenario)
        crash_t = float(snap["t"])

        def _setup(cluster, sim):
            def _recover():
                wipe_cluster_state(cluster)
                restore_cluster(cluster, snap)

            sim.schedule_at(crash_t, _recover)

        recovered = run_scenario(scenario, setup=_setup)
        match = base.digest == recovered.digest
        print(f"base      {base.digest}")
        print(f"recovered {recovered.digest}")
        print("restore equivalence: " + ("OK" if match else "FAIL"))
        return 0 if match and recovered.ok else 1

    if args.fuzz:
        seeds = range(args.seed_start, args.seed_start + args.fuzz)
        batch = fuzz_recovery(
            seeds,
            progress=(
                (lambda r: print(r.summary(), file=sys.stderr))
                if args.verbose
                else None
            ),
        )
        print(batch.summary())
        return 0 if batch.ok else 1

    # Default (--check): one seeded crash → wipe → restore → continue
    # equivalence run, snapshotting mid-run via the fuzz setup hook.
    result = run_scenario_with_recovery(
        _pinned_scenario(args.seed), crash_fraction=args.at
    )
    print(result.summary())
    if not result.equivalent:
        print(
            f"digest split: base {result.base_digest} != "
            f"recovered {result.recovered_digest}",
            file=sys.stderr,
        )
    return 0 if result.ok else 1


def _build_serving(args: argparse.Namespace):
    """One seeded cluster wrapped in a registry + service + driver."""
    from repro.serving import ClusterRegistry, PowerService, SimDriver

    manager_config = None
    if args.policy != "none":
        budget = args.budget
        if budget is None:
            budget = 1250.0 * args.nodes
        manager_config = ManagerConfig(
            global_cap_w=budget,
            policy=args.policy,
            static_node_cap_w=1950.0 if args.platform == "lassen" else None,
        )
    cluster = PowerManagedCluster(
        platform=args.platform,
        n_nodes=args.nodes,
        seed=args.seed,
        manager_config=manager_config,
    )
    registry = ClusterRegistry.from_cluster(cluster, name="default")
    return PowerService(registry), SimDriver(registry)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the asyncio HTTP service over a seeded cluster."""
    import asyncio

    from repro.serving import AsyncApiClient, ServingServer

    service, driver = _build_serving(args)
    server = ServingServer(
        service,
        driver,
        host=args.host,
        port=args.port,
        advance_interval_s=(
            args.advance_interval if args.advance_interval > 0 else None
        ),
        advance_dt_s=args.advance_dt,
    )

    async def _serve() -> int:
        await server.start()
        print(
            f"serving {args.platform}x{args.nodes} (seed {args.seed}) on "
            f"http://{server.host}:{server.port}",
            file=sys.stderr,
        )
        if args.smoke:
            checks = [
                ("GET", "/v1/health", None, None),
                ("GET", "/v1/clusters", None, None),
                ("POST", "/v1/clusters/default/jobs", None,
                 {"app": "gemm", "nnodes": 1}),
                ("GET", "/v1/clusters/default/power", None, None),
                ("GET", "/v1/clusters/default/jobs",
                 {"limit": "10", "response_format": "detailed"}, None),
                ("GET", "/v1/clusters/default/queue", None, None),
            ]
            client = AsyncApiClient(server.host, server.port)
            failures = 0
            for method, path, params, body in checks:
                status, _ = await client.request(method, path, params, body)
                ok = status < 400
                failures += 0 if ok else 1
                print(f"{'ok ' if ok else 'ERR'} {status} {method} {path}")
            await client.close()
            await server.stop()
            print(f"smoke: {len(checks) - failures}/{len(checks)} checks passed")
            return 1 if failures else 0
        try:
            await server.serve_forever()
        finally:
            await server.stop()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Run a seeded load campaign and write a BENCH_<name>.json artifact."""
    import asyncio
    import os

    from repro.bench import validate_report, write_report
    from repro.serving import (
        LoadProfile,
        ServingServer,
        arun_loadtest_http,
        generate_trace,
        run_loadtest,
        trace_lines,
    )

    profile = LoadProfile(
        clients=args.clients,
        requests_per_client=args.requests_per_client,
        warmup_jobs=args.warmup_jobs,
        advance_every=args.advance_every,
        advance_dt_s=args.advance_dt,
    )
    service, driver = _build_serving(args)
    trace = generate_trace(args.seed, profile, n_nodes=args.nodes)
    if args.trace:
        with open(args.trace, "w") as fh:
            fh.write("\n".join(trace_lines(trace)) + "\n")
        print(f"wrote request trace to {args.trace}", file=sys.stderr)

    if args.http:
        async def _run():
            server = ServingServer(service, driver, port=0)
            await server.start()
            try:
                return await arun_loadtest_http(
                    args.seed, profile, server.host, server.port,
                    trace=trace, n_nodes=args.nodes,
                )
            finally:
                await server.stop()

        result = asyncio.run(_run())
    else:
        result = run_loadtest(args.seed, profile, service, driver, trace=trace)

    print(result.summary())
    print(f"trace_sha256={result.trace_sha256}")
    print(f"response_digest={result.response_digest}")
    report = result.to_report(name=args.name, quick=args.quick)
    validate_report(report.to_dict())
    path = os.path.join(args.out, f"BENCH_{args.name}.json")
    write_report(report, path)
    print(f"wrote {path}", file=sys.stderr)

    if result.errors:
        print(f"FAIL: {result.errors} request(s) errored", file=sys.stderr)
        return 1
    if args.p99_max is not None and result.p99_ms > args.p99_max:
        print(
            f"FAIL: p99 {result.p99_ms:.2f} ms exceeds bound "
            f"{args.p99_max:.2f} ms",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_apps(_args: argparse.Namespace) -> int:
    print(f"{'app':<12} {'scaling':<7} {'launcher':<8} {'base s':>7}  inputs")
    for name in list_apps():
        p = get_profile(name)
        print(
            f"{p.name:<12} {p.scaling:<7} {p.launcher:<8} "
            f"{p.base_runtime_s:>7.1f}  {p.inputs}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vendor-neutral job power management (SC'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t = sub.add_parser("telemetry", help="run a job and print its power CSV")
    t.add_argument("--app", default="quicksilver", choices=list_apps())
    t.add_argument("--nodes", type=int, default=2)
    t.add_argument("--cluster-nodes", type=int, default=4)
    t.add_argument("--platform", default="lassen",
                   choices=("lassen", "tioga", "generic"))
    t.add_argument("--work-scale", type=float, default=5.0)
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--output", "-o", help="CSV output path (default: stdout)")
    t.set_defaults(func=_cmd_telemetry)

    o = sub.add_parser(
        "observe", help="run a managed workload and dump framework telemetry"
    )
    o.add_argument("--app", default="gemm", choices=list_apps())
    o.add_argument("--jobs", type=int, default=2, help="number of jobs to submit")
    o.add_argument("--cluster-nodes", type=int, default=8)
    o.add_argument("--platform", default="lassen",
                   choices=("lassen", "tioga", "generic"))
    o.add_argument(
        "--policy", default="fpp",
        choices=("static", "proportional", "fpp", "fpp-socket"),
    )
    o.add_argument("--seed", type=int, default=0)
    o.add_argument(
        "--format", default="text", choices=("text", "prom", "json"),
        help="metric snapshot format (default: human-readable text)",
    )
    o.add_argument("--output", "-o", help="metrics output path (default: stdout)")
    o.add_argument(
        "--trace", type=int, default=0, metavar="N",
        help="also print the last N trace events",
    )
    o.add_argument("--chrome", metavar="PATH",
                   help="write a chrome://tracing JSON file")
    o.set_defaults(func=_cmd_observe)

    p = sub.add_parser(
        "policies",
        help="Table IV comparison, policy listing, or the zoo head-to-head",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--list", action="store_true",
        help="list registered policies (name, class, safety-wrapped?)",
    )
    p.add_argument(
        "--compare", action="store_true",
        help="run the head-to-head campaign: every registered policy on "
        "the same seeded workload (quick mode unless --full)",
    )
    p.add_argument(
        "--full", action="store_true",
        help="with --compare: Table IV problem sizes instead of quick mode",
    )
    p.add_argument(
        "--only", default="",
        help="with --compare: comma-separated subset of policies to run",
    )
    p.add_argument(
        "--markdown", action="store_true",
        help="with --compare: emit a markdown table instead of CSV",
    )
    p.add_argument(
        "--output", "-o",
        help="with --compare: write the table here (default: stdout)",
    )
    p.set_defaults(func=_cmd_policies)

    s = sub.add_parser("static-caps", help="regenerate the Table III sweep")
    s.add_argument("--seed", type=int, default=1)
    s.set_defaults(func=_cmd_static_caps)

    q = sub.add_parser("queue", help="run the Section IV-E queue campaign")
    q.add_argument("--seed", type=int, default=10)
    q.set_defaults(func=_cmd_queue)

    v = sub.add_parser("validate", help="check every headline claim (PASS/FAIL)")
    v.add_argument("--seed", type=int, default=1)
    v.add_argument("--queue-seed", type=int, default=10)
    v.set_defaults(func=_cmd_validate)

    r = sub.add_parser("report", help="run a queue campaign and print a report")
    r.add_argument("--seed", type=int, default=10)
    r.add_argument(
        "--policy", default="proportional",
        choices=("static", "proportional", "fpp", "fpp-socket"),
    )
    r.set_defaults(func=_cmd_report)

    c = sub.add_parser(
        "chaos", help="run the fault-injection campaign (degradation audit)"
    )
    c.add_argument("--seed", type=int, default=1)
    c.add_argument("--nodes", type=int, default=8)
    c.set_defaults(func=_cmd_chaos)

    b = sub.add_parser(
        "bench", help="run the perf suite and write a BENCH_<name>.json artifact"
    )
    b.add_argument("--name", default="local", help="artifact name (BENCH_<name>.json)")
    b.add_argument("--out", default=".", help="output directory (default: cwd)")
    b.add_argument(
        "--quick", action="store_true",
        help="reduced sizes for smoke testing (marks the artifact quick=true)",
    )
    b.add_argument(
        "--only", default="",
        help="run only benchmarks whose name contains this substring",
    )
    b.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="run each benchmark N times and keep the fastest run "
        "(best-of-N; use the same N when comparing against a baseline)",
    )
    b.add_argument(
        "--compare", nargs=2, metavar=("BASE", "NEW"), default=None,
        help="compare two BENCH_*.json artifacts instead of running the "
        "suite; exits 1 if NEW regresses past --max-regress vs BASE",
    )
    b.add_argument(
        "--max-regress", default="10%", metavar="FRAC",
        help="allowed fractional regression for --compare, e.g. 10%% or "
        "0.1 (default: 10%%)",
    )
    b.set_defaults(func=_cmd_bench)

    st = sub.add_parser(
        "simtest",
        help="fuzz random scenarios under the invariant checkers",
    )
    st.add_argument(
        "--seeds", type=int, default=25,
        help="number of scenarios to fuzz (default: 25)",
    )
    st.add_argument(
        "--seed-start", type=int, default=0,
        help="first seed of the batch (default: 0)",
    )
    st.add_argument(
        "--seed", type=int, default=None,
        help="replay a single seed instead of running a batch",
    )
    st.add_argument(
        "--expect-digest", default=None, metavar="SHA256",
        help="with --seed: exit 2 unless the run digest matches "
        "(full sha256 or the printed >=12-char prefix)",
    )
    st.add_argument(
        "--replay", metavar="PATH",
        help="replay a shrunk reproducer artifact (JSON)",
    )
    st.add_argument(
        "--artifacts", metavar="DIR",
        help="directory for shrunk reproducer artifacts (batch mode)",
    )
    st.add_argument(
        "--no-shrink", action="store_true",
        help="report violations without shrinking them",
    )
    st.add_argument(
        "--max-violations", type=int, default=5,
        help="violations to print per failing scenario (default: 5)",
    )
    st.add_argument(
        "--verbose", "-v", action="store_true",
        help="print each scenario result as it completes",
    )
    st.set_defaults(func=_cmd_simtest)

    tn = sub.add_parser(
        "tenants",
        help="multi-tenant fairness: demo report or tenant-forced fuzzing",
    )
    tn.add_argument(
        "--report", action="store_true",
        help="run the weighted/oversubscribed demo and print its report",
    )
    tn.add_argument(
        "--csv", metavar="PATH",
        help="with --report: also write the accounting CSV export",
    )
    tn.add_argument(
        "--seeds", type=int, default=25,
        help="number of tenant-mix scenarios to fuzz (default: 25)",
    )
    tn.add_argument(
        "--seed-start", type=int, default=0,
        help="first seed of the batch (default: 0)",
    )
    tn.add_argument(
        "--seed", type=int, default=None,
        help="replay a single tenant-forced seed (or pick the --report seed)",
    )
    tn.add_argument(
        "--artifacts", metavar="DIR",
        help="directory for shrunk reproducer artifacts (batch mode)",
    )
    tn.add_argument(
        "--no-shrink", action="store_true",
        help="report violations without shrinking them",
    )
    tn.add_argument(
        "--max-violations", type=int, default=5,
        help="violations to print per failing scenario (default: 5)",
    )
    tn.add_argument(
        "--verbose", "-v", action="store_true",
        help="print each scenario result as it completes",
    )
    tn.set_defaults(func=_cmd_tenants)

    f = sub.add_parser(
        "federate",
        help="site-tier federation: demo campaign or federated fuzzing",
    )
    f.add_argument(
        "--demo", action="store_true",
        help="run the scripted two-cluster campaign and print its timeline CSV",
    )
    f.add_argument(
        "--output", "-o",
        help="with --demo: timeline CSV output path (default: stdout)",
    )
    f.add_argument(
        "--seeds", type=int, default=25,
        help="number of federated scenarios to fuzz (default: 25)",
    )
    f.add_argument(
        "--seed-start", type=int, default=0,
        help="first seed of the batch (default: 0)",
    )
    f.add_argument(
        "--seed", type=int, default=None,
        help="replay a single federated seed (or pick the --demo seed)",
    )
    f.add_argument(
        "--expect-digest", default=None, metavar="SHA256",
        help="with --seed: exit 2 unless the run digest matches "
        "(full sha256 or the printed >=12-char prefix)",
    )
    f.add_argument(
        "--replay", metavar="PATH",
        help="replay a federated reproducer artifact (JSON)",
    )
    f.add_argument(
        "--artifacts", metavar="DIR",
        help="directory for reproducer artifacts (batch mode)",
    )
    f.add_argument(
        "--max-violations", type=int, default=5,
        help="violations to print per failing scenario (default: 5)",
    )
    f.add_argument(
        "--verbose", "-v", action="store_true",
        help="print each scenario result as it completes",
    )
    f.set_defaults(func=_cmd_federate)

    lc = sub.add_parser(
        "lifecycle",
        help="crash-recovery: snapshot/restore/diff artifacts, fuzz "
        "restore equivalence, lint the snapshot schema",
    )
    lc.add_argument(
        "--seed", type=int, default=1,
        help="scenario seed for --check/--snapshot (default: 1)",
    )
    lc.add_argument(
        "--nodes", type=int, default=16,
        help="pinned cluster size for --check/--snapshot (default: 16)",
    )
    lc.add_argument(
        "--at", type=float, default=0.5, metavar="FRACTION",
        help="crash instant as a fraction of the uninterrupted makespan "
        "(default: 0.5)",
    )
    lc.add_argument(
        "--snapshot", metavar="PATH",
        help="run the seeded scenario and write its mid-run artifact",
    )
    lc.add_argument(
        "--restore", metavar="PATH",
        help="replay an artifact's run, wipe+restore at its instant, and "
        "verify digest equivalence",
    )
    lc.add_argument(
        "--diff", nargs=2, metavar=("A", "B"),
        help="print dotted-path differences between two artifacts",
    )
    lc.add_argument(
        "--fuzz", type=int, default=None, metavar="N",
        help="crash-restore equivalence over N generated scenarios",
    )
    lc.add_argument(
        "--seed-start", type=int, default=0,
        help="first seed of a --fuzz batch (default: 0)",
    )
    lc.add_argument(
        "--schema-lint", action="store_true",
        help="verify SCHEMA_FIELDS changes came with a version bump",
    )
    lc.add_argument(
        "--verbose", "-v", action="store_true",
        help="print each fuzz result as it completes",
    )
    lc.set_defaults(func=_cmd_lifecycle)

    def _serving_cluster_args(sp) -> None:
        sp.add_argument("--nodes", type=int, default=16,
                        help="cluster size (default 16)")
        sp.add_argument("--platform", default="lassen",
                        choices=("lassen", "tioga", "generic"))
        sp.add_argument("--seed", type=int, default=1)
        sp.add_argument("--policy", default="proportional",
                        help="manager policy, or 'none' for telemetry-only")
        sp.add_argument("--budget", type=float, default=None,
                        help="cluster power budget W (default 1250*nodes)")

    sv = sub.add_parser(
        "serve",
        help="boot the asyncio HTTP power-management API over a seeded cluster",
    )
    _serving_cluster_args(sv)
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8642,
                    help="TCP port (0 picks a free one)")
    sv.add_argument("--advance-interval", type=float, default=2.0,
                    help="wall seconds between engine advances (0 freezes time)")
    sv.add_argument("--advance-dt", type=float, default=2.0,
                    help="simulated seconds per engine advance")
    sv.add_argument("--smoke", action="store_true",
                    help="boot, run a request checklist over HTTP, exit")
    sv.set_defaults(func=_cmd_serve)

    lt = sub.add_parser(
        "loadtest",
        help="run a seeded load campaign and write BENCH_<name>.json",
    )
    _serving_cluster_args(lt)
    lt.add_argument("--clients", type=int, default=100,
                    help="concurrent simulated clients (default 100)")
    lt.add_argument("--requests-per-client", type=int, default=4)
    lt.add_argument("--warmup-jobs", type=int, default=4)
    lt.add_argument("--advance-every", type=int, default=50,
                    help="advance the engine after every N requests (0 never)")
    lt.add_argument("--advance-dt", type=float, default=1.0,
                    help="simulated seconds per engine advance")
    lt.add_argument("--http", action="store_true",
                    help="drive a real asyncio HTTP server instead of in-proc")
    lt.add_argument("--name", default="serving",
                    help="artifact name (BENCH_<name>.json)")
    lt.add_argument("--out", default=".", help="artifact directory")
    lt.add_argument("--quick", action="store_true",
                    help="mark the artifact as a quick (small-size) run")
    lt.add_argument("--p99-max", type=float, default=None,
                    help="fail (exit 1) when p99 latency exceeds this many ms")
    lt.add_argument("--trace", default=None,
                    help="also write the generated request trace (JSONL)")
    lt.set_defaults(func=_cmd_loadtest)

    a = sub.add_parser("apps", help="list calibrated application models")
    a.set_defaults(func=_cmd_apps)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
