"""Small statistics helpers (no pandas dependency)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def mean(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("mean of empty sequence")
    return float(sum(xs) / len(xs))


def stdev(xs: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0.0 for fewer than 2 points."""
    if len(xs) < 2:
        return 0.0
    return float(np.std(np.asarray(xs, dtype=float), ddof=1))


def percent_change(new: float, old: float) -> float:
    """(new - old) / old in percent; positive means 'new' is larger."""
    if old == 0:
        raise ZeroDivisionError("old value is zero")
    return (new - old) / old * 100.0


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary used for the Fig 4 box plots."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    @property
    def spread_pct(self) -> float:
        """(max - min) / median, in percent — the paper's >20% criterion."""
        if self.median == 0:
            return math.inf
        return (self.maximum - self.minimum) / self.median * 100.0


def boxplot_stats(xs: Sequence[float]) -> BoxStats:
    arr = np.asarray(xs, dtype=float)
    if arr.size == 0:
        raise ValueError("boxplot of empty sequence")
    q1, med, q3 = (float(v) for v in np.percentile(arr, [25, 50, 75]))
    return BoxStats(
        minimum=float(arr.min()), q1=q1, median=med, q3=q3, maximum=float(arr.max())
    )
