"""Terminal rendering of power timelines (the paper's figures, as text).

The benchmark harness regenerates each figure's *data*; these helpers
render it as ASCII so `pytest benchmarks/ -s` shows the actual shapes —
Quicksilver's bursts, the Fig 5 share step, FPP's probe dips — without
a plotting stack.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Series = Sequence[Tuple[float, float]]

#: Glyphs used for multi-series plots, in order.
GLYPHS = "#*o+x%@&"


def ascii_timeline(
    series: Dict[str, Series],
    width: int = 72,
    height: int = 16,
    y_label: str = "W",
    t_range: Optional[Tuple[float, float]] = None,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render one or more (t, value) series as an ASCII chart.

    Multiple series share axes; each gets a glyph from :data:`GLYPHS`.
    Later series overwrite earlier ones where they collide.
    """
    if not series:
        raise ValueError("no series to plot")
    all_points = [(t, v) for s in series.values() for (t, v) in s]
    if not all_points:
        raise ValueError("series are empty")

    t_lo, t_hi = t_range or (
        min(t for t, _ in all_points),
        max(t for t, _ in all_points),
    )
    y_lo, y_hi = y_range or (
        min(v for _, v in all_points),
        max(v for _, v in all_points),
    )
    if t_hi <= t_lo:
        t_hi = t_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, s), glyph in zip(series.items(), GLYPHS):
        for t, v in s:
            if not (t_lo <= t <= t_hi):
                continue
            col = int((t - t_lo) / (t_hi - t_lo) * (width - 1))
            row = int((v - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = glyph

    lines: List[str] = []
    legend = "  ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), GLYPHS)
    )
    lines.append(legend)
    top_label = f"{y_hi:8.0f} {y_label} "
    pad = " " * len(top_label)
    for i, row in enumerate(grid):
        prefix = top_label if i == 0 else (
            f"{y_lo:8.0f} {y_label} " if i == height - 1 else pad
        )
        lines.append(prefix + "|" + "".join(row))
    axis = pad + "+" + "-" * width
    lines.append(axis)
    lines.append(pad + f"t={t_lo:.0f}s" + " " * max(1, width - 20) + f"t={t_hi:.0f}s")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line sparkline of a value sequence (resampled to ``width``)."""
    blocks = " ▁▂▃▄▅▆▇█"
    vals = list(values)
    if not vals:
        return ""
    if len(vals) > width:
        step = len(vals) / width
        vals = [vals[int(i * step)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return blocks[1] * len(vals)
    out = []
    for v in vals:
        idx = 1 + int((v - lo) / (hi - lo) * (len(blocks) - 2))
        out.append(blocks[min(idx, len(blocks) - 1)])
    return "".join(out)
