"""Analysis utilities: energy integration, traces, summary statistics,
and exporters (CSV power traces, chrome://tracing telemetry dumps)."""

from repro.analysis.chrome_trace import (
    chrome_trace_dict,
    events_from_chrome,
    to_chrome_trace_json,
    write_chrome_trace,
)
from repro.analysis.energy import (
    JobMetrics,
    integrate_energy_j,
    job_metrics,
    combined_energy_kj,
)
from repro.analysis.traces import ClusterPowerTrace
from repro.analysis.stats import boxplot_stats, mean, percent_change, stdev
from repro.analysis.plotting import ascii_timeline, sparkline
from repro.analysis.report import CampaignSummary, summarise_campaign

__all__ = [
    "JobMetrics",
    "integrate_energy_j",
    "job_metrics",
    "combined_energy_kj",
    "ClusterPowerTrace",
    "boxplot_stats",
    "mean",
    "stdev",
    "percent_change",
    "ascii_timeline",
    "sparkline",
    "CampaignSummary",
    "summarise_campaign",
    "chrome_trace_dict",
    "to_chrome_trace_json",
    "write_chrome_trace",
    "events_from_chrome",
]
