"""Campaign reports: operator-facing summaries of a cluster run.

Generates the kind of summary a site's power team reads after a
campaign (cf. the paper's motivation of production telemetry): per-job
metrics, cluster utilisation, energy totals, and power-policy activity.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.analysis.energy import JobMetrics
from repro.analysis.stats import mean
from repro.flux.jobspec import JobState

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import
    from repro.cluster import PowerManagedCluster


@dataclass
class CampaignSummary:
    """Aggregates a completed campaign on one cluster."""

    platform: str
    n_nodes: int
    n_jobs: int
    n_completed: int
    n_cancelled: int
    n_failed: int
    makespan_s: Optional[float]
    total_energy_kj: float
    avg_job_energy_per_node_kj: float
    node_hours: float
    utilisation: float
    peak_cluster_kw: Optional[float]
    policy: Optional[str]
    global_cap_w: Optional[float]
    share_changes: int
    job_rows: List[JobMetrics]

    def render(self) -> str:
        """Human-readable report text."""
        out = io.StringIO()
        out.write("=== campaign report ===\n")
        out.write(f"platform:        {self.platform} x {self.n_nodes} nodes\n")
        out.write(
            f"jobs:            {self.n_jobs} submitted, {self.n_completed} "
            f"completed, {self.n_cancelled} cancelled, {self.n_failed} failed\n"
        )
        if self.makespan_s is not None:
            out.write(f"makespan:        {self.makespan_s:.1f} s\n")
        out.write(f"node-hours:      {self.node_hours:.2f}\n")
        out.write(f"utilisation:     {self.utilisation * 100:.1f} %\n")
        out.write(f"total energy:    {self.total_energy_kj:.0f} kJ\n")
        out.write(
            f"avg E/node/job:  {self.avg_job_energy_per_node_kj:.1f} kJ\n"
        )
        if self.peak_cluster_kw is not None:
            out.write(f"peak cluster:    {self.peak_cluster_kw:.2f} kW\n")
        if self.policy is not None:
            cap = (
                f"{self.global_cap_w:.0f} W"
                if self.global_cap_w is not None
                else "unconstrained"
            )
            out.write(
                f"power policy:    {self.policy} (budget {cap}), "
                f"{self.share_changes} share recomputations\n"
            )
        out.write("\nper-job metrics:\n")
        out.write("  " + JobMetrics.header() + "\n")
        for m in self.job_rows:
            out.write("  " + m.row() + "\n")
        return out.getvalue()


def summarise_campaign(cluster: "PowerManagedCluster") -> CampaignSummary:
    """Build a :class:`CampaignSummary` from a finished cluster run."""
    jm = cluster.instance.jobmanager
    records = list(jm.jobs.values())
    completed = [r for r in records if r.state is JobState.COMPLETED]
    cancelled = [r for r in records if r.state is JobState.CANCELLED]
    failed = [r for r in records if r.state is JobState.FAILED]
    metrics = [cluster.metrics(r.jobid) for r in completed if r.jobid in cluster.instance.app_runs]

    node_seconds = sum(m.runtime_s * m.nnodes for m in metrics)
    makespan = jm.makespan_s()
    capacity = (
        makespan * cluster.instance.n_nodes if makespan and makespan > 0 else None
    )
    utilisation = node_seconds / capacity if capacity else 0.0
    total_energy = sum(m.avg_node_energy_kj * m.nnodes for m in metrics)

    peak_kw = None
    if cluster.trace is not None and cluster.trace.times:
        peak_kw = cluster.trace.max_cluster_power_w() / 1e3

    policy = None
    cap = None
    share_changes = 0
    if cluster.manager is not None:
        policy = cluster.manager.config.policy
        cap = cluster.manager.config.global_cap_w
        share_changes = len(cluster.manager.share_log)

    return CampaignSummary(
        platform=cluster.instance.platform,
        n_nodes=cluster.instance.n_nodes,
        n_jobs=len(records),
        n_completed=len(completed),
        n_cancelled=len(cancelled),
        n_failed=len(failed),
        makespan_s=makespan,
        total_energy_kj=total_energy,
        avg_job_energy_per_node_kj=(
            mean([m.avg_node_energy_kj for m in metrics]) if metrics else 0.0
        ),
        node_hours=node_seconds / 3600.0,
        utilisation=min(utilisation, 1.0),
        peak_cluster_kw=peak_kw,
        policy=policy,
        global_cap_w=cap,
        share_changes=share_changes,
        job_rows=metrics,
    )
