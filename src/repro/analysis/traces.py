"""Cluster power tracing.

Table III reports *maximum cluster power usage* — node power summed
across all nodes at each 2 s sampling instant — and the corresponding
average. Figures 1, 5, 6 and 7 are power-versus-time series. The
:class:`ClusterPowerTrace` records both, sampling every node of an
instance on the monitor's grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.flux.instance import FluxInstance
from repro.simkernel import PeriodicTimer


class ClusterPowerTrace:
    """Periodic recorder of per-node and cluster power."""

    def __init__(
        self,
        instance: FluxInstance,
        interval_s: float = 2.0,
        ranks: Optional[Sequence[int]] = None,
    ) -> None:
        self.instance = instance
        self.interval_s = float(interval_s)
        self.ranks = list(ranks) if ranks is not None else list(range(instance.n_nodes))
        self.times: List[float] = []
        #: hostname -> list of node power samples (aligned with times).
        self.node_series: Dict[str, List[float]] = {
            instance.nodes[r].hostname: [] for r in self.ranks
        }
        #: hostname -> list of per-GPU power tuples (aligned with times).
        self.gpu_series: Dict[str, List[tuple]] = {
            instance.nodes[r].hostname: [] for r in self.ranks
        }
        self._timer = PeriodicTimer(
            instance.sim, self.interval_s, self._sample, start_delay=0.0
        )

    def _sample(self, _timer: PeriodicTimer) -> None:
        self.times.append(self.instance.sim.now)
        for r in self.ranks:
            node = self.instance.nodes[r]
            self.node_series[node.hostname].append(node.total_power_w())
            self.gpu_series[node.hostname].append(
                tuple(d.actual_w for d in node.gpu_domains)
            )

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def cluster_series(self) -> List[Tuple[float, float]]:
        """(time, summed node power) across the traced ranks."""
        out = []
        for i, t in enumerate(self.times):
            out.append((t, sum(s[i] for s in self.node_series.values())))
        return out

    def max_cluster_power_w(self) -> float:
        series = self.cluster_series()
        if not series:
            raise ValueError("no samples recorded")
        return max(p for _, p in series)

    def avg_cluster_power_w(
        self, t_start: Optional[float] = None, t_end: Optional[float] = None
    ) -> float:
        series = [
            (t, p)
            for (t, p) in self.cluster_series()
            if (t_start is None or t >= t_start) and (t_end is None or t <= t_end)
        ]
        if not series:
            raise ValueError("no samples in window")
        return sum(p for _, p in series) / len(series)

    def node_timeline(self, hostname: str) -> List[Tuple[float, float]]:
        """(time, node power) for one host — the Fig 5/6/7 series."""
        return list(zip(self.times, self.node_series[hostname]))

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Wide CSV: timestamp, one node-power column per host, cluster sum."""
        hosts = sorted(self.node_series)
        lines = ["timestamp," + ",".join(hosts) + ",cluster_w"]
        for i, t in enumerate(self.times):
            vals = [self.node_series[h][i] for h in hosts]
            lines.append(
                f"{t:.3f},"
                + ",".join(f"{v:.3f}" for v in vals)
                + f",{sum(vals):.3f}"
            )
        return "\n".join(lines) + "\n"

    def write_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv())
