"""Energy accounting.

The paper's metrics: execution time, maximum node power usage, average
node power, and average per-node energy (kJ). Exact values come from
the AppRun's piecewise-constant integration; telemetry-derived values
(trapezoidal over 2 s samples) are what a real deployment would see and
are used by the telemetry experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.apps.run import AppRun


def integrate_energy_j(series: Sequence[Tuple[float, float]]) -> float:
    """Trapezoidal energy (J) from a (timestamp, watts) series."""
    if len(series) < 2:
        return 0.0
    total = 0.0
    for (t0, p0), (t1, p1) in zip(series, series[1:]):
        if t1 < t0:
            raise ValueError("series timestamps must be nondecreasing")
        total += 0.5 * (p0 + p1) * (t1 - t0)
    return total


@dataclass(frozen=True)
class JobMetrics:
    """The per-job row of Table IV."""

    app: str
    nnodes: int
    runtime_s: float
    max_node_power_w: float
    avg_node_power_w: float
    avg_node_energy_kj: float

    @staticmethod
    def header() -> str:
        return (
            f"{'app':<12} {'nodes':>5} {'time(s)':>9} "
            f"{'maxW':>8} {'avgW':>8} {'E/node(kJ)':>11}"
        )

    def row(self) -> str:
        return (
            f"{self.app:<12} {self.nnodes:>5} {self.runtime_s:>9.1f} "
            f"{self.max_node_power_w:>8.0f} {self.avg_node_power_w:>8.0f} "
            f"{self.avg_node_energy_kj:>11.1f}"
        )


def job_metrics(run: AppRun) -> JobMetrics:
    """Extract the paper's metrics from a completed AppRun."""
    if not run.finished:
        raise ValueError("job has not finished")
    return JobMetrics(
        app=run.profile.name,
        nnodes=len(run.nodes),
        runtime_s=float(run.runtime_s),
        max_node_power_w=run.max_node_power_w,
        avg_node_power_w=float(run.avg_node_power_w),
        avg_node_energy_kj=run.avg_node_energy_j / 1e3,
    )


def combined_energy_kj(metrics: Iterable[JobMetrics]) -> float:
    """Total energy across jobs: sum over jobs of nodes * per-node energy."""
    return sum(m.avg_node_energy_kj * m.nnodes for m in metrics)
