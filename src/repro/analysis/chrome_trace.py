"""Chrome-trace export of the telemetry trace ring.

Converts :class:`~repro.telemetry.tracing.TraceEvent` records into the
Trace Event Format consumed by ``chrome://tracing`` / Perfetto: one
``"X"`` (complete) event per record, with the broker rank as the thread
id so each node gets its own swim lane and the subsystem category as
the color key.

Timestamps in the JSON are microseconds (the format's unit); the exact
simulated seconds are carried in each event's ``args`` so a re-import
(:func:`events_from_chrome`) loses no precision — the round-trip the
telemetry tests pin.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.telemetry.tracing import TraceEvent, TraceRecorder

EventsOrRecorder = Union[TraceRecorder, Iterable[TraceEvent]]


def _events(source: EventsOrRecorder) -> List[TraceEvent]:
    if isinstance(source, TraceRecorder):
        return source.events()
    return list(source)


def chrome_trace_dict(source: EventsOrRecorder) -> Dict[str, Any]:
    """The trace as a Trace-Event-Format dict (``{"traceEvents": [...]}``)."""
    trace_events = []
    for ev in _events(source):
        trace_events.append({
            "name": ev.name,
            "cat": ev.category,
            "ph": "X",
            "ts": ev.ts_s * 1e6,
            "dur": ev.dur_s * 1e6,
            "pid": 0,
            "tid": ev.rank if ev.rank is not None else -1,
            "args": {
                **ev.attrs,
                "_kind": ev.kind,
                "_ts_s": ev.ts_s,
                "_dur_s": ev.dur_s,
            },
        })
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.telemetry", "clock": "simulated seconds"},
    }


def to_chrome_trace_json(source: EventsOrRecorder, indent: Optional[int] = None) -> str:
    """Serialise the trace to a chrome://tracing JSON document."""
    return json.dumps(chrome_trace_dict(source), indent=indent)


def write_chrome_trace(path: str, source: EventsOrRecorder) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    d = chrome_trace_dict(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(d, fh)
    return len(d["traceEvents"])


def events_from_chrome(doc: Union[str, Dict[str, Any]]) -> List[TraceEvent]:
    """Rebuild :class:`TraceEvent` records from a chrome-trace document.

    Inverse of :func:`chrome_trace_dict` for documents it produced (the
    exact sim-time floats ride in ``args``); tolerant of hand-edited
    documents missing those keys, falling back to the µs fields.
    """
    if isinstance(doc, str):
        doc = json.loads(doc)
    out: List[TraceEvent] = []
    for raw in doc.get("traceEvents", []):
        args = dict(raw.get("args", {}))
        kind = args.pop("_kind", "span")
        ts_s = args.pop("_ts_s", raw.get("ts", 0.0) / 1e6)
        dur_s = args.pop("_dur_s", raw.get("dur", 0.0) / 1e6)
        tid = raw.get("tid", -1)
        out.append(TraceEvent(
            name=raw.get("name", ""),
            category=raw.get("cat", ""),
            ts_s=ts_s,
            dur_s=dur_s,
            rank=None if tid == -1 else tid,
            kind=kind,
            attrs=args,
        ))
    return out
