"""repro — reproduction of "Vendor-neutral and Production-grade Job
Power Management in High Performance Computing" (SC 2024).

The package implements the paper's two Flux modules —
``flux-power-monitor`` (job-level power telemetry) and
``flux-power-manager`` (hierarchical static/dynamic power capping with
proportional sharing and the FFT-based FPP policy) — together with
every substrate they need, simulated: a Flux-like broker/TBON/job
framework, Variorum-style vendor-neutral power APIs, and calibrated
hardware + application models of the Lassen and Tioga systems.

Quick start::

    from repro import PowerManagedCluster, Jobspec, ManagerConfig

    cluster = PowerManagedCluster(platform="lassen", n_nodes=8, seed=1,
                                  manager_config=ManagerConfig(
                                      global_cap_w=9600.0,
                                      policy="fpp",
                                      static_node_cap_w=1950.0))
    job = cluster.submit(Jobspec(app="gemm", nnodes=6))
    cluster.run_until_complete()
    print(cluster.metrics(job.jobid))
    print(cluster.telemetry(job.jobid).to_csv())
"""

from repro.cluster import PowerManagedCluster
from repro.faults import FaultEvent, FaultInjector, FaultPlan, LinkFaults
from repro.flux.instance import FluxInstance
from repro.flux.module import RetryConfig
from repro.flux.jobspec import Jobspec, JobRecord, JobState
from repro.flux.user_instance import UserInstance, spawn_user_instance
from repro.manager.cluster_manager import ManagerConfig
from repro.manager.module import attach_manager
from repro.manager.policies import (
    FPPParams,
    FPPPolicy,
    HistoryPolicy,
    PowerPolicy,
    ProportionalPolicy,
    StaticPolicy,
)
from repro.monitor.module import attach_monitor
from repro.telemetry import Telemetry, telemetry_of

__version__ = "0.1.0"

__all__ = [
    "PowerManagedCluster",
    "FluxInstance",
    "UserInstance",
    "spawn_user_instance",
    "Jobspec",
    "JobRecord",
    "JobState",
    "ManagerConfig",
    "PowerPolicy",
    "StaticPolicy",
    "ProportionalPolicy",
    "FPPPolicy",
    "FPPParams",
    "HistoryPolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LinkFaults",
    "RetryConfig",
    "attach_manager",
    "attach_monitor",
    "Telemetry",
    "telemetry_of",
    "__version__",
]
