"""Structured tracing: ring-buffered spans and instants on sim time.

The recorder keeps the most recent ``capacity`` events in a ring —
bounded memory for arbitrarily long runs, mirroring the monitor's own
circular sample buffer. Overflow evicts oldest-first and is counted in
:attr:`TraceRecorder.dropped`, so an export can say how much history it
is missing.

Timestamps are **simulated seconds** (the registry clock), so a trace
from a seeded run is itself deterministic. Most handler spans have zero
sim-time duration (callbacks are instantaneous in the discrete-event
model); spans with real extent are the cross-time ones — RPC round
trips, aggregation fan-ins — recorded via :meth:`TraceRecorder.span`
from an explicit start time.

Export to ``chrome://tracing`` JSON lives in
:mod:`repro.analysis.chrome_trace`.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded span or instant.

    Attributes
    ----------
    name:
        Event name, dot-separated by convention (``fpp.control_tick``).
    category:
        Subsystem: ``"flux"``, ``"monitor"`` or ``"manager"``.
    ts_s:
        Start time in simulated seconds.
    dur_s:
        Duration in simulated seconds (0.0 for instants).
    rank:
        Broker rank the event happened on, or ``None``.
    kind:
        ``"span"`` or ``"instant"``.
    attrs:
        Free-form JSON-compatible details (jobid, topic, ...).
    """

    name: str
    category: str
    ts_s: float
    dur_s: float = 0.0
    rank: Optional[int] = None
    kind: str = "span"
    attrs: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Fixed-capacity ring of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = 8192,
                 clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.clock = clock or (lambda: 0.0)
        self.enabled = enabled
        self._ring: deque = deque(maxlen=self.capacity)
        self.total_recorded = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, event: TraceEvent) -> None:
        """Append one event (oldest evicted when the ring is full)."""
        if not self.enabled:
            return
        self._ring.append(event)
        self.total_recorded += 1

    def instant(self, name: str, category: str, rank: Optional[int] = None,
                **attrs: Any) -> None:
        """Record a zero-duration event at the current sim time."""
        self.record(TraceEvent(
            name=name, category=category, ts_s=self.clock(), dur_s=0.0,
            rank=rank, kind="instant", attrs=attrs,
        ))

    def span(self, name: str, category: str, start_s: float,
             end_s: Optional[float] = None, rank: Optional[int] = None,
             **attrs: Any) -> None:
        """Record a span from an explicit start time (cross-time work).

        ``end_s`` defaults to the current sim time — the pattern for
        RPC round trips: stamp ``start_s`` at send, call this from the
        response path.
        """
        end = self.clock() if end_s is None else end_s
        self.record(TraceEvent(
            name=name, category=category, ts_s=start_s,
            dur_s=max(0.0, end - start_s), rank=rank, kind="span", attrs=attrs,
        ))

    @contextmanager
    def trace_span(self, name: str, category: str,
                   rank: Optional[int] = None, **attrs: Any) -> Iterator[None]:
        """Context manager recording a span around the enclosed code.

        Duration is simulated time elapsed inside the block — zero for
        a plain handler, positive if the block advances the simulator.
        """
        start = self.clock()
        try:
            yield
        finally:
            self.span(name, category, start, rank=rank, **attrs)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Events evicted because the ring wrapped."""
        return self.total_recorded - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        """Drop retained events; ``total_recorded`` is preserved."""
        self._ring.clear()

    def render(self, last: Optional[int] = None) -> str:
        """Terminal-friendly dump of the newest ``last`` events."""
        events = self.events()
        if last is not None:
            events = events[-last:]
        lines = []
        for ev in events:
            where = f" rank={ev.rank}" if ev.rank is not None else ""
            extra = f" {ev.attrs}" if ev.attrs else ""
            lines.append(
                f"t={ev.ts_s:12.6f}s +{ev.dur_s:.6f}s "
                f"[{ev.category}] {ev.name}{where}{extra}"
            )
        if self.dropped:
            lines.append(f"({self.dropped} older events evicted)")
        return "\n".join(lines)
