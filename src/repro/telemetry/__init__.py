"""repro.telemetry — the framework's own observability layer.

The paper argues a power-management framework is only production-grade
when its *own* behaviour is measurable (Section IV-B quantifies the
monitor at 0.4 % average overhead). This package gives the reproduction
the same property: every hot path — TBON RPC, monitor sampling and
aggregation, the cluster→job→node cap chain, FPP's FFT iterations —
reports into one hub with three parts:

* :class:`~repro.telemetry.metrics.MetricsRegistry` — counters, gauges
  and fixed-bucket histograms with labeled series, Prometheus-text and
  JSON export;
* :class:`~repro.telemetry.tracing.TraceRecorder` — a ring buffer of
  span/instant records exportable to ``chrome://tracing`` (see
  :mod:`repro.analysis.chrome_trace`);
* :class:`~repro.telemetry.overhead.OverheadAccountant` — attributes
  simulated work to monitor/manager/application and reproduces the
  paper's overhead-percentage table.

Everything runs on **simulation time** and is a pure observer: no
metric mutation schedules events or draws randomness, so a run with
telemetry enabled produces byte-identical power timelines to one with
it disabled (pinned by ``tests/test_telemetry_integration.py``).

One hub exists per simulator; components reach it with::

    from repro.telemetry import telemetry_of
    tel = telemetry_of(sim)                      # shared hub
    tel.metrics.counter("flux_rpc_requests_total",
                        labels={"topic": topic}).inc()
    with tel.tracer.trace_span("fpp.control_tick", "manager", rank=3):
        ...

The full metric catalog is documented in docs/observability.md and a
consistency test fails the build when an emitted metric is missing
from it.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.telemetry.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS_S,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.overhead import (
    AGGREGATION_COST_PER_NODE_S,
    FPP_FFT_COST_S,
    MANAGER_RECOMPUTE_COST_PER_JOB_S,
    MANAGER_TRACK_COST_S,
    PAPER_OVERHEAD_PCT,
    OverheadAccountant,
    OverheadReport,
)
from repro.telemetry.tracing import TraceEvent, TraceRecorder

__all__ = [
    "Telemetry",
    "telemetry_of",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS_S",
    "TraceEvent",
    "TraceRecorder",
    "OverheadAccountant",
    "OverheadReport",
    "PAPER_OVERHEAD_PCT",
    "AGGREGATION_COST_PER_NODE_S",
    "MANAGER_TRACK_COST_S",
    "MANAGER_RECOMPUTE_COST_PER_JOB_S",
    "FPP_FFT_COST_S",
]


class Telemetry:
    """The per-simulation observability hub.

    Bundles a metrics registry, a trace recorder and an overhead
    accountant behind one ``enabled`` switch. The clock must be the
    owning simulator's ``now`` (simulation time — the determinism
    contract; see docs/architecture.md).
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True, trace_capacity: int = 8192) -> None:
        self.clock = clock or (lambda: 0.0)
        self.metrics = MetricsRegistry(clock=self.clock, enabled=enabled)
        self.tracer = TraceRecorder(
            capacity=trace_capacity, clock=self.clock, enabled=enabled
        )
        self.accountant = OverheadAccountant(
            registry=self.metrics, enabled=enabled
        )

    @property
    def enabled(self) -> bool:
        return self.metrics.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self.metrics.enabled = bool(value)
        self.tracer.enabled = bool(value)
        self.accountant.enabled = bool(value)

    def reset(self) -> None:
        """Zero metrics, drop traces, clear charges (registrations stay)."""
        self.metrics.reset()
        self.tracer.clear()
        self.accountant.reset()


def telemetry_of(sim) -> Telemetry:
    """The hub attached to ``sim``, creating (and attaching) one if absent.

    Every broker and module of an instance shares the simulator, hence
    the hub — cluster-wide counters fall out for free. Attachment is a
    duck-typed attribute so :mod:`repro.simkernel` never needs to know
    telemetry exists.
    """
    tel = getattr(sim, "telemetry", None)
    if tel is None:
        tel = Telemetry(clock=lambda: sim.now)
        sim.telemetry = tel
    return tel
