"""Overhead accounting: what the framework itself costs.

The paper's production claim is quantitative: monitoring costs 0.4 % of
application performance on average (1.2 % on Lassen, 0.04 % on Tioga).
The accountant reproduces that bookkeeping for the simulated stack. It
attributes *simulated CPU seconds* to one of three categories:

* ``monitor`` — Variorum reads + ring appends (the per-platform sample
  cost from :mod:`repro.monitor.overhead`) and root-agent aggregation;
* ``manager`` — node power tracking, share recomputation, and FPP's FFT
  control iterations;
* ``application`` — node-seconds spent executing jobs (filled in at
  report time from the instance's app runs).

Percentages are reported against *cluster capacity* — ``elapsed ×
n_nodes`` node-seconds — which is exactly the fraction of each node's
compute the framework consumes, and what
:func:`repro.monitor.overhead.sampling_overhead_fraction` feeds into
the application slowdown model. The two views agree by construction:
the accountant's monitor percentage equals the progress penalty the
apps actually experienced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry, repeat_add

#: The paper's Section IV-B overhead measurements (percent).
PAPER_OVERHEAD_PCT = {"average": 0.4, "lassen": 1.2, "tioga": 0.04}

#: Simulated cost charged per root-agent aggregation, per node queried
#: (response handling + CSV assembly amortised).
AGGREGATION_COST_PER_NODE_S = 0.2e-3

#: Simulated cost of one node-manager tracking-loop iteration.
MANAGER_TRACK_COST_S = 0.3e-3

#: Simulated cost of one cluster-level share recomputation, per job.
MANAGER_RECOMPUTE_COST_PER_JOB_S = 0.1e-3

#: Simulated cost of one FFT period estimation (a ~45-point rFFT).
FPP_FFT_COST_S = 2.0e-3


class OverheadAccountant:
    """Accumulates attributed simulated work by category.

    Charges are mirrored into the ``overhead_seconds_total{category=}``
    counter when a registry is attached, so exports carry the same
    numbers the report prints.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 enabled: bool = True) -> None:
        self.registry = registry
        self.enabled = enabled
        self._seconds: Dict[str, float] = {}
        # charge() is on the per-sample hot path; cache the counter
        # handle per category instead of a registry lookup per charge.
        self._counters: Dict[str, object] = {}
        #: Callbacks run before a charge lands, so deferred chargers
        #: (the columnar store batches monitor charges per tick) can
        #: settle earlier work first and keep accumulation order exact.
        self._pre_charge_hooks: List = []
        self._in_hook = False

    def add_pre_charge_hook(self, hook) -> None:
        """Run ``hook(category)`` before each charge is applied.

        Hooks may themselves call :meth:`charge` (to replay deferred
        work); re-entrant charges skip the hooks.
        """
        if hook not in self._pre_charge_hooks:
            self._pre_charge_hooks.append(hook)

    def charge(self, category: str, seconds: float) -> None:
        """Attribute ``seconds`` of simulated work to ``category``."""
        if not self.enabled:
            return
        if self._pre_charge_hooks and not self._in_hook:
            self._in_hook = True
            try:
                for hook in list(self._pre_charge_hooks):
                    hook(category)
            finally:
                self._in_hook = False
        if seconds < 0:
            raise ValueError(f"cannot charge negative time ({seconds})")
        self._seconds[category] = self._seconds.get(category, 0.0) + seconds
        if self.registry is not None:
            counter = self._counters.get(category)
            if counter is None:
                counter = self.registry.counter(
                    "overhead_seconds_total",
                    labels={"category": category},
                    help="simulated CPU seconds attributed to framework category",
                )
                self._counters[category] = counter
            counter.inc(seconds)

    def charge_repeated(self, category: str, seconds: float, count: int) -> None:
        """Attribute ``count`` identical charges in bulk, bit-exactly.

        The accumulator (and its mirrored counter) end up with exactly
        the value ``count`` sequential :meth:`charge` calls would
        produce — :func:`repro.telemetry.metrics.repeat_add` preserves
        the left-to-right float order — without per-call overhead; the
        columnar store's deferred replay drains through this. Hooks
        run once up front: a drain hook is a no-op after its first
        call when no sim work happens between the identical charges.
        """
        if not self.enabled or count <= 0:
            return
        if seconds < 0:
            raise ValueError(f"cannot charge negative time ({seconds})")
        if self._pre_charge_hooks and not self._in_hook:
            self._in_hook = True
            try:
                for hook in list(self._pre_charge_hooks):
                    hook(category)
            finally:
                self._in_hook = False
        self._seconds[category] = repeat_add(
            self._seconds.get(category, 0.0), seconds, count
        )
        if self.registry is not None:
            counter = self._counters.get(category)
            if counter is None:
                counter = self.registry.counter(
                    "overhead_seconds_total",
                    labels={"category": category},
                    help="simulated CPU seconds attributed to framework category",
                )
                self._counters[category] = counter
            counter.inc_repeated(seconds, count)

    def seconds(self, category: str) -> float:
        """Total simulated seconds charged to ``category`` so far."""
        return self._seconds.get(category, 0.0)

    def categories(self) -> List[str]:
        return sorted(self._seconds)

    def reset(self) -> None:
        self._seconds.clear()


@dataclass
class OverheadReport:
    """The Table-style overhead breakdown for one run.

    Build via :meth:`repro.cluster.PowerManagedCluster.overhead_report`;
    ``category_seconds`` holds monitor/manager charges from the
    accountant plus application node-seconds computed from app runs.
    """

    platform: str
    elapsed_s: float
    n_nodes: int
    category_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def capacity_node_s(self) -> float:
        """Total node-seconds of compute capacity over the run."""
        return self.elapsed_s * self.n_nodes

    def pct(self, category: str) -> float:
        """Category cost as a percentage of cluster capacity."""
        cap = self.capacity_node_s
        if cap <= 0:
            return 0.0
        return 100.0 * self.category_seconds.get(category, 0.0) / cap

    @property
    def monitor_overhead_pct(self) -> float:
        """The headline number to compare against the paper's 0.4 %."""
        return self.pct("monitor")

    def paper_reference_pct(self) -> Optional[float]:
        """The paper's measured overhead for this platform, if any."""
        return PAPER_OVERHEAD_PCT.get(self.platform)

    def render(self) -> str:
        """Paper-style overhead table with the reference claim inline."""
        lines = [
            f"overhead accounting — {self.platform}, {self.n_nodes} nodes, "
            f"{self.elapsed_s:.1f} s simulated "
            f"({self.capacity_node_s:.1f} node-s capacity)",
            f"{'category':<14} {'node-s':>12} {'% capacity':>11}",
        ]
        for cat in sorted(self.category_seconds):
            lines.append(
                f"{cat:<14} {self.category_seconds[cat]:>12.3f} "
                f"{self.pct(cat):>11.3f}"
            )
        ref = self.paper_reference_pct()
        ref_str = f"{ref:.2f} % on {self.platform}, " if ref is not None else ""
        lines.append(
            f"paper reference: monitor overhead {ref_str}"
            f"{PAPER_OVERHEAD_PCT['lassen']:.1f} % Lassen / "
            f"{PAPER_OVERHEAD_PCT['tioga']:.2f} % Tioga / "
            f"{PAPER_OVERHEAD_PCT['average']:.1f} % average"
        )
        return "\n".join(lines)
