"""Metrics primitives: counters, gauges, histograms, and their registry.

Dependency-free (stdlib only) so every layer — simkernel upward — may
be instrumented without import cycles. Three deliberate departures from
a wall-clock metrics library:

* **Simulation time.** The registry's clock reads ``Simulator.now``
  (injected as a callable), never the wall clock, so instrumented runs
  stay bit-reproducible; see docs/architecture.md ("Determinism").
* **Pure observation.** Mutating a metric never schedules simulator
  events, draws randomness, or touches model state — enabling or
  disabling telemetry cannot change a simulated power timeline.
* **Fixed histogram buckets.** Bucket boundaries are declared at first
  registration and immutable afterwards, so exports from different
  runs are always comparable.

Series identity is ``(name, sorted(labels))``: asking the registry for
the same name and labels returns the *same* object, so call sites never
need to cache handles.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Default histogram boundaries (seconds), tuned for TBON/RPC latencies:
#: one-hop control messages sit around 100 µs, whole-machine telemetry
#: fan-ins reach tens of milliseconds, cap-chain propagation a few ms.
DEFAULT_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5,
)

LabelDict = Dict[str, str]
_LabelKey = Tuple[Tuple[str, str], ...]


def repeat_add(base: float, amount: float, count: int) -> float:
    """The value of ``base`` after ``count`` sequential ``+= amount``.

    ``np.add.accumulate`` is defined as strict left-to-right IEEE
    accumulation (it must produce every prefix), so the result is
    bit-identical to the Python loop at a fraction of the cost — the
    columnar store replays millions of deferred constant charges
    through this. Chunked to bound the scratch array; falls back to
    the plain loop without numpy.
    """
    if count <= 0:
        return base
    try:
        import numpy as np
    except ImportError:  # pragma: no cover - numpy ships in the image
        total = base
        for _ in range(count):
            total += amount
        return total
    total = base
    remaining = count
    chunk = 1 << 20
    while remaining:
        k = min(remaining, chunk)
        arr = np.empty(k + 1, dtype=np.float64)
        arr[0] = total
        arr[1:] = amount
        total = float(np.add.accumulate(arr)[-1])
        remaining -= k
    return total


def _label_key(labels: Optional[LabelDict]) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


class Metric:
    """Base class: one labeled series of one registered metric family."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, key: _LabelKey) -> None:
        self._registry = registry
        self.name = name
        self._key = key
        #: Mirror of ``registry.enabled``, kept in sync by its setter —
        #: a plain attribute read on every inc/set/observe instead of a
        #: property hop through the registry.
        self._on = registry.enabled

    @property
    def labels(self) -> LabelDict:
        """The series' labels as a plain dict."""
        return dict(self._key)


class Counter(Metric):
    """A monotonically increasing count (resets only via the registry)."""

    kind = "counter"

    def __init__(self, registry, name, key) -> None:
        super().__init__(registry, name, key)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if not self._on:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self._value += amount

    def inc_repeated(self, amount: float, count: int) -> None:
        """``count`` sequential :meth:`inc` calls, bit-exactly, in bulk."""
        if not self._on or count <= 0:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self._value = repeat_add(self._value, amount, count)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0

    def _snapshot(self) -> Dict[str, Any]:
        return {"labels": self.labels, "value": self._value}


class Gauge(Metric):
    """A value that can go up and down (occupancy, current share, ...)."""

    kind = "gauge"

    def __init__(self, registry, name, key) -> None:
        super().__init__(registry, name, key)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._on:
            return
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._on:
            return
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0

    def _snapshot(self) -> Dict[str, Any]:
        return {"labels": self.labels, "value": self._value}


class Histogram(Metric):
    """Cumulative-bucket histogram with fixed boundaries.

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the tail. ``sum``/``count`` give the mean; the boundaries are fixed
    at family registration so exports from different runs line up.
    """

    kind = "histogram"

    def __init__(self, registry, name, key, buckets: Tuple[float, ...]) -> None:
        super().__init__(registry, name, key)
        self.buckets = buckets
        self._bucket_counts = [0] * (len(buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        if not self._on:
            return
        v = float(value)
        self._sum += v
        self._count += 1
        for i, bound in enumerate(self.buckets):
            if v <= bound:
                self._bucket_counts[i] += 1
                return
        self._bucket_counts[-1] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> Optional[float]:
        return self._sum / self._count if self._count else None

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, ending with +Inf."""
        out = []
        running = 0
        for bound, n in zip(self.buckets, self._bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, running + self._bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-boundary estimate of the ``q`` quantile (0..1)."""
        if not self._count:
            return None
        target = q * self._count
        for bound, cum in self.cumulative_buckets():
            if cum >= target:
                return bound
        return math.inf  # pragma: no cover - +Inf bucket always reaches count

    def _reset(self) -> None:
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0

    def _snapshot(self) -> Dict[str, Any]:
        return {
            "labels": self.labels,
            "sum": self._sum,
            "count": self._count,
            "buckets": [
                [b if math.isfinite(b) else "+Inf", c]
                for b, c in self.cumulative_buckets()
            ],
        }


class MetricsRegistry:
    """Owner of every metric family and labeled series.

    Parameters
    ----------
    clock:
        Callable returning the current time (simulated seconds). Stored
        for exporters that stamp snapshots; never the wall clock.
    enabled:
        When False, every mutation is a no-op (the telemetry-off case);
        lookups still return real objects so call sites stay branchless.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled: bool = True) -> None:
        self.clock = clock or (lambda: 0.0)
        self._enabled = bool(enabled)
        #: family name -> (kind, help, buckets-or-None)
        self._families: Dict[str, Tuple[str, str, Optional[Tuple[float, ...]]]] = {}
        #: (name, label key) -> Metric
        self._series: Dict[Tuple[str, _LabelKey], Metric] = {}
        #: Callbacks run before any export so deferred writers (the
        #: columnar store) can settle their gauges/counters first.
        self._flush_hooks: List[Callable[[], None]] = []
        self._flushing = False

    def add_flush_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` before every snapshot/export.

        Lazily-maintained sources (e.g. the columnar node store, which
        batches gauge updates per sampler tick) register here so reads
        through the exporters always see settled values. Hooks must be
        idempotent; re-entrant exports during a hook skip flushing.
        """
        if hook not in self._flush_hooks:
            self._flush_hooks.append(hook)

    def flush(self) -> None:
        """Run registered flush hooks (no-op when re-entered)."""
        if self._flushing or not self._flush_hooks:
            return
        self._flushing = True
        try:
            for hook in list(self._flush_hooks):
                hook()
        finally:
            self._flushing = False

    @property
    def enabled(self) -> bool:
        """When False, every mutation is a no-op (telemetry off)."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        value = bool(value)
        self._enabled = value
        # Each series mirrors the flag so its hot path is a plain
        # attribute read; toggles are rare, series mutations are not.
        for metric in self._series.values():
            metric._on = value

    # ------------------------------------------------------------------
    # Registration / lookup
    # ------------------------------------------------------------------
    def _get(self, cls, name: str, labels: Optional[LabelDict], help: str,
             buckets: Optional[Tuple[float, ...]] = None) -> Metric:
        family = self._families.get(name)
        if family is None:
            self._families[name] = (cls.kind, help, buckets)
        else:
            if family[0] != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family[0]}, "
                    f"requested {cls.kind}"
                )
            if buckets is not None and family[2] is not None and buckets != family[2]:
                raise ValueError(f"metric {name!r} re-registered with new buckets")
            if help and not family[1]:
                self._families[name] = (family[0], help, family[2])
        key = _label_key(labels)
        series = self._series.get((name, key))
        if series is None:
            if cls is Histogram:
                series = Histogram(
                    self, name, key,
                    buckets or self._families[name][2] or DEFAULT_LATENCY_BUCKETS_S,
                )
            else:
                series = cls(self, name, key)
            self._series[(name, key)] = series
        return series

    def counter(self, name: str, labels: Optional[LabelDict] = None,
                help: str = "") -> Counter:
        """Return (registering if needed) the counter series."""
        return self._get(Counter, name, labels, help)  # type: ignore[return-value]

    def gauge(self, name: str, labels: Optional[LabelDict] = None,
              help: str = "") -> Gauge:
        """Return (registering if needed) the gauge series."""
        return self._get(Gauge, name, labels, help)  # type: ignore[return-value]

    def histogram(self, name: str, labels: Optional[LabelDict] = None,
                  help: str = "",
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        """Return (registering if needed) the histogram series."""
        b = tuple(sorted(float(x) for x in buckets)) if buckets is not None else None
        return self._get(Histogram, name, labels, help, b)  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        """Registered family names, sorted."""
        return sorted(self._families)

    def series_for(self, name: str) -> List[Metric]:
        """Every labeled series of one family, in label order."""
        return [m for (n, _k), m in sorted(self._series.items()) if n == name]

    def reset(self) -> None:
        """Zero every series; registrations and bucket layouts survive."""
        for metric in self._series.values():
            metric._reset()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-compatible dump of every family and series."""
        self.flush()
        out: Dict[str, Any] = {"time_s": self.clock(), "metrics": {}}
        for name in self.names():
            kind, help, _buckets = self._families[name]
            out["metrics"][name] = {
                "type": kind,
                "help": help,
                "series": [m._snapshot() for m in self.series_for(name)],
            }
        return out

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        """Snapshot as a JSON document (see :meth:`from_json`)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> Dict[str, Any]:
        """Parse :meth:`to_json` output back into a snapshot dict."""
        return json.loads(text)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (HELP/TYPE + samples)."""
        self.flush()
        lines: List[str] = []
        for name in self.names():
            kind, help, _buckets = self._families[name]
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for m in self.series_for(name):
                key = m._key
                if isinstance(m, Histogram):
                    for bound, cum in m.cumulative_buckets():
                        le = "+Inf" if math.isinf(bound) else repr(bound)
                        bkey = key + (("le", le),)
                        lines.append(
                            f"{name}_bucket{_render_labels(bkey)} {cum}"
                        )
                    lines.append(f"{name}_sum{_render_labels(key)} {m.sum}")
                    lines.append(f"{name}_count{_render_labels(key)} {m.count}")
                else:
                    lines.append(f"{name}{_render_labels(key)} {m.value}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def parse_prometheus(text: str) -> Dict[str, float]:
        """Parse exposition text into ``{series_signature: value}``.

        The signature is ``name{k="v",...}`` with labels sorted — the
        exact strings :meth:`to_prometheus` emits — so a parse of the
        export compares equal sample-for-sample (round-trip check).
        """
        out: Dict[str, float] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            sig, _, value = line.rpartition(" ")
            out[sig] = float(value)
        return out

    # ------------------------------------------------------------------
    # Human-readable summary
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Terminal-friendly summary (the ``repro observe`` output)."""
        lines: List[str] = []
        for name in self.names():
            kind, help, _buckets = self._families[name]
            lines.append(f"{name} ({kind}){': ' + help if help else ''}")
            for m in self.series_for(name):
                label_str = _render_labels(m._key) or "-"
                if isinstance(m, Histogram):
                    mean = m.mean
                    p50, p99 = m.quantile(0.5), m.quantile(0.99)
                    lines.append(
                        f"  {label_str:<40} count={m.count} sum={m.sum:.6g}"
                        + (
                            f" mean={mean:.6g} p50<={p50:.6g} p99<={p99:.6g}"
                            if m.count
                            else ""
                        )
                    )
                else:
                    lines.append(f"  {label_str:<40} {m.value:.6g}")
        return "\n".join(lines)
