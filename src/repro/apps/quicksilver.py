"""Quicksilver: Monte Carlo transport proxy (weak, periodic phases).

Paper inputs (Table I): base mesh size 16, 300 particles per mesh,
``nsteps=40``; task partition derived from rank count. Section IV-C/D
run it as a 2-node job with a 10x problem size.

Calibration targets
-------------------
* Fig 1: pronounced periodic phase behaviour — short high-power bursts
  over a low-power baseline (the one application with clear phases).
* Table II (Lassen): 12.78 s / 546.99 W at 4 nodes, 13.63 s / 559.64 W
  at 8 (weak: flat).
* Table IV (Lassen, 2-node, 10x size): unconstrained 348 s, max node
  power 952 W, 177 kJ avg node energy (=> ~509 W average); IBM default
  1200 W cap: 359 s (only 3% slowdown — the cap-insensitive app).
* Table II (Tioga): 102.03 s at 4 nodes versus an expected ~25 s — the
  paper flags the HIP variant as anomalous (~8x slow, under
  investigation) and skips the energy comparison; we reproduce the
  anomaly via ``runtime_scale`` and a distinct busier phase profile
  (915.82 W measured CPU+OAM average).
"""

from __future__ import annotations

from repro.apps.base import AppProfile, PhaseProfile, PlatformDemand

QUICKSILVER_INPUTS = (
    "base mesh 16, 300 particles/mesh, nsteps=40; -pt per rank count"
)

#: The HIP-variant anomaly factor observed on Tioga (102.03 s vs 12.78 s).
TIOGA_HIP_ANOMALY = 102.03 / 12.78


def quicksilver_profile() -> AppProfile:
    """Build the calibrated Quicksilver profile."""
    return AppProfile(
        name="quicksilver",
        scaling="weak",
        launcher="mpi",
        base_runtime_s=13.0,
        ref_nodes=4,
        gpu_frac=0.55,
        cpu_frac=0.30,
        # Fitted to Table IV: only ~3% slowdown under the IBM 1200 W
        # node cap (100 W GPU caps) — the cap-insensitive application.
        beta_gpu=1.0,
        gamma_gpu=1.7,
        # 20 s cycle: 3 s compute burst, 17 s tracking/communication tail.
        phases=PhaseProfile(period_s=20.0, duty=0.15, gpu_depth=0.97, cpu_depth=0.88),
        demand={
            # peak dyn = 2*80 + 40 + 4*88 = 552 W -> 952 W max node;
            # phase-averaged ~509 W (Table IV energy).
            "lassen": PlatformDemand(
                cpu_dyn_w=80.0, mem_dyn_w=40.0, gpu_dyn_w=88.0, runtime_scale=1.0
            ),
            # HIP variant: ~8x runtime, busier power profile.
            "tioga": PlatformDemand(
                cpu_dyn_w=160.0,
                mem_dyn_w=30.0,
                gpu_dyn_w=64.0,
                runtime_scale=TIOGA_HIP_ANOMALY,
                phase=PhaseProfile(
                    period_s=20.0, duty=0.50, gpu_depth=0.50, cpu_depth=0.50
                ),
            ),
            # MI300A APU port: branchy tracking keeps the packages well
            # below their envelope.
            "elcapitan": PlatformDemand(
                cpu_dyn_w=0.0, mem_dyn_w=0.0, gpu_dyn_w=300.0, runtime_scale=0.8
            ),
            "generic": PlatformDemand(
                cpu_dyn_w=100.0, mem_dyn_w=30.0, gpu_dyn_w=70.0, runtime_scale=1.5
            ),
        },
        inputs=QUICKSILVER_INPUTS,
    )
