"""HACC: the checkpointing cosmology proxy.

Not part of the source paper's Table I mix — added for the policy-zoo
work, modelled on "Application Checkpoint and Power Study on Large
Scale Systems" (PAPERS.md), which measured HACC's defensive-checkpoint
power signature at scale: long, nearly flat GPU-heavy compute phases
punctuated by periodic checkpoint windows in which accelerator draw
collapses to near idle while CPU/IO draw bursts above its compute
level (state serialization + parallel file system writes).

The profile is *qualitatively* calibrated (the study publishes power
traces, not Lassen/Tioga wattages): compute phases are flat — so FPP's
period detector sees nothing to exploit between checkpoints — and all
of the exploitable structure lives in the
:class:`~repro.apps.base.CheckpointProfile`, which the checkpoint-aware
policy reads through the apps registry.
"""

from __future__ import annotations

from repro.apps.base import AppProfile, CheckpointProfile, PlatformDemand

HACC_INPUTS = "512^3 particles, defensive checkpoints every ~30 s compute"

#: The registry-visible checkpoint schedule (progress seconds).
HACC_CHECKPOINT = CheckpointProfile(
    interval_s=30.0,
    duration_s=6.0,
    gpu_drop=0.85,
    cpu_boost=1.5,
)


def hacc_profile() -> AppProfile:
    return AppProfile(
        name="hacc",
        scaling="weak",
        launcher="mpi",
        base_runtime_s=150.0,
        ref_nodes=4,
        gpu_frac=0.60,
        cpu_frac=0.25,
        beta_gpu=0.9,
        gamma_gpu=1.9,
        checkpoint=HACC_CHECKPOINT,
        demand={
            "lassen": PlatformDemand(
                cpu_dyn_w=100.0, mem_dyn_w=50.0, gpu_dyn_w=190.0
            ),
            "tioga": PlatformDemand(
                cpu_dyn_w=110.0, mem_dyn_w=45.0, gpu_dyn_w=170.0,
                runtime_scale=0.9,
            ),
            "elcapitan": PlatformDemand(
                cpu_dyn_w=0.0, mem_dyn_w=0.0, gpu_dyn_w=430.0,
                runtime_scale=0.65,
            ),
            "generic": PlatformDemand(
                cpu_dyn_w=120.0, mem_dyn_w=40.0, gpu_dyn_w=150.0,
                runtime_scale=1.2,
            ),
        },
        inputs=HACC_INPUTS,
    )
