"""LAMMPS: classical molecular dynamics (strong scaled, GPU-bound).

Paper inputs (Table I): ``-v nx 64 -v ny 64 -v nz 64``, ``newton=on``,
ML-Snap package for high GPU utilisation; compiled CUDA on Lassen, HIP
on Tioga.

Calibration targets
-------------------
* Table II (Lassen): 77.17 s / 1283.74 W avg at 4 nodes,
  46.33 s / 1155.08 W at 8 nodes. The 4→8 runtime ratio fixes the
  strong-scaling runtime exponent (0.736) and the power ratio fixes the
  per-node demand exponent (0.227).
* Table II (Tioga): 51.00 s / 1552.40 W at 4 nodes (conservative
  CPU+OAM sum), 29.67 s / 1388.99 W at 8 nodes — Tioga is ~21.5 % lower
  energy on LAMMPS despite higher power (more, faster GCDs).
* Fig 1: flat power timeline, no periodic phases.
"""

from __future__ import annotations

from repro.apps.base import AppProfile, PhaseProfile, PlatformDemand

LAMMPS_INPUTS = "-v nx 64 -v ny 64 -v nz 64 (ML-Snap, newton=on)"


def lammps_profile() -> AppProfile:
    """Build the calibrated LAMMPS profile."""
    return AppProfile(
        name="lammps",
        scaling="strong",
        launcher="mpi",
        base_runtime_s=77.17,  # Lassen, 4 nodes, Table II
        ref_nodes=4,
        strong_runtime_exp=0.736,  # 77.17/46.33 over 4->8 nodes
        strong_power_exp=0.227,  # 883.7 -> 755.1 dynamic W over 4->8
        gpu_frac=0.80,
        cpu_frac=0.12,
        beta_gpu=0.80,
        gamma_gpu=1.6,
        phases=PhaseProfile(),  # flat timeline (Fig 1)
        demand={
            # 2*120 + 60 + 4*146 = 884 dyn W -> 1283.7 W avg node (4n)
            "lassen": PlatformDemand(
                cpu_dyn_w=120.0, mem_dyn_w=60.0, gpu_dyn_w=146.0, runtime_scale=1.0
            ),
            # measured = 420 idle(meas) + 180 + 8*119 = 1552 W (4n)
            "tioga": PlatformDemand(
                cpu_dyn_w=180.0,
                mem_dyn_w=50.0,  # drawn but unmeasurable on Tioga
                gpu_dyn_w=119.0,  # per GCD
                runtime_scale=51.00 / 77.17,
            ),
            # MI300A APU: compute + HBM draw on the packages directly.
            "elcapitan": PlatformDemand(
                cpu_dyn_w=0.0, mem_dyn_w=0.0, gpu_dyn_w=470.0, runtime_scale=0.5
            ),
            "generic": PlatformDemand(
                cpu_dyn_w=150.0, mem_dyn_w=50.0, gpu_dyn_w=130.0, runtime_scale=1.3
            ),
        },
        inputs=LAMMPS_INPUTS,
    )
