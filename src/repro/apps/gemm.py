"""GEMM: generalized matrix multiply from RajaPerf (weak, compute-bound).

Paper inputs (Table I): ``--sizefact 700 -repfact 50``; Section IV-C/D
run it with *double the iteration count* as a 6-node job
(``work_scale=2``).

Calibration targets (Table IV, Lassen, 6-node job, work_scale=2)
----------------------------------------------------------------
* Unconstrained: 548 s, max node power 1523 W, avg node energy 726 kJ
  (=> ~1325 W average node power).
* IBM default node cap 1200 W (GPU caps 100 W): 1145 s, 805 kJ — the
  2.09x slowdown under a 100 W GPU cap fixes ``alpha_gpu``/``gpu_frac``.
* Static 1950 W (GPU 253 W): 564 s, 652 kJ.
* Fig 1 prose: "relatively flat power timeline" — phases are shallow
  dips at kernel-iteration boundaries; deep enough that the FFT policy
  can see the iteration period stretch under a cap (Section IV-D:
  "FPP first tries to reduce power but sees that the period doubles").
"""

from __future__ import annotations

from repro.apps.base import AppProfile, PhaseProfile, PlatformDemand

GEMM_INPUTS = "--sizefact 700 -repfact 50 (RajaPerf kernel)"


def gemm_profile() -> AppProfile:
    """Build the calibrated GEMM profile."""
    return AppProfile(
        name="gemm",
        scaling="weak",
        launcher="mpi",
        base_runtime_s=274.0,  # work_scale=2 reproduces Table IV's 548 s
        ref_nodes=1,
        gpu_frac=0.95,
        cpu_frac=0.03,
        # Fitted to Table IV. The high gamma gives the V100-like knee
        # the paper's numbers imply: near-max caps cost almost nothing
        # (564 s at a 253 W cap), mid-range caps are cheap enough that
        # proportional sharing *saves* energy versus the static cap
        # (612 vs 652 kJ despite +33 s), and the 100 W floor is a cliff
        # (1145 s). A single shallow power law cannot produce all three.
        beta_gpu=1.42,
        gamma_gpu=4.0,
        # 12 s iteration envelope: 30% of each period is an inter-kernel
        # segment where GPU demand collapses (below the 100 W cap floor,
        # so deep node caps do not stretch the low phase).
        phases=PhaseProfile(period_s=12.0, duty=0.70, gpu_depth=0.85, cpu_depth=0.05),
        demand={
            # peak dyn = 2*45 + 40 + 4*250 = 1130 W -> 1530 W max node
            # (paper: 1523 W); phase-averaged ~1360 W (paper ~1325 W).
            "lassen": PlatformDemand(
                cpu_dyn_w=45.0, mem_dyn_w=40.0, gpu_dyn_w=250.0, runtime_scale=1.0
            ),
            "tioga": PlatformDemand(
                cpu_dyn_w=160.0, mem_dyn_w=55.0, gpu_dyn_w=140.0, runtime_scale=0.70
            ),
            # MI300A APU: the whole compute+HBM draw lands on the
            # four packages (no host CPU / DIMM domains to attribute to).
            "elcapitan": PlatformDemand(
                cpu_dyn_w=0.0, mem_dyn_w=0.0, gpu_dyn_w=520.0, runtime_scale=0.45
            ),
            "generic": PlatformDemand(
                cpu_dyn_w=140.0, mem_dyn_w=40.0, gpu_dyn_w=180.0, runtime_scale=1.4
            ),
        },
        inputs=GEMM_INPUTS,
    )
