"""Application profiles: demand + performance response.

An application is characterised by

* **power demand** per component on each platform (dynamic watts above
  idle for CPU sockets, memory and each logical GPU),
* **phase behaviour** — a rectangular high/low modulation of dynamic
  demand whose position advances with *computation progress* (not wall
  time), so power capping stretches the observed period. This is the
  physical effect FPP's FFT period detector keys on,
* a **performance response** to capping: the critical path is split
  into a GPU-sensitive fraction, a CPU-sensitive fraction and an
  insensitive remainder; a throttled component's speed follows the
  concave curve ``g(x) = 1 - beta * (1 - x)**gamma`` where ``x`` is the
  granted fraction of dynamic power. This captures real DVFS behaviour
  under power caps: near the top of the power range the marginal
  performance cost of shaving watts is tiny (V100 at 253/300 W loses
  only a few percent), while deep caps hurt nearly linearly. A single
  power law cannot fit both regimes the paper measured (Table IV:
  GEMM loses 2.9 % at a 253 W GPU cap but 109 % at 100 W),
* **scaling** — strong-scaled apps shrink per-node work (and per-node
  dynamic power) as node count grows; weak-scaled apps keep both flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class PlatformDemand:
    """Per-node dynamic power demand on one platform.

    All values are watts *above idle* and represent the application's
    peak (high-phase) demand at the reference node count.
    """

    cpu_dyn_w: float  #: per CPU socket
    mem_dyn_w: float  #: whole-node memory subsystem
    gpu_dyn_w: float  #: per logical GPU (a GCD counts as one on Tioga)
    runtime_scale: float = 1.0  #: multiplier on the profile's base runtime
    #: Optional phase overrides for this platform (e.g. Quicksilver's
    #: HIP variant on Tioga behaves differently from the CUDA one).
    phase: Optional["PhaseProfile"] = None


@dataclass(frozen=True)
class PhaseProfile:
    """Rectangular high/low power modulation tied to progress.

    ``period_s`` is the period in *unconstrained* execution seconds; a
    job progressing at rate r exhibits a wall-clock period of
    ``period_s / r``. ``duty`` is the fraction of the period spent in
    the high-power phase; in the low phase, GPU/memory dynamic demand
    is scaled by ``1 - gpu_depth`` and CPU dynamic demand by
    ``1 - cpu_depth``.
    """

    period_s: float = 0.0
    duty: float = 1.0
    gpu_depth: float = 0.0
    cpu_depth: float = 0.0

    def __post_init__(self) -> None:
        if self.period_s < 0:
            raise ValueError("period_s must be >= 0")
        if not (0.0 < self.duty <= 1.0):
            raise ValueError("duty must be in (0, 1]")
        for d in (self.gpu_depth, self.cpu_depth):
            if not (0.0 <= d <= 1.0):
                raise ValueError("phase depths must be in [0, 1]")

    @property
    def flat(self) -> bool:
        return self.period_s == 0.0 or (self.gpu_depth == 0.0 and self.cpu_depth == 0.0)

    def demand_factor(self, progress_s: float) -> tuple:
        """(gpu_factor, cpu_factor) of dynamic demand at a progress point."""
        if self.flat:
            return (1.0, 1.0)
        pos = (progress_s % self.period_s) / self.period_s
        if pos < self.duty:
            return (1.0, 1.0)
        return (1.0 - self.gpu_depth, 1.0 - self.cpu_depth)

    def mean_factor(self) -> tuple:
        """Time-averaged (gpu, cpu) demand factors."""
        if self.flat:
            return (1.0, 1.0)
        g = self.duty + (1.0 - self.duty) * (1.0 - self.gpu_depth)
        c = self.duty + (1.0 - self.duty) * (1.0 - self.cpu_depth)
        return (g, c)


@dataclass(frozen=True)
class CheckpointProfile:
    """Periodic defensive-checkpoint windows, tied to progress.

    Models the power signature measured in "Application Checkpoint and
    Power Study on Large Scale Systems" (PAPERS.md): at a fixed cadence
    the application stops computing and drains state to the parallel
    file system. During the window accelerator draw collapses (the
    kernels are idle) while CPU/IO draw *rises* above the compute-phase
    level — the inverse of a compute phase dip.

    Like :class:`PhaseProfile`, positions advance with *computation
    progress*, not wall time, so a capped (slowed) application
    checkpoints later in wall-clock terms. ``duration_s`` however is
    I/O-bound wall-equivalent work and does not shrink under capping.

    Attributes
    ----------
    interval_s:
        Progress seconds between checkpoint window *starts* (the OLCF
        study's defensive cadence; 0 disables checkpointing).
    duration_s:
        Length of each window in progress seconds.
    gpu_drop:
        Fraction of dynamic GPU/memory demand shed inside a window
        (1.0 = accelerators fall to their idle floor).
    cpu_boost:
        Multiplier (>= 1) on dynamic CPU demand inside a window — the
        I/O and serialization burst. Demand is still clamped to the
        domain's ``max_w`` by the hardware model.
    """

    interval_s: float = 0.0
    duration_s: float = 0.0
    gpu_drop: float = 0.9
    cpu_boost: float = 1.0

    def __post_init__(self) -> None:
        if self.interval_s < 0 or self.duration_s < 0:
            raise ValueError("checkpoint interval/duration must be >= 0")
        if self.interval_s and self.duration_s >= self.interval_s:
            raise ValueError("duration_s must be shorter than interval_s")
        if not (0.0 <= self.gpu_drop <= 1.0):
            raise ValueError("gpu_drop must be in [0, 1]")
        if self.cpu_boost < 1.0:
            raise ValueError("cpu_boost must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.interval_s > 0.0 and self.duration_s > 0.0

    def in_window(self, progress_s: float) -> bool:
        """True when a progress point falls inside a checkpoint window.

        Windows *end* on interval boundaries (compute runs first, then
        the state reached is drained), mirroring the study's "compute
        then dump" cadence.
        """
        if not self.enabled:
            return False
        pos = progress_s % self.interval_s
        return pos >= self.interval_s - self.duration_s

    def demand_factor(self, progress_s: float) -> tuple:
        """(gpu_factor, cpu_factor) multipliers at a progress point."""
        if not self.in_window(progress_s):
            return (1.0, 1.0)
        return (1.0 - self.gpu_drop, self.cpu_boost)

    def mean_factor(self) -> tuple:
        """Time-averaged (gpu, cpu) demand multipliers."""
        if not self.enabled:
            return (1.0, 1.0)
        frac = self.duration_s / self.interval_s
        g = (1.0 - frac) + frac * (1.0 - self.gpu_drop)
        c = (1.0 - frac) + frac * self.cpu_boost
        return (g, c)


@dataclass(frozen=True)
class AppProfile:
    """Full model of one application.

    Attributes
    ----------
    name:
        Registry key (``"lammps"``, ``"gemm"``, ...).
    scaling:
        ``"strong"`` or ``"weak"``.
    launcher:
        ``"mpi"`` or ``"non-mpi"`` (Charm++, Python workflows, ...).
    base_runtime_s:
        Unconstrained runtime on Lassen at ``ref_nodes`` nodes with
        ``work_scale=1``.
    ref_nodes:
        Node count the base runtime refers to.
    strong_runtime_exp:
        For strong scaling, runtime = base * (ref/n)**exp. Fitted from
        Table II (LAMMPS 4→8 nodes gives exp ≈ 0.74, i.e. imperfect
        speedup).
    strong_power_exp:
        Per-node dynamic demand scales as (ref/n)**exp for strong apps
        (Fig 2: LAMMPS per-node power declines towards 32 nodes).
    gpu_frac / cpu_frac:
        Critical-path fractions sensitive to GPU / CPU throttling; the
        remainder is insensitive (communication, latency-bound).
    beta_gpu / gamma_gpu (and _cpu):
        Parameters of the concave throttle response
        ``g(x) = 1 - beta * (1 - x)**gamma``.
    phases:
        Default phase behaviour (platform demand may override).
    checkpoint:
        Optional periodic checkpoint windows (``None`` = the
        application never checkpoints; all Table I apps). The
        checkpoint-aware power policy reads this *through the apps
        registry* to anticipate windows — see
        ``repro.manager.policies.checkpoint``.
    demand:
        Platform name → :class:`PlatformDemand`.
    inputs:
        The paper's Table I input description (documentation).
    """

    name: str
    scaling: str
    launcher: str
    base_runtime_s: float
    ref_nodes: int
    gpu_frac: float
    cpu_frac: float
    beta_gpu: float
    gamma_gpu: float
    demand: Dict[str, PlatformDemand]
    beta_cpu: float = 0.8
    gamma_cpu: float = 1.6
    phases: PhaseProfile = field(default_factory=PhaseProfile)
    checkpoint: Optional[CheckpointProfile] = None
    strong_runtime_exp: float = 0.74
    strong_power_exp: float = 0.25
    inputs: str = ""

    def __post_init__(self) -> None:
        if self.scaling not in ("strong", "weak"):
            raise ValueError(f"scaling must be strong|weak, got {self.scaling!r}")
        if self.gpu_frac < 0 or self.cpu_frac < 0 or self.gpu_frac + self.cpu_frac > 1:
            raise ValueError("gpu_frac and cpu_frac must be >=0 and sum to <=1")
        if not self.demand:
            raise ValueError("profile needs at least one platform demand entry")

    # ------------------------------------------------------------------
    # Scaling laws
    # ------------------------------------------------------------------
    def runtime_s(
        self, platform: str, n_nodes: int, work_scale: float = 1.0
    ) -> float:
        """Unconstrained runtime for a job of ``n_nodes`` nodes."""
        d = self.platform_demand(platform)
        t = self.base_runtime_s * d.runtime_scale * work_scale
        if self.scaling == "strong":
            t *= (self.ref_nodes / n_nodes) ** self.strong_runtime_exp
        return t

    def power_scale(self, n_nodes: int) -> float:
        """Per-node dynamic-demand factor at ``n_nodes`` nodes."""
        if self.scaling == "strong":
            return (self.ref_nodes / n_nodes) ** self.strong_power_exp
        return 1.0

    def platform_demand(self, platform: str) -> PlatformDemand:
        d = self.demand.get(platform)
        if d is None:
            raise KeyError(
                f"app {self.name!r} has no demand calibration for {platform!r}"
            )
        return d

    def phase_profile(self, platform: str) -> PhaseProfile:
        d = self.platform_demand(platform)
        return d.phase if d.phase is not None else self.phases

    # ------------------------------------------------------------------
    # Performance response
    # ------------------------------------------------------------------
    @staticmethod
    def component_response(x: float, beta: float, gamma: float) -> float:
        """Concave speed response to a granted dynamic-power fraction."""
        x = max(min(x, 1.0), 0.0)
        return max(0.02, 1.0 - beta * (1.0 - x) ** gamma)

    def progress_rate(self, gpu_throttle: float, cpu_throttle: float) -> float:
        """Progress rate in [0, 1] given component throttle ratios.

        Amdahl-style composition: each sensitive fraction is slowed by
        its component's concave response; the insensitive remainder
        always runs at full speed.
        """
        g = self.component_response(gpu_throttle, self.beta_gpu, self.gamma_gpu)
        c = self.component_response(cpu_throttle, self.beta_cpu, self.gamma_cpu)
        other = 1.0 - self.gpu_frac - self.cpu_frac
        denom = self.gpu_frac / g + self.cpu_frac / c + other
        return 1.0 / denom

    # ------------------------------------------------------------------
    # Mean power prediction (used by calibration and tests)
    # ------------------------------------------------------------------
    def mean_node_demand_w(
        self, platform: str, n_nodes: int, node_idle_w: float, n_sockets: int, n_gpus: int
    ) -> float:
        """Expected average node power when unconstrained."""
        d = self.platform_demand(platform)
        ph = self.phase_profile(platform)
        gf, cf = ph.mean_factor()
        if self.checkpoint is not None:
            ckg, ckc = self.checkpoint.mean_factor()
            gf *= ckg
            cf *= ckc
        scale = self.power_scale(n_nodes)
        dyn = (
            n_sockets * d.cpu_dyn_w * cf
            + d.mem_dyn_w * gf
            + n_gpus * d.gpu_dyn_w * gf
        ) * scale
        return node_idle_w + dyn
