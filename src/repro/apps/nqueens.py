"""NQueens: Charm++ chessboard puzzle (CPU-only, non-MPI).

Paper inputs (Table I): ``+p160``, 14 queens, grainsize=1000. This is
the paper's demonstration that the framework handles *anything*
launched under a Flux job — Charm++ is not MPI, yet telemetry and
proportional power capping apply unchanged (Fig 7 runs it on 2 nodes
next to a 6-node GEMM).

No quantitative targets exist in the paper beyond Fig 7's qualitative
shape (GEMM node power drops when NQueens enters the system); the
profile is therefore a plausible CPU-saturating Charm++ workload: flat
power, ~155 dynamic W per Power9 socket, idle GPUs.
"""

from __future__ import annotations

from repro.apps.base import AppProfile, PhaseProfile, PlatformDemand

NQUEENS_INPUTS = "+p160, 14 queens, grainsize=1000"


def nqueens_profile() -> AppProfile:
    """Build the NQueens profile."""
    return AppProfile(
        name="nqueens",
        scaling="weak",
        launcher="non-mpi",
        base_runtime_s=300.0,
        ref_nodes=1,
        gpu_frac=0.0,
        cpu_frac=0.85,
        beta_gpu=0.80,
        gamma_gpu=1.6,
        phases=PhaseProfile(),  # flat timeline (Section II-D)
        demand={
            # dyn = 2*155 + 30 = 340 W -> ~740 W node, GPUs idle.
            "lassen": PlatformDemand(
                cpu_dyn_w=155.0, mem_dyn_w=30.0, gpu_dyn_w=0.0, runtime_scale=1.0
            ),
            "tioga": PlatformDemand(
                cpu_dyn_w=200.0, mem_dyn_w=25.0, gpu_dyn_w=0.0, runtime_scale=1.0
            ),
            # MI300A APU: a CPU-only workload still draws through the
            # packages (in-socket cores), far below the APU envelope.
            "elcapitan": PlatformDemand(
                cpu_dyn_w=0.0, mem_dyn_w=0.0, gpu_dyn_w=90.0, runtime_scale=0.9
            ),
            "generic": PlatformDemand(
                cpu_dyn_w=160.0, mem_dyn_w=25.0, gpu_dyn_w=0.0, runtime_scale=1.0
            ),
        },
        inputs=NQUEENS_INPUTS,
    )
