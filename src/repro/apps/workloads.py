"""Workload and job-queue generators.

Section IV-E evaluates the power policies on "a real job queue with 10
jobs on a 16-node allocation ... a random mix of the four applications,
with each application requesting between 1-8 nodes. The job queue had 3
jobs with Laghos, 2 with Quicksilver, 3 with LAMMPS and 2 with GEMM."
:func:`make_random_queue` reproduces exactly that composition with a
seeded shuffle of submission order and node counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.flux.jobspec import Jobspec

#: The paper's queue composition (Section IV-E).
PAPER_QUEUE_MIX: Dict[str, int] = {
    "laghos": 3,
    "quicksilver": 2,
    "lammps": 3,
    "gemm": 2,
}


@dataclass(frozen=True)
class QueueJob:
    """One queue entry: a jobspec plus its submission offset."""

    spec: Jobspec
    submit_offset_s: float = 0.0


def make_random_queue(
    rng: np.random.Generator,
    mix: Optional[Dict[str, int]] = None,
    min_nodes: int = 1,
    max_nodes: int = 8,
    work_scales: Optional[Dict[str, float]] = None,
    submit_spread_s: float = 0.0,
) -> List[QueueJob]:
    """Generate a seeded random job queue.

    Parameters
    ----------
    rng:
        Seeded generator — the same seed always yields the same queue.
    mix:
        app name → job count; defaults to the paper's 3/2/3/2 mix.
    min_nodes / max_nodes:
        Uniform node-count range per job (paper: 1–8).
    work_scales:
        Optional per-app problem-size multiplier carried in job params.
    submit_spread_s:
        Jobs are submitted at uniform random offsets in
        ``[0, submit_spread_s]`` (0 = all at t=0, like a drained queue).
    """
    mix = dict(PAPER_QUEUE_MIX if mix is None else mix)
    work_scales = work_scales or {}
    entries: List[QueueJob] = []
    idx = 0
    for app in sorted(mix):
        for _ in range(mix[app]):
            nnodes = int(rng.integers(min_nodes, max_nodes + 1))
            offset = (
                float(rng.uniform(0.0, submit_spread_s)) if submit_spread_s > 0 else 0.0
            )
            params: Dict[str, float] = {}
            if app in work_scales:
                params["work_scale"] = work_scales[app]
            entries.append(
                QueueJob(
                    spec=Jobspec(
                        app=app, nnodes=nnodes, params=params, name=f"{app}-{idx}"
                    ),
                    submit_offset_s=offset,
                )
            )
            idx += 1
    # Shuffle submission order so apps interleave like a real queue.
    order = rng.permutation(len(entries))
    return [entries[i] for i in order]


def queue_to_csv(queue: List[QueueJob]) -> str:
    """Serialise a queue as CSV (app,nnodes,work_scale,submit_offset_s)."""
    lines = ["app,nnodes,work_scale,submit_offset_s,name"]
    for entry in queue:
        scale = entry.spec.params.get("work_scale", 1.0)
        lines.append(
            f"{entry.spec.app},{entry.spec.nnodes},{scale},"
            f"{entry.submit_offset_s},{entry.spec.label}"
        )
    return "\n".join(lines) + "\n"


def queue_from_csv(text: str) -> List[QueueJob]:
    """Parse a queue from the CSV format written by :func:`queue_to_csv`.

    Lets campaigns be checked into a repo and replayed exactly —
    including hand-edited ones.
    """
    lines = [l for l in text.strip().splitlines() if l.strip()]
    if not lines or not lines[0].startswith("app,"):
        raise ValueError("missing queue CSV header")
    out: List[QueueJob] = []
    for i, line in enumerate(lines[1:], start=2):
        parts = line.split(",")
        if len(parts) != 5:
            raise ValueError(f"line {i}: expected 5 fields, got {len(parts)}")
        app, nnodes, scale, offset, name = parts
        params = {}
        if float(scale) != 1.0:
            params["work_scale"] = float(scale)
        out.append(
            QueueJob(
                spec=Jobspec(
                    app=app, nnodes=int(nnodes), params=params, name=name or None
                ),
                submit_offset_s=float(offset),
            )
        )
    return out
