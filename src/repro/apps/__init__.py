"""Application models.

The paper evaluates five applications (Section II-D): LAMMPS (strong
scaled, GPU compute-bound), GEMM from RajaPerf (weak, compute-bound),
Quicksilver (weak, periodic phase behaviour, cap-insensitive), Laghos
(weak, CPU-heavy, minor phases) and NQueens (CPU-only Charm++, i.e. a
non-MPI Flux job).

Each is modelled by an :class:`~repro.apps.base.AppProfile`: per-node,
per-component power *demand* plus a cap→progress response. The policies
under study only ever observe applications through (a) the power signal
and (b) runtime under caps, so this is exactly the surface that must be
calibrated — targets are the numbers in Fig 1/2 and Tables II–IV, as
recorded in each profile's docstring.
"""

from repro.apps.base import AppProfile, PhaseProfile, PlatformDemand
from repro.apps.registry import (
    get_profile,
    list_apps,
    register_profile,
    unregister_profile,
)
from repro.apps.run import AppRun
from repro.apps.workloads import make_random_queue, QueueJob

__all__ = [
    "AppProfile",
    "PhaseProfile",
    "PlatformDemand",
    "get_profile",
    "list_apps",
    "register_profile",
    "unregister_profile",
    "AppRun",
    "make_random_queue",
    "QueueJob",
]
