"""SW4lite and Kripke: the applications that did not survive Tioga.

Section V: "we could not obtain a HIP variant for SW4lite ... and
Kripke execution failed on the Tioga system." Both apps therefore
appear in this reproduction exactly as the paper experienced them:

* **SW4lite** (seismic wave propagation) has no Tioga demand entry at
  all — submitting it on Tioga fails at launch, like a missing HIP
  build.
* **Kripke** (deterministic Sn transport proxy) builds and launches on
  Tioga but crashes early in execution (modelled with the fault
  injection hook), reproducing "Kripke execution failed".

On Lassen both run normally, with plausible CPU/GPU-balanced profiles
(neither is quantitatively calibrated — the paper reports no numbers
for them).
"""

from __future__ import annotations

from repro.apps.base import AppProfile, PhaseProfile, PlatformDemand

SW4LITE_INPUTS = "LOH.1 benchmark grid (no HIP variant exists)"
KRIPKE_INPUTS = "groups=32 quad=192 zones=16^3 (fails on Tioga)"

#: Kripke's Tioga runs crash this many seconds in (Section V).
KRIPKE_TIOGA_FAIL_AT_S = 15.0


def sw4lite_profile() -> AppProfile:
    """SW4lite: CUDA-only — note the missing ``tioga`` demand entry."""
    return AppProfile(
        name="sw4lite",
        scaling="weak",
        launcher="mpi",
        base_runtime_s=90.0,
        ref_nodes=4,
        gpu_frac=0.55,
        cpu_frac=0.30,
        beta_gpu=0.85,
        gamma_gpu=2.0,
        phases=PhaseProfile(period_s=15.0, duty=0.55, gpu_depth=0.45, cpu_depth=0.2),
        demand={
            "lassen": PlatformDemand(
                cpu_dyn_w=95.0, mem_dyn_w=45.0, gpu_dyn_w=120.0, runtime_scale=1.0
            ),
            # No "tioga" entry: launching there raises KeyError at
            # execution, the missing-HIP-variant failure mode.
            "generic": PlatformDemand(
                cpu_dyn_w=110.0, mem_dyn_w=40.0, gpu_dyn_w=100.0, runtime_scale=1.3
            ),
        },
        inputs=SW4LITE_INPUTS,
    )


def kripke_profile() -> AppProfile:
    """Kripke: runs on Lassen; its Tioga runs crash (see run helper)."""
    return AppProfile(
        name="kripke",
        scaling="weak",
        launcher="mpi",
        base_runtime_s=60.0,
        ref_nodes=4,
        gpu_frac=0.45,
        cpu_frac=0.40,
        beta_gpu=0.80,
        gamma_gpu=1.8,
        phases=PhaseProfile(period_s=10.0, duty=0.5, gpu_depth=0.5, cpu_depth=0.3),
        demand={
            "lassen": PlatformDemand(
                cpu_dyn_w=105.0, mem_dyn_w=50.0, gpu_dyn_w=105.0, runtime_scale=1.0
            ),
            "tioga": PlatformDemand(
                cpu_dyn_w=150.0, mem_dyn_w=40.0, gpu_dyn_w=70.0, runtime_scale=1.2
            ),
            "elcapitan": PlatformDemand(
                cpu_dyn_w=0.0, mem_dyn_w=0.0, gpu_dyn_w=260.0, runtime_scale=0.7
            ),
            "generic": PlatformDemand(
                cpu_dyn_w=115.0, mem_dyn_w=45.0, gpu_dyn_w=90.0, runtime_scale=1.2
            ),
        },
        inputs=KRIPKE_INPUTS,
    )


def kripke_jobspec_params(platform: str, **params):
    """Job params for Kripke, injecting its Tioga crash (Section V)."""
    out = dict(params)
    if platform == "tioga":
        out["fail_at_s"] = KRIPKE_TIOGA_FAIL_AT_S
    return out
