"""Application registry: name → profile lookup (extensible)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.apps.base import AppProfile
from repro.apps.extras import kripke_profile, sw4lite_profile
from repro.apps.gemm import gemm_profile
from repro.apps.hacc import hacc_profile
from repro.apps.laghos import laghos_profile
from repro.apps.lammps import lammps_profile
from repro.apps.nqueens import nqueens_profile
from repro.apps.quicksilver import quicksilver_profile

_FACTORIES: Dict[str, Callable[[], AppProfile]] = {
    "lammps": lammps_profile,
    "gemm": gemm_profile,
    "quicksilver": quicksilver_profile,
    "laghos": laghos_profile,
    "nqueens": nqueens_profile,
    # Section V: the applications that did not survive Tioga.
    "sw4lite": sw4lite_profile,
    "kripke": kripke_profile,
    # Policy-zoo addition: the checkpointing cosmology proxy.
    "hacc": hacc_profile,
}

_CACHE: Dict[str, AppProfile] = {}


def get_profile(name: str) -> AppProfile:
    """Look up an application profile by registry name."""
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown application {name!r}; registered: {sorted(_FACTORIES)}"
        )
    if name not in _CACHE:
        _CACHE[name] = _FACTORIES[name]()
    return _CACHE[name]


def list_apps() -> List[str]:
    """Registered application names, sorted."""
    return sorted(_FACTORIES)


def register_profile(name: str, factory: Callable[[], AppProfile]) -> None:
    """Register a custom application (user extensibility hook)."""
    _FACTORIES[name] = factory
    _CACHE.pop(name, None)


def unregister_profile(name: str) -> None:
    """Remove a registered application (tests must undo registrations
    so the module-global registry stays order-independent)."""
    _FACTORIES.pop(name, None)
    _CACHE.pop(name, None)
