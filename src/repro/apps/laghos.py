"""Laghos: Lagrangian high-order hydrodynamics (weak, CPU-heavy).

Paper inputs (Table I): ``-pt {task-partition} -m {input-mesh} -rp 2
-tf 0.6 -no-vis -pa -d cuda --max-steps 40``.

Calibration targets
-------------------
* Section II-D prose: "has some phase behavior, albeit very minor in
  magnitude. It spends most of the time on the CPU and very little on
  the GPU."
* Table II (Lassen): 12.55 s / 472.91 W at 4 nodes, 12.62 s / 469.59 W
  at 8 nodes (weak: flat; barely above the 400 W idle).
* Table II (Tioga): 26.71 s / 530.87 W at 4 nodes — runtime roughly
  doubles because task count doubled with weak scaling (8 GCDs vs 4
  GPUs), an expected result per the paper; per-node energy +139 %.
* Fig 4: Laghos shows >20 % run-to-run variability at 1–2 Lassen nodes
  (handled by the jitter model, not the profile).
"""

from __future__ import annotations

from repro.apps.base import AppProfile, PhaseProfile, PlatformDemand

LAGHOS_INPUTS = (
    "-pt {task-partition} -m {mesh} -rp 2 -tf 0.6 -no-vis -pa -d cuda --max-steps 40"
)


def laghos_profile() -> AppProfile:
    """Build the calibrated Laghos profile."""
    return AppProfile(
        name="laghos",
        scaling="weak",
        launcher="mpi",
        base_runtime_s=12.55,
        ref_nodes=4,
        gpu_frac=0.10,
        cpu_frac=0.60,
        beta_gpu=0.70,
        gamma_gpu=1.5,
        # Minor phases: shallow dips on an 8 s cadence.
        phases=PhaseProfile(period_s=8.0, duty=0.60, gpu_depth=0.30, cpu_depth=0.10),
        demand={
            # dyn = 2*28 + 10 + 4*2 = 74 W -> ~470 W average node.
            "lassen": PlatformDemand(
                cpu_dyn_w=28.0, mem_dyn_w=10.0, gpu_dyn_w=2.0, runtime_scale=1.0
            ),
            # measured = 420 + 70*0.96 + 8*6.2*0.88 ~ 531 W.
            "tioga": PlatformDemand(
                cpu_dyn_w=70.0,
                mem_dyn_w=12.0,
                gpu_dyn_w=6.2,
                runtime_scale=26.71 / 12.55,
            ),
            # MI300A APU: CPU-bound draw shows up as a modest package
            # delta on the four sockets (no host CPU domain).
            "elcapitan": PlatformDemand(
                cpu_dyn_w=0.0, mem_dyn_w=0.0, gpu_dyn_w=60.0, runtime_scale=1.1
            ),
            "generic": PlatformDemand(
                cpu_dyn_w=50.0, mem_dyn_w=12.0, gpu_dyn_w=4.0, runtime_scale=1.2
            ),
        },
        inputs=LAGHOS_INPUTS,
    )
