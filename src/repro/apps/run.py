"""AppRun: executes an application model on allocated hardware nodes.

An :class:`AppRun` is a simulation process that repeatedly:

1. places per-component power *demand* on each of its nodes (phase
   position is a function of accumulated progress, so capping stretches
   the observed period),
2. reads back the per-component throttle ratios that result from
   whatever caps firmware/managers have installed,
3. advances job progress at the profile's composed rate — the *minimum*
   across nodes, because the modelled applications are bulk-synchronous
   (one slow node drags all ranks).

It also integrates exact per-node energy (piecewise-constant power
between steps) and tracks max node power, which is what the Table III/IV
experiments report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.apps.base import AppProfile
from repro.hardware.node import Node
from repro.simkernel import Process, Simulator, Timeout

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.flux.jobspec import JobRecord

#: Returns the fractional progress penalty imposed on a node by loaded
#: telemetry modules (0.0 when the power monitor is not loaded).
OverheadFn = Callable[[Node], float]


class AppRun:
    """One job's application execution.

    Parameters
    ----------
    sim:
        Shared simulator.
    record:
        The job record (provides jobid and label).
    nodes:
        Hardware nodes allocated to the job, in rank order.
    profile:
        The application model.
    work_scale:
        Problem-size multiplier (Table IV uses 2x GEMM, ~27x
        Quicksilver relative to the Table I base inputs).
    jitter_factor:
        Multiplicative run-to-run noise on total work (drawn by the
        caller from the :class:`~repro.hardware.noise.JitterModel`).
    overhead_fn:
        Telemetry overhead hook; see :data:`OverheadFn`.
    on_done:
        Called once with the jobid when execution completes.
    dt:
        Control step in simulated seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        record: "JobRecord",
        nodes: List[Node],
        profile: AppProfile,
        work_scale: float = 1.0,
        jitter_factor: float = 1.0,
        overhead_fn: Optional[OverheadFn] = None,
        on_done: Optional[Callable[[int], None]] = None,
        on_fail: Optional[Callable[[int], None]] = None,
        fail_at_progress_s: Optional[float] = None,
        dt: float = 1.0,
    ) -> None:
        if not nodes:
            raise ValueError("AppRun needs at least one node")
        platforms = {n.spec.platform for n in nodes}
        if len(platforms) != 1:
            raise ValueError(f"job spans mixed platforms: {platforms}")
        self.sim = sim
        self.record = record
        self.nodes = nodes
        self.profile = profile
        self.platform = nodes[0].spec.platform
        self.work_scale = float(work_scale)
        self.jitter_factor = float(jitter_factor)
        self.overhead_fn = overhead_fn
        self.on_done = on_done
        self.on_fail = on_fail
        #: Fault injection: the application crashes once its progress
        #: crosses this point (None = never). Used by resilience tests.
        self.fail_at_progress_s = fail_at_progress_s
        self.failed = False
        self.dt = float(dt)

        self.total_work_s = (
            profile.runtime_s(self.platform, len(nodes), work_scale) * jitter_factor
        )
        self.progress_s = 0.0
        self.finished = False
        self.t_start = sim.now
        self.t_end: Optional[float] = None

        # Exact accounting (what Table III/IV report).
        self.energy_j: Dict[str, float] = {n.hostname: 0.0 for n in nodes}
        self.max_node_power_w = 0.0
        self.current_rate = 0.0

        self._phase = profile.phase_profile(self.platform)
        self._checkpoint = profile.checkpoint
        self._demand = profile.platform_demand(self.platform)
        self._power_scale = profile.power_scale(len(nodes))
        self.process = Process(sim, self._main(), name=f"app-{record.spec.label}")

    # ------------------------------------------------------------------
    # Demand placement
    # ------------------------------------------------------------------
    def _apply_demand(self) -> None:
        gpu_f, cpu_f = self._phase.demand_factor(self.progress_s)
        if self._checkpoint is not None:
            # Checkpoint windows compose multiplicatively with phase
            # modulation: GPUs idle out, CPUs burst on I/O (apps
            # without a checkpoint profile skip this entirely, keeping
            # the golden byte-identity fixtures untouched).
            ck_g, ck_c = self._checkpoint.demand_factor(self.progress_s)
            gpu_f *= ck_g
            cpu_f *= ck_c
        d = self._demand
        s = self._power_scale
        for node in self.nodes:
            per_gcd = node.spec.gpus_per_telemetry_domain
            for dom in node.cpu_domains:
                dom.set_demand(dom.spec.idle_w + d.cpu_dyn_w * s * cpu_f)
            for dom in node.memory_domains:
                dom.set_demand(dom.spec.idle_w + d.mem_dyn_w * s * gpu_f)
            for dom in node.gpu_domains:
                dom.set_demand(dom.spec.idle_w + d.gpu_dyn_w * per_gcd * s * gpu_f)

    def _clear_demand(self) -> None:
        for node in self.nodes:
            node.clear_demand()

    # ------------------------------------------------------------------
    # Rate
    # ------------------------------------------------------------------
    def _node_rate(self, node: Node) -> float:
        gpu_thr = min(node.gpu_throttles(), default=1.0)
        cpu_thr = node.cpu_throttle()
        rate = self.profile.progress_rate(gpu_thr, cpu_thr)
        if self.overhead_fn is not None:
            rate *= max(0.0, 1.0 - self.overhead_fn(node))
        return rate

    def _job_rate(self) -> float:
        # Bulk-synchronous: the slowest node paces every rank.
        return min(self._node_rate(n) for n in self.nodes)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _account(self, dt: float) -> None:
        for node in self.nodes:
            p = node.total_power_w()
            self.energy_j[node.hostname] += p * dt
            if p > self.max_node_power_w:
                self.max_node_power_w = p

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _main(self):
        while self.progress_s < self.total_work_s:
            if (
                self.fail_at_progress_s is not None
                and self.progress_s >= self.fail_at_progress_s
            ):
                self.failed = True
                self.t_end = self.sim.now
                self._clear_demand()
                if self.on_fail is not None:
                    self.on_fail(self.record.jobid)
                return
            self._apply_demand()
            rate = self._job_rate()
            self.current_rate = rate
            if rate <= 1e-9:
                # Fully starved (cap at idle floor): wait a step and
                # retry — caps are dynamic and may be relaxed.
                self._account(self.dt)
                yield Timeout(self.dt)
                continue
            remaining_t = (self.total_work_s - self.progress_s) / rate
            step = min(self.dt, remaining_t)
            yield Timeout(step)
            self._account(step)
            self.progress_s += rate * step
        self.finished = True
        self.t_end = self.sim.now
        self._clear_demand()
        if self.on_done is not None:
            self.on_done(self.record.jobid)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def runtime_s(self) -> Optional[float]:
        if self.t_end is None:
            return None
        return self.t_end - self.t_start

    @property
    def avg_node_energy_j(self) -> float:
        """Mean over nodes of integrated node energy (the paper's metric)."""
        return sum(self.energy_j.values()) / len(self.energy_j)

    @property
    def avg_node_power_w(self) -> Optional[float]:
        rt = self.runtime_s
        if rt is None or rt <= 0:
            return None
        return self.avg_node_energy_j / rt
