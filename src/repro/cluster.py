"""Top-level facade: a power-managed cluster in one object.

Wraps a :class:`~repro.flux.instance.FluxInstance` with the power
monitor and (optionally) the power manager loaded, plus a cluster power
trace — the configuration every experiment and example starts from.

Example
-------
>>> from repro import PowerManagedCluster, Jobspec, ManagerConfig
>>> cluster = PowerManagedCluster(
...     platform="lassen", n_nodes=8, seed=7,
...     manager_config=ManagerConfig(global_cap_w=9600.0,
...                                  policy="proportional",
...                                  static_node_cap_w=1950.0))
>>> job = cluster.submit(Jobspec(app="gemm", nnodes=6))
>>> cluster.run_until_complete()
>>> cluster.metrics(job.jobid).runtime_s  # doctest: +SKIP
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.energy import JobMetrics, job_metrics
from repro.analysis.traces import ClusterPowerTrace
from repro.faults import FaultInjector, FaultPlan
from repro.flux.broker import Broker
from repro.flux.instance import FluxInstance
from repro.flux.jobspec import JobRecord, Jobspec
from repro.flux.module import RetryConfig
from repro.manager.cluster_manager import ManagerConfig
from repro.manager.module import PowerManager, attach_manager
from repro.monitor.client import JobPowerData
from repro.monitor.module import PowerMonitor, attach_monitor
from repro.telemetry import OverheadReport, Telemetry


class PowerManagedCluster:
    """A simulated cluster with telemetry and power management loaded.

    Parameters
    ----------
    platform:
        ``"lassen"``, ``"tioga"`` or ``"generic"``.
    n_nodes:
        Cluster size.
    seed:
        Root seed for all randomness.
    with_monitor:
        Load flux-power-monitor (node agents + root agent + client).
    manager_config:
        Load flux-power-manager with this config; ``None`` loads no
        manager (telemetry-only deployment).
    monitor_interval_s:
        Telemetry sampling period (paper default 2 s).
    trace:
        Record a cluster-wide power trace (Table III / Fig 5-7 data).
    enable_jitter:
        Run-to-run variability on (Fig 3/4 experiments).
    telemetry_enabled:
        Observability hub on/off (metrics, traces, overhead accounting
        — :mod:`repro.telemetry`). Pure observer: simulated results are
        identical either way.
    fault_plan:
        Fault campaign to inject (:class:`~repro.faults.FaultPlan`);
        ``None`` (or an empty plan) injects nothing and leaves the run
        byte-identical to a faultless build — see docs/failures.md.
    monitor_retry:
        Per-node timeout/retry policy for telemetry aggregation
        (:class:`~repro.flux.module.RetryConfig`); None uses defaults.
    sim:
        An existing :class:`~repro.simkernel.Simulator` to build on —
        several clusters sharing one engine is how a federated site
        (:mod:`repro.federation`) runs; None creates a private engine.
    hostname_prefix:
        Override the platform name in generated hostnames (keeps
        sibling clusters of one platform distinguishable in CSVs).
    """

    def __init__(
        self,
        platform: str = "lassen",
        n_nodes: int = 8,
        seed: int = 0,
        with_monitor: bool = True,
        manager_config: Optional[ManagerConfig] = None,
        fpp_params=None,
        monitor_interval_s: float = 2.0,
        trace: bool = True,
        trace_interval_s: float = 2.0,
        enable_jitter: bool = False,
        nvml_failure_rate: float = 0.0,
        sensor_noise_sigma_w: float = 0.0,
        fanout: int = 2,
        app_dt: float = 1.0,
        backfill: bool = False,
        scheduler_factory=None,
        telemetry_enabled: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        monitor_retry: Optional[RetryConfig] = None,
        monitor_strategy: str = "fanout",
        monitor_batch_sampling: bool = True,
        monitor_columnar: bool = False,
        sim=None,
        hostname_prefix: Optional[str] = None,
        tenancy=None,
    ) -> None:
        self.instance = FluxInstance(
            platform=platform,
            n_nodes=n_nodes,
            seed=seed,
            fanout=fanout,
            sim=sim,
            hostname_prefix=hostname_prefix,
            enable_jitter=enable_jitter,
            nvml_failure_rate=nvml_failure_rate,
            sensor_noise_sigma_w=sensor_noise_sigma_w,
            app_dt=app_dt,
            backfill=backfill,
            scheduler_factory=scheduler_factory,
            telemetry_enabled=telemetry_enabled,
        )
        self.monitor: Optional[PowerMonitor] = None
        if with_monitor:
            self.monitor = attach_monitor(
                self.instance,
                sample_interval_s=monitor_interval_s,
                strategy=monitor_strategy,
                retry=monitor_retry,
                batch_sampling=monitor_batch_sampling,
                columnar=monitor_columnar,
            )
        self.manager: Optional[PowerManager] = None
        if manager_config is not None:
            self.manager = attach_manager(
                self.instance, manager_config, fpp_params=fpp_params
            )
        self.trace: Optional[ClusterPowerTrace] = None
        if trace:
            self.trace = ClusterPowerTrace(self.instance, interval_s=trace_interval_s)
        #: Fault injector; a no-op (nothing scheduled, no RNG stream)
        #: unless a non-empty plan was supplied.
        self.faults = FaultInjector(
            self.instance, fault_plan, on_restart=self._on_broker_restart
        )
        #: Tenancy coordinator (fairshare + admission + accounting);
        #: None — the anonymous-job paper configuration — unless a
        #: :class:`~repro.tenancy.coordinator.TenancyConfig` was given.
        self.tenancy = None
        if tenancy is not None:
            from repro.tenancy.coordinator import TenancyCoordinator

            self.tenancy = TenancyCoordinator(self, tenancy)

    def _on_broker_restart(self, broker: Broker) -> None:
        """Reload management modules on a broker that came back up.

        The reborn node agent starts with an empty ring buffer, so
        telemetry windows straddling the outage come back partial; the
        node manager re-installs the static cap and picks up dynamic
        limits at the cluster manager's next recompute.
        """
        if self.monitor is not None:
            self.monitor.reload_agent(broker.rank)
        if self.manager is not None:
            self.manager.reload_node_manager(broker.rank)

    # ------------------------------------------------------------------
    # Delegation
    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self.instance.sim

    @property
    def nodes(self):
        return self.instance.nodes

    def submit(self, spec: Jobspec, depends_on=None) -> Optional[JobRecord]:
        """Submit a job. With a tenancy coordinator attached the spec
        passes admission first and the return value may be None (queued
        or rejected — ``self.tenancy.last_decision`` says which)."""
        if self.tenancy is not None:
            return self.tenancy.submit(spec, depends_on=depends_on)
        return self.instance.submit(spec, depends_on=depends_on)

    def submit_at(self, spec: Jobspec, when: float) -> None:
        if self.tenancy is not None:
            # Route the deferred submission through admission too
            # (instance.submit_at would bypass the coordinator).
            self.sim.schedule_at(when, self.tenancy.submit, spec)
            return
        self.instance.submit_at(spec, when)

    def run_until_complete(self, timeout_s: float = 1e7) -> float:
        return self.instance.run_until_complete(timeout_s=timeout_s)

    def run_for(self, duration_s: float) -> float:
        return self.instance.run_for(duration_s)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def metrics(self, jobid: int) -> JobMetrics:
        """Exact power/energy metrics for a completed job."""
        return job_metrics(self.instance.app_runs[jobid])

    def all_metrics(self) -> Dict[int, JobMetrics]:
        return {
            jid: job_metrics(run)
            for jid, run in self.instance.app_runs.items()
            if run.finished
        }

    def telemetry(self, jobid: int) -> JobPowerData:
        """Fetch the monitor client's CSV-backed job telemetry."""
        if self.monitor is None:
            raise RuntimeError("monitor not loaded on this cluster")
        return self.monitor.client.fetch(jobid)

    def makespan_s(self) -> Optional[float]:
        return self.instance.jobmanager.makespan_s()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def telemetry_hub(self) -> Telemetry:
        """The observability hub (metrics + traces + overhead accountant).

        Distinct from :meth:`telemetry`, which fetches a *job's* power
        samples through the monitor client, mirroring the production
        tool's naming.
        """
        return self.instance.telemetry

    def overhead_report(self) -> OverheadReport:
        """Paper-style overhead report (Section IV-D) for this run.

        Attributed monitor/manager seconds come from the overhead
        accountant; application node-seconds are derived from the job
        runs so the percentages share the same capacity denominator
        (elapsed time x cluster size) as the paper's.
        """
        acc = self.instance.telemetry.accountant
        app_node_s = 0.0
        for run in self.instance.app_runs.values():
            t_end = run.t_end if run.t_end is not None else self.sim.now
            app_node_s += max(0.0, t_end - run.t_start) * len(run.nodes)
        cats = {c: acc.seconds(c) for c in acc.categories()}
        cats["application"] = cats.get("application", 0.0) + app_node_s
        return OverheadReport(
            platform=self.instance.platform,
            elapsed_s=self.sim.now,
            n_nodes=self.instance.n_nodes,
            category_seconds=cats,
        )
