"""External telemetry client.

The paper's client is a Python script: give it a job identifier and it
resolves the job's nodes and time window, asks the root agent for the
matching power samples, and writes a CSV with a column saying whether
each node had a complete data set or a partial one (buffer wrap).

Here the client drives the simulator while it waits for its RPCs, which
is the analogue of an external process blocking on a Flux RPC.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.flux.instance import FluxInstance
from repro.monitor.root_agent import GET_JOB_POWER_TOPIC

CSV_HEADER = (
    "jobid,hostname,timestamp,power_node_watts,power_cpu_watts,"
    "power_mem_watts,power_gpu_watts,node_data_complete"
)


def component_powers(sample: Dict[str, Any]) -> Dict[str, float]:
    """Aggregate a Variorum JSON sample into CPU/mem/GPU totals.

    On IBM, per-GPU keys (``power_gpu_watts_gpu_*``) are preferred over
    the per-socket aggregates to avoid double counting; on AMD only
    per-OAM keys exist.
    """
    cpu = sum(v for k, v in sample.items() if k.startswith("power_cpu_watts"))
    mem = sum(v for k, v in sample.items() if k.startswith("power_mem_watts"))
    gpu_keys = [k for k in sample if k.startswith("power_gpu_watts_gpu_")]
    if not gpu_keys:
        gpu_keys = [k for k in sample if k.startswith("power_gpu_watts_oam_")]
    if not gpu_keys:
        gpu_keys = [k for k in sample if k.startswith("power_gpu_watts_socket_")]
    gpu = sum(sample[k] for k in gpu_keys)
    return {
        "cpu_w": float(cpu),
        "mem_w": float(mem),
        "gpu_w": float(gpu),
        "node_w": float(sample.get("power_node_watts", 0.0)),
    }


@dataclass
class JobPowerData:
    """Telemetry for one job: per-node sample rows + completeness flags."""

    jobid: int
    rows: List[Dict[str, Any]] = field(default_factory=list)
    node_complete: Dict[str, bool] = field(default_factory=dict)
    #: hostname -> error string for nodes whose agent never answered
    #: (crashed/hung node; see docs/failures.md). Such nodes appear in
    #: ``node_complete`` as False with zero rows.
    node_error: Dict[str, str] = field(default_factory=dict)

    @property
    def degraded_hosts(self) -> List[str]:
        """Hosts whose data came back as an error record (no samples)."""
        return sorted(self.node_error)

    @property
    def hostnames(self) -> List[str]:
        return sorted(self.node_complete)

    @property
    def complete(self) -> bool:
        """True when every node had full coverage of the job window."""
        return all(self.node_complete.values())

    def samples_for(self, hostname: str) -> List[Dict[str, Any]]:
        return [r for r in self.rows if r["hostname"] == hostname]

    # ------------------------------------------------------------------
    # Aggregates (what Fig 2 / Table II report)
    # ------------------------------------------------------------------
    def mean(self, column: str) -> float:
        """Mean of one power column over all rows (all nodes, all times)."""
        if not self.rows:
            raise ValueError("no telemetry rows")
        return sum(r[column] for r in self.rows) / len(self.rows)

    def per_node_mean(self, column: str) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for host in self.hostnames:
            rows = self.samples_for(host)
            if rows:
                out[host] = sum(r[column] for r in rows) / len(rows)
        return out

    def max_node_power_w(self) -> float:
        """Max sampled node power across all nodes and times."""
        return max(r["node_w"] for r in self.rows)

    def cluster_power_series(self) -> List[tuple]:
        """(timestamp, summed node power) series across the job's nodes."""
        by_t: Dict[float, float] = {}
        for r in self.rows:
            by_t[r["timestamp"]] = by_t.get(r["timestamp"], 0.0) + r["node_w"]
        return sorted(by_t.items())

    # ------------------------------------------------------------------
    # CSV (the client's user-facing artefact)
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        buf = io.StringIO()
        buf.write(CSV_HEADER + "\n")
        hosts_with_rows = set()
        for r in self.rows:
            hosts_with_rows.add(r["hostname"])
            buf.write(
                f"{self.jobid},{r['hostname']},{r['timestamp']:.3f},"
                f"{r['node_w']:.3f},{r['cpu_w']:.3f},{r['mem_w']:.3f},"
                f"{r['gpu_w']:.3f},"
                f"{'complete' if self.node_complete[r['hostname']] else 'partial'}\n"
            )
        # A node with zero in-window samples (fully flushed buffer, or a
        # dead node's error record) must still be visible in the
        # artefact: emit an explicit marker row with empty value fields
        # rather than silently omitting the host.
        for host in self.hostnames:
            if host not in hosts_with_rows:
                buf.write(f"{self.jobid},{host},,,,,,partial\n")
        return buf.getvalue()

    def write_csv(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_csv())


class PowerMonitorClient:
    """External client for job-level telemetry.

    Parameters
    ----------
    instance:
        The Flux instance whose root agent serves requests.
    """

    def __init__(self, instance: FluxInstance) -> None:
        self.instance = instance

    def fetch(self, jobid: int, timeout_s: float = 60.0) -> JobPowerData:
        """Collect the job's telemetry; drives the simulator while waiting."""
        record = self.instance.kvs.get(f"jobs.{jobid}")
        if record is None:
            raise KeyError(f"no such job {jobid}")
        if record["t_start"] is None:
            raise RuntimeError(f"job {jobid} has not started; no telemetry window")
        t_start = float(record["t_start"])
        t_end = float(record["t_end"]) if record["t_end"] is not None else self.instance.sim.now

        broker0 = self.instance.brokers[0]
        future = broker0.rpc(
            0,
            GET_JOB_POWER_TOPIC,
            {"ranks": record["ranks"], "t_start": t_start, "t_end": t_end},
        )
        deadline = self.instance.sim.now + timeout_s
        while not future.triggered:
            if not self.instance.sim.step():
                raise RuntimeError("simulation drained before telemetry arrived")
            if self.instance.sim.now > deadline:
                raise TimeoutError("telemetry request timed out")
        payload = future.value  # raises FluxRPCError on service failure

        data = JobPowerData(jobid=jobid)
        for node_result in payload["nodes"]:
            host = node_result["hostname"]
            data.node_complete[host] = bool(node_result["complete"])
            if node_result.get("error"):
                # Degradation record: the node agent never answered
                # (crashed/hung/partitioned). No samples; flagged partial.
                data.node_error[host] = str(node_result["error"])
                continue
            for sample in node_result["samples"]:
                row = component_powers(sample)
                row["hostname"] = host
                row["timestamp"] = float(sample["timestamp"])
                data.rows.append(row)
        data.rows.sort(key=lambda r: (r["hostname"], r["timestamp"]))
        return data
