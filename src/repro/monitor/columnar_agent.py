"""Columnar-capable node agent.

Same module, same services, same wire behaviour as
:class:`~repro.monitor.node_agent.NodeAgentModule`; the only change is
where samples *live*. When the instance's columnar store has adopted
this agent's node and the exactness preconditions hold, the agent
enrols its sampler group columnar-side: ``self.buffer`` becomes a
:class:`~repro.columnar.store.ColumnarRing` (a lazy view over the
group's shared tick log) and the per-tick Python sample body
disappears entirely.

Eligibility (anything else falls back to the scalar path, silently and
per-agent — mirroring how ``monitor_batch_sampling`` degrades):

* the node must be adopted by the simulator's columnar store;
* sensors must be noise-free (noisy sensors draw per-sample RNG, so
  skipping sample bodies would shift every later draw);
* the per-sample accountant charge must equal the store-wide constant
  (deferred charge replay is only exact for identical addends);
* the group must not have already ticked at this instant (the same-
  instant catch-up corner keeps legacy semantics).

Demotion (snapshot restore) converts the ring back into an explicit
:class:`~repro.monitor.buffer.CircularBuffer` with identical logical
contents and moves the agent to the group's scalar list.
"""

from __future__ import annotations

from repro.flux.broker import Broker
from repro.monitor.buffer import DEFAULT_CAPACITY
from repro.monitor.node_agent import DEFAULT_SAMPLE_INTERVAL_S, NodeAgentModule


class ColumnarNodeAgent(NodeAgentModule):
    """Node agent whose ring buffer is implicit in the columnar store."""

    # Class-level defaults so the base __init__'s samples_taken = 0
    # assignment (routed through the property setter) works before
    # instance attributes exist.
    _ring = None
    _group = None
    _samples_base = 0
    _samples_plain = 0

    def __init__(
        self,
        broker: Broker,
        sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
        buffer_capacity: int = DEFAULT_CAPACITY,
        batch_sampling: bool = True,
    ) -> None:
        super().__init__(
            broker,
            sample_interval_s=sample_interval_s,
            buffer_capacity=buffer_capacity,
            batch_sampling=batch_sampling,
        )

    # ------------------------------------------------------------------
    # samples_taken: implicit while promoted
    # ------------------------------------------------------------------
    @property
    def samples_taken(self) -> int:
        ring = self._ring
        if ring is not None:
            return self._samples_base + ring.total_appended
        return self._samples_plain

    @samples_taken.setter
    def samples_taken(self, value: int) -> None:
        if self._ring is not None:
            raise TypeError(
                "samples_taken is implicit while promoted; demote first"
            )
        self._samples_plain = int(value)

    # ------------------------------------------------------------------
    # Promotion / demotion
    # ------------------------------------------------------------------
    def _enroll_columnar(self, group) -> bool:
        from repro.columnar.store import GroupColumns, columnar_of

        store = columnar_of(self.sim)
        node = self.broker.node
        if store is None or node._col_sink is not store:
            return False
        sensors = node.sensors
        if sensors.noise_sigma_w > 0.0 and sensors._rng is not None:
            return False
        if not store.accept_charge(self._charge_s):
            return False
        if group.last_tick_t == self.sim.now:
            return False
        cols = GroupColumns.ensure(group, store)
        self._samples_base = self._samples_plain
        self._ring = cols.add(self)
        self.buffer = self._ring
        self._group = group
        return True

    def _demote(self) -> None:
        """Back to an explicit buffer + the group's scalar list."""
        ring = self._ring
        if ring is None:
            return
        group = self._group
        plain = self._samples_base + ring.total_appended
        self.buffer = ring.to_circular_buffer()
        self._ring = None
        self._samples_base = 0
        self._samples_plain = plain
        self._group = None
        if group is not None and group.columns is not None:
            group.columns.remove(self)
            group.agents.append(self)

    # ------------------------------------------------------------------
    # Crash recovery: restored agents run scalar
    # ------------------------------------------------------------------
    def restore_state(self, state: dict) -> None:
        self._demote()
        super().restore_state(state)
