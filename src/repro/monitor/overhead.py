"""Telemetry overhead model.

The monitor runs as a separate thread in each broker; its cost to the
application is the CPU time spent in Variorum reads and buffer writes,
amortised over the sampling interval. Section IV-B measures the mean
slowdown at 1.2 % on Lassen and 0.04 % on Tioga — but attributes the
Lassen number's inflation to run-to-run variability at 1–2 nodes (>20 %
spread for Laghos/Quicksilver); the abstract's headline average is
0.4 %. We therefore model the *true* sampling cost per platform and let
the jitter model produce the apparent inflation:

* Lassen's OCC read path traverses firmware and is comparatively slow:
  ~7 ms per sample → 0.35 % at the 2 s default interval.
* Tioga's MSR/E-SMI reads are fast: ~0.8 ms per sample → 0.04 %.
"""

from __future__ import annotations

#: Per-sample collection cost (seconds) by platform.
SAMPLE_COST_S = {
    "lassen": 7.0e-3,
    "tioga": 0.8e-3,
    "generic": 2.0e-3,
}


def sampling_overhead_fraction(platform: str, sample_interval_s: float) -> float:
    """Fraction of node compute capacity consumed by telemetry.

    Scales inversely with the sampling interval: sampling at 1 s doubles
    the overhead of the 2 s default (the overhead-versus-rate ablation
    bench sweeps this).
    """
    if sample_interval_s <= 0:
        raise ValueError("sample interval must be positive")
    cost = SAMPLE_COST_S.get(platform, SAMPLE_COST_S["generic"])
    return min(0.5, cost / sample_interval_s)
