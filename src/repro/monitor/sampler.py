"""Batched sampling: one engine event per interval for all node agents.

The legacy layout gives every node agent its own periodic timer, so a
792-node instance pushes 792 heap events through the engine every 2 s
window just to run 792 independent, purely-local sample bodies. This
coordinator coalesces them: agents sharing a tick grid register into
one group, and a single periodic event walks the group each interval.

Determinism invariants (docs/performance.md has the full argument):

* **Grouping is exact, not approximate.** A group key is the pair
  ``(interval, first_tick_time)``. Only agents whose legacy timers
  would have produced bitwise-identical nominal grids (same float
  accumulation ``first + period + period + ...``) ever share a group;
  an agent restarted mid-interval gets its own group on its own grid,
  exactly like its own timer.
* **In-group order is registration order**, which is the sequence
  order the agents' individual timers were created in — so same-tick
  samples run in the same relative order as the per-node events did.
* **Sample bodies are local.** They append to the node's ring buffer,
  update per-rank gauges and charge the overhead accountant; they
  never send messages, schedule events or draw cross-node RNG, so
  fusing them into one callback cannot reorder anything observable.
* **Telemetry is batched but value-identical**: the shared
  ``monitor_samples_total`` counter takes one ``inc(n)`` per tick —
  integer-valued float addition is exact, so the total equals n
  per-sample ``inc(1)`` calls.

A registration that arrives at an instant whose group tick has already
fired this same instant (e.g. an agent reloaded by a same-time event
scheduled after the tick) gets a one-off catch-up sample — the legacy
timer would likewise have fired late, after the current event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.simkernel.engine import ScheduledEvent, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.monitor.node_agent import NodeAgentModule

_ATTR = "_monitor_batch_sampler"


def sampler_of(sim: Simulator) -> "BatchSampler":
    """The per-simulator coordinator, created on first use."""
    sampler = getattr(sim, _ATTR, None)
    if sampler is None:
        sampler = BatchSampler(sim)
        setattr(sim, _ATTR, sampler)
    return sampler


class _SampleGroup:
    """Agents sharing one tick grid, driven by one reused engine event."""

    __slots__ = ("key", "agents", "event", "last_tick_t", "_sampler")

    def __init__(
        self,
        sampler: "BatchSampler",
        interval: float,
        first_time: float,
    ) -> None:
        self.key = (interval, first_time)
        self.agents: List["NodeAgentModule"] = []
        self.last_tick_t: Optional[float] = None
        self._sampler = sampler
        self.event: ScheduledEvent = sampler.sim.schedule_periodic(
            interval, self._tick, first_time=first_time
        )

    def _tick(self) -> None:
        agents = self.agents
        if not agents:
            return
        sampler = self._sampler
        now = sampler.sim.now
        self.last_tick_t = now
        sampler.samples_counter(agents[0]).inc(len(agents))
        for agent in agents:
            agent.sample_in_batch(now)


class BatchSampler:
    """Registry of sample groups for one simulator."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._groups: Dict[Tuple[float, float], _SampleGroup] = {}
        self._samples_counter = None

    def samples_counter(self, agent: "NodeAgentModule"):
        """The shared samples counter, resolved lazily so the metric
        family registers at the same moment the per-agent path would."""
        if self._samples_counter is None:
            self._samples_counter = agent.broker.telemetry.metrics.counter(
                "monitor_samples_total",
                help="Variorum samples appended to node-agent ring buffers",
            )
        return self._samples_counter

    def register(self, agent: "NodeAgentModule") -> None:
        """Start sampling ``agent`` on its grid (first tick now)."""
        key = (agent.sample_interval_s, self.sim.now)
        group = self._groups.get(key)
        if group is None:
            group = _SampleGroup(self, agent.sample_interval_s, self.sim.now)
            self._groups[key] = group
        elif group.last_tick_t == self.sim.now:
            # The group already ticked at this instant; the agent's own
            # timer would still have fired (later in sequence order).
            self.sim.schedule(0.0, self._catch_up, agent, group)
        group.agents.append(agent)

    def unregister(self, agent: "NodeAgentModule") -> None:
        """Stop sampling ``agent``; empty groups cancel their event."""
        for key, group in list(self._groups.items()):
            if agent in group.agents:
                group.agents.remove(agent)
                if not group.agents:
                    group.event.cancel()
                    del self._groups[key]
                return

    def _catch_up(self, agent: "NodeAgentModule", group: _SampleGroup) -> None:
        if agent in group.agents:
            self.samples_counter(agent).inc()
            agent.sample_in_batch(self.sim.now)
