"""Batched sampling: one engine event per interval for all node agents.

The legacy layout gives every node agent its own periodic timer, so a
792-node instance pushes 792 heap events through the engine every 2 s
window just to run 792 independent, purely-local sample bodies. This
coordinator coalesces them: agents sharing a tick grid register into
one group, and a single periodic event walks the group each interval.

Determinism invariants (docs/performance.md has the full argument):

* **Grouping is exact, not approximate.** A group key is the pair
  ``(interval, first_tick_time)``. Only agents whose legacy timers
  would have produced bitwise-identical nominal grids (same float
  accumulation ``first + period + period + ...``) ever share a group;
  an agent restarted mid-interval gets its own group on its own grid,
  exactly like its own timer.
* **In-group order is registration order**, which is the sequence
  order the agents' individual timers were created in — so same-tick
  samples run in the same relative order as the per-node events did.
* **Sample bodies are local.** They append to the node's ring buffer,
  update per-rank gauges and charge the overhead accountant; they
  never send messages, schedule events or draw cross-node RNG, so
  fusing them into one callback cannot reorder anything observable.
* **Telemetry is batched but value-identical**: the shared
  ``monitor_samples_total`` counter takes one ``inc(n)`` per tick —
  integer-valued float addition is exact, so the total equals n
  per-sample ``inc(1)`` calls.

A registration that arrives at an instant whose group tick has already
fired this same instant (e.g. an agent reloaded by a same-time event
scheduled after the tick) gets a one-off catch-up sample — the legacy
timer would likewise have fired late, after the current event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.simkernel.engine import ScheduledEvent, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.monitor.node_agent import NodeAgentModule

_ATTR = "_monitor_batch_sampler"


def sampler_of(sim: Simulator) -> "BatchSampler":
    """The per-simulator coordinator, created on first use."""
    sampler = getattr(sim, _ATTR, None)
    if sampler is None:
        sampler = BatchSampler(sim)
        setattr(sim, _ATTR, sampler)
    return sampler


class _SampleGroup:
    """Agents sharing one tick grid, driven by one reused engine event."""

    __slots__ = ("key", "agents", "columns", "event", "last_tick_t", "_sampler")

    def __init__(
        self,
        sampler: "BatchSampler",
        interval: float,
        first_time: float,
    ) -> None:
        self.key = (interval, first_time)
        self.agents: List["NodeAgentModule"] = []
        #: Columnar members (a ``repro.columnar`` GroupColumns), or
        #: None while every member is on the scalar path.
        self.columns = None
        self.last_tick_t: Optional[float] = None
        self._sampler = sampler
        self.event: ScheduledEvent = sampler.sim.schedule_periodic(
            interval, self._tick, first_time=first_time
        )

    def _tick(self) -> None:
        agents = self.agents
        cols = self.columns
        n_cols = len(cols.agents) if cols is not None else 0
        n = len(agents) + n_cols
        if n == 0:
            return
        sampler = self._sampler
        now = sampler.sim.now
        self.last_tick_t = now
        any_agent = agents[0] if agents else cols.agents[0]
        sampler.samples_counter(any_agent).inc(n)
        if n_cols:
            cols.tick(now)
        for agent in agents:
            agent.sample_in_batch(now)


class BatchSampler:
    """Registry of sample groups for one simulator."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._groups: Dict[Tuple[float, float], _SampleGroup] = {}
        self._samples_counter = None

    def samples_counter(self, agent: "NodeAgentModule"):
        """The shared samples counter, resolved lazily so the metric
        family registers at the same moment the per-agent path would."""
        if self._samples_counter is None:
            self._samples_counter = agent.broker.telemetry.metrics.counter(
                "monitor_samples_total",
                help="Variorum samples appended to node-agent ring buffers",
            )
        return self._samples_counter

    def register(self, agent: "NodeAgentModule") -> None:
        """Start sampling ``agent`` on its grid (first tick now)."""
        interval = agent.sample_interval_s
        now = self.sim.now
        key = (interval, now)
        group = self._groups.get(key)
        if group is None:
            # Mid-run enrolment: an existing group whose grid lands on
            # this exact instant produces the same bitwise tick times a
            # fresh timer would, so join it instead of spawning a
            # singleton group that drives its own engine event forever.
            group = self._aligned_group(interval, now)
        if group is None:
            group = _SampleGroup(self, interval, now)
            self._groups[key] = group
        if agent._enroll_columnar(group):
            return
        if group.last_tick_t == now:
            # The group already ticked at this instant; the agent's own
            # timer would still have fired (later in sequence order).
            self.sim.schedule(0.0, self._catch_up, agent, group)
        group.agents.append(agent)

    def _aligned_group(
        self, interval: float, now: float
    ) -> Optional[_SampleGroup]:
        """An existing group whose nominal grid hits ``now`` exactly.

        Grid times are the float-accumulated ``first + interval + ...``
        sequence, so equality is only ever claimed when the group either
        just ticked at this instant (``last_tick_t == now``) or has its
        next tick pending at it (``event.time == now``) — from that
        shared point on, both accumulations are bitwise identical.
        """
        for group in self._groups.values():
            if group.key[0] != interval:
                continue
            if group.last_tick_t == now or group.event.time == now:
                return group
        return None

    def unregister(self, agent: "NodeAgentModule") -> None:
        """Stop sampling ``agent``; empty groups cancel their event."""
        for key, group in list(self._groups.items()):
            cols = group.columns
            if agent in group.agents:
                group.agents.remove(agent)
            elif cols is not None and agent in cols.agents:
                cols.remove(agent)
            else:
                continue
            if not group.agents and (cols is None or not cols.agents):
                group.event.cancel()
                del self._groups[key]
            return

    def _catch_up(self, agent: "NodeAgentModule", group: _SampleGroup) -> None:
        if agent in group.agents:
            self.samples_counter(agent).inc()
            agent.sample_in_batch(self.sim.now)
