"""``flux-power-monitor``: stateless job-level power telemetry.

Design (Section III-A): every node runs a :class:`NodeAgentModule` that
samples Variorum every 2 s into a fixed-size circular buffer (default
100,000 samples ≈ 43.4 MiB) — the agent does not know what jobs exist,
which keeps its overhead tiny. A :class:`RootAgentModule` at the TBON
root serves external clients: given a job's ranks and time window, it
collects the matching samples from the node agents over the overlay and
relays them. The :class:`PowerMonitorClient` is the external Python
client: it looks the job up (nodes, start/end) and produces a CSV with
a per-node complete/partial flag, exactly like the paper's tool.
"""

from repro.monitor.buffer import CircularBuffer
from repro.monitor.node_agent import NodeAgentModule
from repro.monitor.root_agent import RootAgentModule
from repro.monitor.client import PowerMonitorClient, JobPowerData
from repro.monitor.module import PowerMonitor, attach_monitor
from repro.monitor.overhead import sampling_overhead_fraction

__all__ = [
    "CircularBuffer",
    "NodeAgentModule",
    "RootAgentModule",
    "PowerMonitorClient",
    "JobPowerData",
    "PowerMonitor",
    "attach_monitor",
    "sampling_overhead_fraction",
]
