"""The monitor's root agent (TBON rank 0).

Serves external clients: a ``power-monitor.get-job-power`` request
carries a job's ranks and time window; the root agent fans RPCs out to
the node agents, gathers their buffered samples, and relays the
aggregate back. Two collection strategies are provided:

* ``"fanout"`` (default) — the root RPCs every node agent directly.
  This is what the paper's implementation does.
* ``"tree"`` — requests aggregate hierarchically along the TBON (each
  broker collects its subtree). Same result; fewer root-link messages.
  Exercised by the TBON ablation bench.

Collection degrades per node rather than failing whole queries: each
fan-out leg runs a per-node timeout with bounded retry/backoff
(:class:`~repro.flux.module.RetryConfig`), and a node that never
answers contributes an *error record* — same shape as a node result but
with empty samples, ``complete=False`` and an ``error`` string — so one
dead node agent marks one CSV row partial instead of turning the whole
job query into an errnum=5 failure. See docs/failures.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.flux.broker import Broker
from repro.flux.message import (
    CachedSizeDict,
    FluxRPCError,
    Message,
    estimate_payload_bytes,
)
from repro.flux.module import Module, RetryConfig
from repro.monitor.node_agent import QUERY_TOPIC
from repro.simkernel import AllOf, SimEvent
from repro.telemetry import AGGREGATION_COST_PER_NODE_S

GET_JOB_POWER_TOPIC = "power-monitor.get-job-power"
SUBTREE_TOPIC = "power-monitor.query-subtree"


def _exhaust_budget(cfg: RetryConfig) -> float:
    """Worst-case wall time before a node leg gives up (all attempts)."""
    return cfg.timeout_s * sum(cfg.backoff ** i for i in range(cfg.retries + 1))


def _subtree_retry(cfg: RetryConfig, overlay, child: int, subranks) -> RetryConfig:
    """Timeout policy for one subtree leg of the tree strategy.

    A live aggregator always answers — worst case after its deepest
    descendant leg exhausts its node-level retries — so re-sending a
    subtree query is never useful (it would just restart the child's
    collection); what matters is waiting long enough. The single-attempt
    timeout covers the node-leg exhaust budget plus one ``timeout_s`` of
    slack per tree level below us, so each level's deadline strictly
    contains its children's.
    """
    height = max(overlay.depth(r) for r in subranks) - overlay.depth(child) + 1
    return RetryConfig(
        timeout_s=_exhaust_budget(cfg) + height * cfg.timeout_s,
        retries=0,
        backoff=cfg.backoff,
    )


def _subtree_query(
    sub: List[int], t0: float, t1: float, extra: Dict[str, Any]
) -> Dict[str, Any]:
    """Build one subtree-leg query payload, pre-priced.

    The estimator charges a fixed 8 bytes per numeric leaf, so the
    payload's wire size is the size of the same payload with an empty
    rank list plus 8 bytes per rank — computed arithmetically instead
    of walking rank lists that collectively cover the whole subtree at
    every level of the TBON.
    """
    payload = CachedSizeDict(ranks=sub, t_start=t0, t_end=t1, **extra)
    probe = dict(payload)
    probe["ranks"] = ()
    payload._size_cache = estimate_payload_bytes(probe) + 8 * len(sub)
    return payload


def _merge_legs(results: List[List[Dict[str, Any]]]) -> List[Dict[str, Any]]:
    """Flatten per-leg record lists in leg order, without copying records.

    A lone leg's list is passed through as-is: response payloads are
    write-once after they are handed to ``respond``, so an aggregator
    can forward its only child's list up the tree instead of rebuilding
    it at every level.
    """
    if len(results) == 1:
        return results[0]
    merged: List[Dict[str, Any]] = []
    for leg in results:
        merged.extend(leg)
    return merged


def _error_records(
    broker: Broker, ranks, exc: Exception
) -> List[Dict[str, Any]]:
    """Per-node degradation records for ranks that never answered."""
    records = []
    for rank in sorted(ranks):
        peer = broker._registry.get(rank)
        hostname = (
            peer.node.hostname
            if peer is not None and peer.node is not None
            else f"rank{rank}"
        )
        records.append(
            {
                "hostname": hostname,
                "rank": rank,
                "samples": [],
                "complete": False,
                "downsampled": False,
                "error": str(exc),
                "errnum": getattr(exc, "errnum", 5),
            }
        )
    return records


class RootAgentModule(Module):
    """Aggregates job telemetry from node agents for external clients."""

    name = "power-monitor-root"

    def __init__(
        self,
        broker: Broker,
        strategy: str = "fanout",
        retry: Optional[RetryConfig] = None,
    ) -> None:
        if broker.rank != 0:
            raise ValueError("root agent runs at the TBON root (rank 0)")
        if strategy not in ("fanout", "tree"):
            raise ValueError(f"unknown strategy {strategy!r}")
        super().__init__(broker)
        self.strategy = strategy
        self.retry = retry if retry is not None else RetryConfig()

    def on_load(self) -> None:
        self.register_service(GET_JOB_POWER_TOPIC, self._handle_get_job_power)

    # ------------------------------------------------------------------
    # Client-facing service
    # ------------------------------------------------------------------
    def _handle_get_job_power(self, broker: Broker, msg: Message) -> None:
        try:
            ranks = [int(r) for r in msg.payload["ranks"]]
            t_start = float(msg.payload["t_start"])
            t_end = float(msg.payload["t_end"])
        except (KeyError, TypeError, ValueError):
            broker.respond(msg, errnum=22, errmsg="need ranks, t_start, t_end")
            return
        if not ranks:
            broker.respond(msg, errnum=22, errmsg="empty rank list")
            return
        max_samples = msg.payload.get("max_samples")
        self.broker.telemetry.metrics.counter(
            "monitor_aggregations_total",
            labels={"strategy": self.strategy},
            help="job-power aggregation requests served by the root agent",
        ).inc()
        if self.strategy == "tree":
            self.spawn(self._collect_tree(msg, ranks, t_start, t_end, max_samples))
        else:
            self.spawn(self._collect_fanout(msg, ranks, t_start, t_end, max_samples))

    def _finish_aggregation(
        self, t_start: float, n_ranks: int, nodes: List[Dict[str, Any]]
    ) -> None:
        """Record latency/trace/overhead for one completed aggregation."""
        tel = self.broker.telemetry
        tel.metrics.histogram(
            "monitor_aggregation_latency_seconds",
            help="root-agent fan-in latency, request arrival to response",
        ).observe(self.sim.now - t_start)
        tel.tracer.span(
            "monitor.aggregate", "monitor", t_start, rank=self.broker.rank,
            nodes=n_ranks, strategy=self.strategy,
        )
        tel.accountant.charge("monitor", AGGREGATION_COST_PER_NODE_S * n_ranks)
        n_errors = sum(1 for rec in nodes if rec.get("error"))
        if n_errors:
            tel.metrics.counter(
                "monitor_degraded_aggregations_total",
                labels={"strategy": self.strategy},
                help="aggregations that completed with >= 1 per-node error record",
            ).inc()
            tel.tracer.instant(
                "monitor.degraded", "monitor", rank=self.broker.rank,
                failed_nodes=n_errors, of=n_ranks, strategy=self.strategy,
            )

    def _watch_node(self, rank: int, query: Dict[str, Any], future: SimEvent):
        """One fan-out leg: retry the node query, degrade on exhaustion."""
        try:
            res = yield from self.rpc_with_retry(
                rank, QUERY_TOPIC, query, retry=self.retry, first_future=future
            )
            return [res]
        except FluxRPCError as exc:
            return _error_records(self.broker, [rank], exc)

    def _watch_subtree(self, child: int, subranks, payload, future: SimEvent):
        """One tree leg: a dead child degrades its whole subtree."""
        try:
            res = yield from self.rpc_with_retry(
                child, SUBTREE_TOPIC, payload,
                retry=_subtree_retry(
                    self.retry, self.broker.overlay, child, subranks
                ),
                first_future=future,
            )
            return res["nodes"]
        except FluxRPCError as exc:
            return _error_records(self.broker, subranks, exc)

    def _collect_fanout(
        self, msg: Message, ranks: List[int], t0: float, t1: float, max_samples=None
    ):
        t_begin = self.sim.now
        # One shared dict for every leg; CachedSizeDict so the wire
        # size is walked once, not once per node-leg message.
        query = CachedSizeDict(t_start=t0, t_end=t1)
        if max_samples is not None:
            query["max_samples"] = max_samples
        # Send every request first (send order fixes the deterministic
        # latency-draw order), then hand each pending future to a
        # watcher that owns its timeout/retry/degradation.
        futures = [self.rpc(rank, QUERY_TOPIC, query) for rank in ranks]
        watchers = [
            self.spawn(self._watch_node(rank, query, fut))
            for rank, fut in zip(ranks, futures)
        ]
        results = yield AllOf(self.sim, watchers)
        nodes = _merge_legs(results)
        self._finish_aggregation(t_begin, len(ranks), nodes)
        self.broker.respond(msg, {"nodes": nodes})

    def _collect_tree(
        self, msg: Message, ranks: List[int], t0: float, t1: float, max_samples=None
    ):
        """Hierarchical collection: ask each root child for its subtree."""
        t_begin = self.sim.now
        wanted = set(ranks)
        extra = {} if max_samples is None else {"max_samples": max_samples}
        legs = []  # (kind, target, subranks, payload)
        if 0 in wanted:
            legs.append(("node", 0, [0], {"t_start": t0, "t_end": t1, **extra}))
        for child in self.broker.overlay.children(0):
            subtree = _subtree_ranks(self.broker.overlay, child) & wanted
            if subtree:
                sub = sorted(subtree)
                legs.append(
                    ("subtree", child, sub, _subtree_query(sub, t0, t1, extra))
                )
        futures = [
            self.rpc(target, QUERY_TOPIC if kind == "node" else SUBTREE_TOPIC, payload)
            for kind, target, _, payload in legs
        ]
        watchers = [
            self.spawn(
                self._watch_node(target, payload, fut)
                if kind == "node"
                else self._watch_subtree(target, subranks, payload, fut)
            )
            for (kind, target, subranks, payload), fut in zip(legs, futures)
        ]
        results = yield AllOf(self.sim, watchers)
        nodes = _merge_legs(results)
        self._finish_aggregation(t_begin, len(ranks), nodes)
        self.broker.respond(msg, {"nodes": nodes})


class SubtreeAggregatorModule(Module):
    """Loaded on every broker when using the ``tree`` strategy.

    Answers :data:`SUBTREE_TOPIC` by querying its own node agent plus
    recursively delegating to children whose subtrees intersect the
    request. Degrades the same way the root does: an unresponsive
    descendant becomes error records inside an errnum=0 response, so
    partial data propagates up the tree instead of poisoning it.
    """

    name = "power-monitor-subtree"

    def __init__(
        self, broker: Broker, retry: Optional[RetryConfig] = None
    ) -> None:
        super().__init__(broker)
        self.retry = retry if retry is not None else RetryConfig()

    def on_load(self) -> None:
        self.register_service(SUBTREE_TOPIC, self._handle_subtree)

    def _handle_subtree(self, broker: Broker, msg: Message) -> None:
        ranks = set(int(r) for r in msg.payload.get("ranks", []))
        t0 = float(msg.payload["t_start"])
        t1 = float(msg.payload["t_end"])
        self.spawn(self._collect(msg, ranks, t0, t1, msg.payload.get("max_samples")))

    def _watch_node(self, rank: int, query, future: SimEvent):
        try:
            res = yield from self.rpc_with_retry(
                rank, QUERY_TOPIC, query, retry=self.retry, first_future=future
            )
            return [res]
        except FluxRPCError as exc:
            return _error_records(self.broker, [rank], exc)

    def _watch_subtree(self, child: int, subranks, payload, future: SimEvent):
        try:
            res = yield from self.rpc_with_retry(
                child, SUBTREE_TOPIC, payload,
                retry=_subtree_retry(
                    self.retry, self.broker.overlay, child, subranks
                ),
                first_future=future,
            )
            return res["nodes"]
        except FluxRPCError as exc:
            return _error_records(self.broker, subranks, exc)

    def _collect(self, msg: Message, ranks, t0: float, t1: float, max_samples=None):
        extra = {} if max_samples is None else {"max_samples": max_samples}
        legs = []
        if self.broker.rank in ranks:
            legs.append(
                (
                    "node",
                    self.broker.rank,
                    [self.broker.rank],
                    {"t_start": t0, "t_end": t1, **extra},
                )
            )
        for child in self.broker.overlay.children(self.broker.rank):
            subtree = _subtree_ranks(self.broker.overlay, child) & ranks
            if subtree:
                sub = sorted(subtree)
                legs.append(
                    ("subtree", child, sub, _subtree_query(sub, t0, t1, extra))
                )
        futures = [
            self.rpc(target, QUERY_TOPIC if kind == "node" else SUBTREE_TOPIC, payload)
            for kind, target, _, payload in legs
        ]
        watchers = [
            self.spawn(
                self._watch_node(target, payload, fut)
                if kind == "node"
                else self._watch_subtree(target, subranks, payload, fut)
            )
            for (kind, target, subranks, payload), fut in zip(legs, futures)
        ]
        results = yield AllOf(self.sim, watchers)
        nodes = _merge_legs(results)
        self.broker.respond(msg, {"nodes": nodes})


def _subtree_ranks(overlay, root: int):
    """All ranks in the subtree rooted at ``root`` (inclusive, cached)."""
    return overlay.subtree_ranks(root)
