"""The monitor's root agent (TBON rank 0).

Serves external clients: a ``power-monitor.get-job-power`` request
carries a job's ranks and time window; the root agent fans RPCs out to
the node agents, gathers their buffered samples, and relays the
aggregate back. Two collection strategies are provided:

* ``"fanout"`` (default) — the root RPCs every node agent directly.
  This is what the paper's implementation does.
* ``"tree"`` — requests aggregate hierarchically along the TBON (each
  broker collects its subtree). Same result; fewer root-link messages.
  Exercised by the TBON ablation bench.
"""

from __future__ import annotations

from typing import List

from repro.flux.broker import Broker
from repro.flux.message import Message
from repro.flux.module import Module
from repro.monitor.node_agent import QUERY_TOPIC
from repro.simkernel import AllOf
from repro.telemetry import AGGREGATION_COST_PER_NODE_S

GET_JOB_POWER_TOPIC = "power-monitor.get-job-power"
SUBTREE_TOPIC = "power-monitor.query-subtree"


class RootAgentModule(Module):
    """Aggregates job telemetry from node agents for external clients."""

    name = "power-monitor-root"

    def __init__(self, broker: Broker, strategy: str = "fanout") -> None:
        if broker.rank != 0:
            raise ValueError("root agent runs at the TBON root (rank 0)")
        if strategy not in ("fanout", "tree"):
            raise ValueError(f"unknown strategy {strategy!r}")
        super().__init__(broker)
        self.strategy = strategy

    def on_load(self) -> None:
        self.register_service(GET_JOB_POWER_TOPIC, self._handle_get_job_power)

    # ------------------------------------------------------------------
    # Client-facing service
    # ------------------------------------------------------------------
    def _handle_get_job_power(self, broker: Broker, msg: Message) -> None:
        try:
            ranks = [int(r) for r in msg.payload["ranks"]]
            t_start = float(msg.payload["t_start"])
            t_end = float(msg.payload["t_end"])
        except (KeyError, TypeError, ValueError):
            broker.respond(msg, errnum=22, errmsg="need ranks, t_start, t_end")
            return
        if not ranks:
            broker.respond(msg, errnum=22, errmsg="empty rank list")
            return
        max_samples = msg.payload.get("max_samples")
        self.broker.telemetry.metrics.counter(
            "monitor_aggregations_total",
            labels={"strategy": self.strategy},
            help="job-power aggregation requests served by the root agent",
        ).inc()
        if self.strategy == "tree":
            self.spawn(self._collect_tree(msg, ranks, t_start, t_end, max_samples))
        else:
            self.spawn(self._collect_fanout(msg, ranks, t_start, t_end, max_samples))

    def _finish_aggregation(self, t_start: float, n_ranks: int) -> None:
        """Record latency/trace/overhead for one completed aggregation."""
        tel = self.broker.telemetry
        tel.metrics.histogram(
            "monitor_aggregation_latency_seconds",
            help="root-agent fan-in latency, request arrival to response",
        ).observe(self.sim.now - t_start)
        tel.tracer.span(
            "monitor.aggregate", "monitor", t_start, rank=self.broker.rank,
            nodes=n_ranks, strategy=self.strategy,
        )
        tel.accountant.charge("monitor", AGGREGATION_COST_PER_NODE_S * n_ranks)

    def _collect_fanout(
        self, msg: Message, ranks: List[int], t0: float, t1: float, max_samples=None
    ):
        t_begin = self.sim.now
        query = {"t_start": t0, "t_end": t1}
        if max_samples is not None:
            query["max_samples"] = max_samples
        futures = [self.rpc(rank, QUERY_TOPIC, query) for rank in ranks]
        try:
            results = yield AllOf(self.sim, futures)
        except Exception as exc:  # node agent missing / errored
            self.broker.respond(msg, errnum=5, errmsg=str(exc))
            return
        self._finish_aggregation(t_begin, len(ranks))
        self.broker.respond(msg, {"nodes": results})

    def _collect_tree(
        self, msg: Message, ranks: List[int], t0: float, t1: float, max_samples=None
    ):
        """Hierarchical collection: ask each root child for its subtree."""
        t_begin = self.sim.now
        wanted = set(ranks)
        extra = {} if max_samples is None else {"max_samples": max_samples}
        futures = []
        # Rank 0 itself, if requested.
        if 0 in wanted:
            futures.append(
                self.rpc(0, QUERY_TOPIC, {"t_start": t0, "t_end": t1, **extra})
            )
        for child in self.broker.overlay.children(0):
            subtree = _subtree_ranks(self.broker.overlay, child) & wanted
            if subtree:
                futures.append(
                    self.rpc(
                        child,
                        SUBTREE_TOPIC,
                        {
                            "ranks": sorted(subtree),
                            "t_start": t0,
                            "t_end": t1,
                            **extra,
                        },
                    )
                )
        try:
            results = yield AllOf(self.sim, futures)
        except Exception as exc:
            self.broker.respond(msg, errnum=5, errmsg=str(exc))
            return
        nodes = []
        for res in results:
            if "nodes" in res:
                nodes.extend(res["nodes"])
            else:
                nodes.append(res)
        self._finish_aggregation(t_begin, len(ranks))
        self.broker.respond(msg, {"nodes": nodes})


class SubtreeAggregatorModule(Module):
    """Loaded on every broker when using the ``tree`` strategy.

    Answers :data:`SUBTREE_TOPIC` by querying its own node agent plus
    recursively delegating to children whose subtrees intersect the
    request.
    """

    name = "power-monitor-subtree"

    def on_load(self) -> None:
        self.register_service(SUBTREE_TOPIC, self._handle_subtree)

    def _handle_subtree(self, broker: Broker, msg: Message) -> None:
        ranks = set(int(r) for r in msg.payload.get("ranks", []))
        t0 = float(msg.payload["t_start"])
        t1 = float(msg.payload["t_end"])
        self.spawn(self._collect(msg, ranks, t0, t1, msg.payload.get("max_samples")))

    def _collect(self, msg: Message, ranks, t0: float, t1: float, max_samples=None):
        extra = {} if max_samples is None else {"max_samples": max_samples}
        futures = []
        if self.broker.rank in ranks:
            futures.append(
                self.rpc(
                    self.broker.rank,
                    QUERY_TOPIC,
                    {"t_start": t0, "t_end": t1, **extra},
                )
            )
        for child in self.broker.overlay.children(self.broker.rank):
            subtree = _subtree_ranks(self.broker.overlay, child) & ranks
            if subtree:
                futures.append(
                    self.rpc(
                        child,
                        SUBTREE_TOPIC,
                        {
                            "ranks": sorted(subtree),
                            "t_start": t0,
                            "t_end": t1,
                            **extra,
                        },
                    )
                )
        try:
            results = yield AllOf(self.sim, futures)
        except Exception as exc:
            self.broker.respond(msg, errnum=5, errmsg=str(exc))
            return
        nodes = []
        for res in results:
            if "nodes" in res:
                nodes.extend(res["nodes"])
            else:
                nodes.append(res)
        self.broker.respond(msg, {"nodes": nodes})


def _subtree_ranks(overlay, root: int) -> set:
    """All ranks in the subtree rooted at ``root`` (inclusive)."""
    out = set()
    stack = [root]
    while stack:
        r = stack.pop()
        out.add(r)
        stack.extend(overlay.children(r))
    return out
