"""Fixed-capacity circular sample buffer.

The node agent stores Variorum JSON samples in a ring: when full, the
oldest sample is overwritten. The paper's default is 100,000 samples ≈
43.4 MiB (~455 bytes per serialised Variorum JSON object); at the 2 s
default sampling rate that is ~2.3 days of history per node. A job
whose start predates the oldest retained sample gets a *partial* data
flag in the client CSV.

The buffer itself is passive (no simulator access); the node agent
mirrors its state into the observability hub after each write — fill
level as ``monitor_buffer_occupancy{rank=...}``, wrap-around losses as
``monitor_buffer_dropped{rank=...}``, administrative flushes as
``monitor_buffer_flushes_total`` (see docs/observability.md).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, List, Optional, Tuple

#: Bytes per serialised sample used for capacity accounting; chosen so
#: the paper's default (100,000 samples) comes to 43.4 MiB.
DEFAULT_SAMPLE_BYTES = 455

#: The paper's default buffer capacity.
DEFAULT_CAPACITY = 100_000


class CircularBuffer:
    """A ring buffer of (timestamp, sample) pairs, oldest-first.

    Timestamps must be appended in nondecreasing order (they come from
    one periodic sampler), which lets range queries bisect.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._buf: deque = deque(maxlen=self.capacity)
        self.total_appended = 0

    def append(self, timestamp: float, sample: Dict[str, Any]) -> None:
        if self._buf and timestamp < self._buf[-1][0]:
            raise ValueError(
                f"timestamps must be nondecreasing "
                f"({timestamp} < {self._buf[-1][0]})"
            )
        self._buf.append((float(timestamp), sample))
        self.total_appended += 1

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def dropped(self) -> int:
        """Samples overwritten because the ring wrapped."""
        return self.total_appended - len(self._buf)

    @property
    def oldest_timestamp(self) -> Optional[float]:
        return self._buf[0][0] if self._buf else None

    @property
    def newest_timestamp(self) -> Optional[float]:
        return self._buf[-1][0] if self._buf else None

    def size_bytes(self, per_sample: int = DEFAULT_SAMPLE_BYTES) -> int:
        """Estimated storage footprint at the current fill level."""
        return len(self._buf) * per_sample

    def capacity_bytes(self, per_sample: int = DEFAULT_SAMPLE_BYTES) -> int:
        """Storage footprint when full (the paper's 43.4 MiB)."""
        return self.capacity * per_sample

    def range(
        self, t_start: float, t_end: float
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Samples with ``t_start <= t <= t_end``, plus a completeness flag.

        ``complete`` is False when the buffer's retained history begins
        after ``t_start`` — i.e. some of the requested window has been
        flushed out (the paper's partial-data case).
        """
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        samples = [s for (t, s) in self._buf if t_start <= t <= t_end]
        oldest = self.oldest_timestamp
        complete = self.total_appended == 0 or (
            oldest is not None and (oldest <= t_start or self.dropped == 0)
        )
        return samples, complete

    def flush(self) -> int:
        """Drop retained samples (administrative flush); returns count.

        ``total_appended`` is preserved so later range queries still
        know history was lost and report partial data.
        """
        n = len(self._buf)
        self._buf.clear()
        return n

    def snapshot(self) -> List[Tuple[float, Dict[str, Any]]]:
        """Copy of current contents (oldest first); for tests/inspection."""
        return list(self._buf)
