"""Fixed-capacity circular sample buffer.

The node agent stores Variorum JSON samples in a ring: when full, the
oldest sample is overwritten. The paper's default is 100,000 samples ≈
43.4 MiB (~455 bytes per serialised Variorum JSON object); at the 2 s
default sampling rate that is ~2.3 days of history per node. A job
whose start predates the oldest retained sample gets a *partial* data
flag in the client CSV.

Storage is a pair of pre-sized Python lists used as a ring (timestamps
and samples side by side) with a head index at the oldest entry.
Because timestamps are appended in nondecreasing order, the ring is a
rotated sorted array and :meth:`CircularBuffer.range` locates the
window with an O(log n) bisection over logical positions instead of
scanning all retained samples — the difference between microseconds
and milliseconds on a full 100k-sample buffer (see
``benchmarks/test_monitor_buffer.py``).

The buffer itself is passive (no simulator access); the node agent
mirrors its state into the observability hub after each write — fill
level as ``monitor_buffer_occupancy{rank=...}``, wrap-around losses as
``monitor_buffer_dropped{rank=...}``, administrative flushes as
``monitor_buffer_flushes_total`` (see docs/observability.md).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

#: Bytes per serialised sample used for capacity accounting; chosen so
#: the paper's default (100,000 samples) comes to 43.4 MiB.
DEFAULT_SAMPLE_BYTES = 455

#: The paper's default buffer capacity.
DEFAULT_CAPACITY = 100_000


def downsample_evenly(samples: List[Any], max_samples: int) -> List[Any]:
    """Pick at most ``max_samples`` entries at an even stride.

    The last sample is always retained so a downsampled timeline still
    reaches the end of the queried window (a plain ``samples[::stride]``
    silently drops it whenever ``(len-1) % stride != 0``); the first
    sample is always retained by construction. Used by the node agent
    for long-window queries and property-tested in
    ``tests/test_property_buffer_shares.py``.
    """
    if max_samples < 1:
        raise ValueError(f"max_samples must be >= 1, got {max_samples}")
    if len(samples) <= max_samples:
        return samples
    if max_samples == 1:
        return [samples[-1]]
    stride = -(-(len(samples) - 1) // (max_samples - 1))
    picked = samples[::stride]
    if (len(samples) - 1) % stride != 0:
        picked.append(samples[-1])
    return picked


class CircularBuffer:
    """A ring buffer of (timestamp, sample) pairs, oldest-first.

    Timestamps must be appended in nondecreasing order (they come from
    one periodic sampler), which lets range queries bisect.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ts: List[float] = []
        self._samples: List[Dict[str, Any]] = []
        #: Physical index of the oldest entry once the ring has wrapped.
        self._head = 0
        self.total_appended = 0

    def append(self, timestamp: float, sample: Dict[str, Any]) -> None:
        ts = self._ts
        if ts:
            # Inlined newest_timestamp: this runs once per node per
            # sampling tick instance-wide.
            newest = ts[self._head - 1]
            if timestamp < newest:
                raise ValueError(
                    f"timestamps must be nondecreasing ({timestamp} < {newest})"
                )
        if len(ts) < self.capacity:
            ts.append(timestamp)
            self._samples.append(sample)
        else:
            ts[self._head] = timestamp
            self._samples[self._head] = sample
            self._head = (self._head + 1) % self.capacity
        self.total_appended += 1

    def __len__(self) -> int:
        return len(self._ts)

    @property
    def dropped(self) -> int:
        """Samples overwritten because the ring wrapped (or flushed)."""
        return self.total_appended - len(self._ts)

    @property
    def oldest_timestamp(self) -> Optional[float]:
        return self._ts[self._head] if self._ts else None

    @property
    def newest_timestamp(self) -> Optional[float]:
        # With head at the oldest entry, the newest sits just before it
        # (index -1 before the first wrap — Python wraps that for us).
        return self._ts[self._head - 1] if self._ts else None

    def size_bytes(self, per_sample: int = DEFAULT_SAMPLE_BYTES) -> int:
        """Estimated storage footprint at the current fill level."""
        return len(self._ts) * per_sample

    def capacity_bytes(self, per_sample: int = DEFAULT_SAMPLE_BYTES) -> int:
        """Storage footprint when full (the paper's 43.4 MiB)."""
        return self.capacity * per_sample

    def _bisect(self, t: float, right: bool) -> int:
        """Logical index of the first entry with ts >= t (or > t if right)."""
        n = len(self._ts)
        lo, hi = 0, n
        while lo < hi:
            mid = (lo + hi) // 2
            ts = self._ts[(self._head + mid) % n]
            if ts < t or (right and ts == t):
                lo = mid + 1
            else:
                hi = mid
        return lo

    def range(
        self, t_start: float, t_end: float
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Samples with ``t_start <= t <= t_end``, plus a completeness flag.

        ``complete`` is False when the buffer's retained history begins
        after ``t_start`` — i.e. some of the requested window has been
        flushed out (the paper's partial-data case).
        """
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        n = len(self._ts)
        if n:
            lo = self._bisect(t_start, right=False)
            hi = self._bisect(t_end, right=True)
            samples = [self._samples[(self._head + i) % n] for i in range(lo, hi)]
        else:
            samples = []
        oldest = self.oldest_timestamp
        complete = self.total_appended == 0 or (
            oldest is not None and (oldest <= t_start or self.dropped == 0)
        )
        return samples, complete

    def flush(self) -> int:
        """Drop retained samples (administrative flush); returns count.

        ``total_appended`` is preserved so later range queries still
        know history was lost and report partial data.
        """
        n = len(self._ts)
        self._ts = []
        self._samples = []
        self._head = 0
        return n

    def snapshot(self) -> List[Tuple[float, Dict[str, Any]]]:
        """Copy of current contents (oldest first); for tests/inspection."""
        n = len(self._ts)
        return [
            (self._ts[(self._head + i) % n], self._samples[(self._head + i) % n])
            for i in range(n)
        ]

    # ------------------------------------------------------------------
    # Crash recovery (see repro.lifecycle.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """JSON-able ring state; entries oldest-first.

        ``total_appended`` rides along so the restored ring reports the
        same drop count (and therefore the same partial-data flags) as
        the original.
        """
        return {
            "capacity": self.capacity,
            "total_appended": self.total_appended,
            "entries": [[t, sample] for t, sample in self.snapshot()],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Rehydrate from :meth:`snapshot_state`; ``{}`` wipes to empty.

        Entries are replayed through :meth:`append` oldest-first, so the
        restored ring is physically un-rotated but logically identical —
        every read path goes through the head index.
        """
        self._ts = []
        self._samples = []
        self._head = 0
        self.total_appended = 0
        for t, sample in state.get("entries") or []:
            self.append(float(t), sample)
        self.total_appended = int(state.get("total_appended", self.total_appended))
