"""Convenience wiring for the power monitor.

``attach_monitor(instance)`` is the analogue of

.. code-block:: console

   $ flux exec -r all flux module load flux-power-monitor

on a production system: node agents everywhere, a root agent at rank 0,
and a client handle for job telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.flux.instance import FluxInstance
from repro.flux.module import RetryConfig
from repro.monitor.client import PowerMonitorClient
from repro.monitor.node_agent import (
    DEFAULT_SAMPLE_INTERVAL_S,
    NodeAgentModule,
)
from repro.monitor.buffer import DEFAULT_CAPACITY
from repro.monitor.root_agent import RootAgentModule, SubtreeAggregatorModule


@dataclass
class PowerMonitor:
    """Handle over a loaded monitor deployment."""

    instance: FluxInstance
    node_agents: List[NodeAgentModule]
    root_agent: RootAgentModule
    client: PowerMonitorClient
    #: Deployment configuration, kept so a broker restart can reload a
    #: fresh node agent identical to the original ones.
    sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S
    buffer_capacity: int = DEFAULT_CAPACITY
    strategy: str = "fanout"
    retry: Optional[RetryConfig] = field(default=None)
    batch_sampling: bool = True
    columnar: bool = False

    def detach(self) -> None:
        """Unload the monitor everywhere (the overhead experiment's off case)."""
        self.instance.unload_module_everywhere(NodeAgentModule.name)
        self.instance.unload_module_everywhere(RootAgentModule.name)
        self.instance.unload_module_everywhere(SubtreeAggregatorModule.name)

    def agent_for_rank(self, rank: int) -> NodeAgentModule:
        return self.node_agents[rank]

    def reload_agent(self, rank: int) -> NodeAgentModule:
        """Load a fresh node agent on ``rank`` (post-restart recovery).

        The new agent starts with an empty ring buffer, so windows that
        straddle the outage are reported partial — history died with
        the broker, exactly as on a real node.
        """
        broker = self.instance.brokers[rank]
        if NodeAgentModule.name in broker.modules:
            broker.unload_module(NodeAgentModule.name)
        agent = _agent_class(self.columnar)(
            broker,
            sample_interval_s=self.sample_interval_s,
            buffer_capacity=self.buffer_capacity,
            batch_sampling=self.batch_sampling,
        )
        broker.load_module(agent)
        self.node_agents[rank] = agent
        if self.strategy == "tree" and SubtreeAggregatorModule.name not in broker.modules:
            broker.load_module(SubtreeAggregatorModule(broker, retry=self.retry))
        return agent


def _agent_class(columnar: bool):
    if columnar:
        from repro.monitor.columnar_agent import ColumnarNodeAgent

        return ColumnarNodeAgent
    return NodeAgentModule


def attach_monitor(
    instance: FluxInstance,
    sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
    buffer_capacity: int = DEFAULT_CAPACITY,
    strategy: str = "fanout",
    retry: Optional[RetryConfig] = None,
    batch_sampling: bool = True,
    columnar: bool = False,
) -> PowerMonitor:
    """Load the flux-power-monitor modules across an instance.

    ``retry`` sets the per-node timeout/retry policy the aggregators
    use when a node agent stops answering (see docs/failures.md);
    None means the :class:`~repro.flux.module.RetryConfig` defaults.
    ``batch_sampling`` selects the coalesced one-event-per-interval
    sampling tick (default) versus one timer per node agent; outputs
    are byte-identical (see docs/performance.md). ``columnar`` (implies
    batch sampling) keeps per-rank samples implicit in the instance's
    columnar store — the exascale path; again byte-identical, with
    per-agent scalar fallback where exactness would not hold.
    """
    if columnar and not batch_sampling:
        raise ValueError("columnar sampling requires batch_sampling=True")
    if columnar:
        from repro.columnar.store import columnar_store_of

        store = columnar_store_of(instance.sim)
        owner = getattr(store, "owner", None)
        if owner is not None and owner is not instance:
            # Two instances on one engine would collide in the store's
            # rank-keyed dead mask; a federated site that wants columnar
            # members must run sharded (one engine per cluster).
            raise ValueError(
                "columnar store on this engine already belongs to another "
                "instance; use sharded federation (SiteConfig(sharded=True)) "
                "to give each cluster its own engine"
            )
        store.owner = instance
        for rank, broker in enumerate(instance.brokers):
            if broker.node is not None:
                store.adopt(broker.node, rank)

        # Keep the store's dead-mask current off the same event stream
        # the managers and the federation tier react on.
        def _on_broker_event(msg) -> None:
            if msg.topic == "broker.down":
                store.set_dead(int(msg.payload["rank"]), True)
            elif msg.topic == "broker.up":
                store.set_dead(int(msg.payload["rank"]), False)

        instance.brokers[0].subscribe("broker.", _on_broker_event)
    node_agents = instance.load_module_on_all(
        lambda broker: _agent_class(columnar)(
            broker,
            sample_interval_s=sample_interval_s,
            buffer_capacity=buffer_capacity,
            batch_sampling=batch_sampling,
        )
    )
    if strategy == "tree":
        instance.load_module_on_all(
            lambda broker: SubtreeAggregatorModule(broker, retry=retry)
        )
    root_agent = instance.load_module_on_root(
        lambda broker: RootAgentModule(broker, strategy=strategy, retry=retry)
    )
    client = PowerMonitorClient(instance)
    return PowerMonitor(
        instance=instance,
        node_agents=node_agents,  # type: ignore[arg-type]
        root_agent=root_agent,  # type: ignore[arg-type]
        client=client,
        sample_interval_s=sample_interval_s,
        buffer_capacity=buffer_capacity,
        strategy=strategy,
        retry=retry,
        batch_sampling=batch_sampling,
        columnar=columnar,
    )
