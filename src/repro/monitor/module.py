"""Convenience wiring for the power monitor.

``attach_monitor(instance)`` is the analogue of

.. code-block:: console

   $ flux exec -r all flux module load flux-power-monitor

on a production system: node agents everywhere, a root agent at rank 0,
and a client handle for job telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.flux.instance import FluxInstance
from repro.monitor.client import PowerMonitorClient
from repro.monitor.node_agent import (
    DEFAULT_SAMPLE_INTERVAL_S,
    NodeAgentModule,
)
from repro.monitor.buffer import DEFAULT_CAPACITY
from repro.monitor.root_agent import RootAgentModule, SubtreeAggregatorModule


@dataclass
class PowerMonitor:
    """Handle over a loaded monitor deployment."""

    instance: FluxInstance
    node_agents: List[NodeAgentModule]
    root_agent: RootAgentModule
    client: PowerMonitorClient

    def detach(self) -> None:
        """Unload the monitor everywhere (the overhead experiment's off case)."""
        self.instance.unload_module_everywhere(NodeAgentModule.name)
        self.instance.unload_module_everywhere(RootAgentModule.name)
        self.instance.unload_module_everywhere(SubtreeAggregatorModule.name)

    def agent_for_rank(self, rank: int) -> NodeAgentModule:
        return self.node_agents[rank]


def attach_monitor(
    instance: FluxInstance,
    sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
    buffer_capacity: int = DEFAULT_CAPACITY,
    strategy: str = "fanout",
) -> PowerMonitor:
    """Load the flux-power-monitor modules across an instance."""
    node_agents = instance.load_module_on_all(
        lambda broker: NodeAgentModule(
            broker,
            sample_interval_s=sample_interval_s,
            buffer_capacity=buffer_capacity,
        )
    )
    if strategy == "tree":
        instance.load_module_on_all(SubtreeAggregatorModule)
    root_agent = instance.load_module_on_root(
        lambda broker: RootAgentModule(broker, strategy=strategy)
    )
    client = PowerMonitorClient(instance)
    return PowerMonitor(
        instance=instance,
        node_agents=node_agents,  # type: ignore[arg-type]
        root_agent=root_agent,  # type: ignore[arg-type]
        client=client,
    )
