"""The monitor's per-node agent.

Stateless with respect to jobs: it samples Variorum on a fixed period
into its circular buffer and answers range queries. It neither knows
nor cares what is running — the design decision the paper credits for
the monitor's low overhead (Section III-A).

Each sample reports into the telemetry hub (``monitor_samples_total``,
per-rank buffer occupancy/drop gauges) and charges its per-platform
collection cost to the ``monitor`` overhead category — the same cost
model that slows co-located applications, so the overhead accountant's
percentage matches the slowdown the apps actually experience.
"""

from __future__ import annotations

from repro import variorum
from repro.flux.broker import Broker
from repro.flux.message import Message
from repro.flux.module import Module
from repro.monitor.buffer import DEFAULT_CAPACITY, CircularBuffer
from repro.monitor.overhead import sampling_overhead_fraction

#: The paper's default sampling period.
DEFAULT_SAMPLE_INTERVAL_S = 2.0

QUERY_TOPIC = "power-monitor.query"
STATUS_TOPIC = "power-monitor.status"
CLEAR_TOPIC = "power-monitor.clear"


class NodeAgentModule(Module):
    """Samples node power via Variorum into a circular buffer."""

    name = "power-monitor"

    def __init__(
        self,
        broker: Broker,
        sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
        buffer_capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if broker.node is None:
            raise ValueError("node agent requires a broker with hardware attached")
        super().__init__(broker)
        self.sample_interval_s = float(sample_interval_s)
        self.buffer = CircularBuffer(buffer_capacity)
        self.samples_taken = 0
        #: Simulated time this agent started sampling; a query window
        #: opening earlier (e.g. after a crash/restart wiped the ring)
        #: is reported as partial even though the fresh buffer never
        #: wrapped.
        self._t_loaded = 0.0

    @property
    def node_overhead_fraction(self) -> float:
        """Progress penalty this module imposes on co-located work.

        Picked up by :class:`~repro.apps.run.AppRun` through the
        instance's telemetry-overhead hook.
        """
        return sampling_overhead_fraction(
            self.broker.node.spec.platform, self.sample_interval_s
        )

    def on_load(self) -> None:
        self._t_loaded = self.sim.now
        self.register_service(QUERY_TOPIC, self._handle_query)
        self.register_service(STATUS_TOPIC, self._handle_status)
        self.register_service(CLEAR_TOPIC, self._handle_clear)
        # First sample at load time, then on the fixed grid.
        self.add_timer(self.sample_interval_s, self._sample, start_delay=0.0)

    # ------------------------------------------------------------------
    # Sampling loop
    # ------------------------------------------------------------------
    def _sample(self, _timer) -> None:
        sample = variorum.get_node_power_json(self.broker.node, self.sim.now)
        self.buffer.append(self.sim.now, sample)
        self.samples_taken += 1
        tel = self.broker.telemetry
        rank = {"rank": str(self.broker.rank)}
        tel.metrics.counter(
            "monitor_samples_total",
            help="Variorum samples appended to node-agent ring buffers",
        ).inc()
        tel.metrics.gauge(
            "monitor_buffer_occupancy", labels=rank,
            help="retained samples in the node agent's circular buffer",
        ).set(len(self.buffer))
        tel.metrics.gauge(
            "monitor_buffer_dropped", labels=rank,
            help="samples lost to ring wrap on this node agent",
        ).set(self.buffer.dropped)
        # The per-sample collection cost — identical to the fraction
        # that slows co-located apps (node_overhead_fraction).
        tel.accountant.charge(
            "monitor", self.node_overhead_fraction * self.sample_interval_s
        )

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------
    def _handle_query(self, broker: Broker, msg: Message) -> None:
        try:
            t_start = float(msg.payload["t_start"])
            t_end = float(msg.payload["t_end"])
        except (KeyError, TypeError, ValueError):
            broker.respond(msg, errnum=22, errmsg="need numeric t_start/t_end")
            return
        if t_end < t_start:
            broker.respond(msg, errnum=22, errmsg="t_end < t_start")
            return
        samples, complete = self.buffer.range(t_start, t_end)
        if t_start < self._t_loaded:
            # This agent has no history before it (re)started sampling.
            complete = False
        self.broker.telemetry.metrics.counter(
            "monitor_queries_total",
            help="range queries answered by node agents",
        ).inc()
        # Optional downsampling: long windows on big machines produce
        # multi-megabyte responses; a client that only needs the shape
        # asks for at most N samples and gets an even stride.
        max_samples = msg.payload.get("max_samples")
        downsampled = False
        if max_samples is not None:
            try:
                max_samples = int(max_samples)
            except (TypeError, ValueError):
                broker.respond(msg, errnum=22, errmsg="bad max_samples")
                return
            if max_samples < 1:
                broker.respond(msg, errnum=22, errmsg="max_samples must be >= 1")
                return
            if len(samples) > max_samples:
                # Even stride over the window, always retaining the last
                # sample so the downsampled timeline still reaches t_end
                # (a plain samples[::stride] silently drops it whenever
                # (len-1) % stride != 0).
                if max_samples == 1:
                    samples = [samples[-1]]
                else:
                    stride = -(-(len(samples) - 1) // (max_samples - 1))
                    picked = samples[::stride]
                    if (len(samples) - 1) % stride != 0:
                        picked.append(samples[-1])
                    samples = picked
                downsampled = True
        broker.respond(
            msg,
            {
                "hostname": self.broker.node.hostname,
                "rank": broker.rank,
                "samples": samples,
                "complete": complete,
                "downsampled": downsampled,
            },
        )

    def _handle_clear(self, broker: Broker, msg: Message) -> None:
        """Administrative flush: drop the retained history.

        Subsequent job queries covering earlier windows will report
        partial data — the flush case the client CSV flag exists for.
        """
        flushed = self.buffer.flush()
        tel = broker.telemetry
        tel.metrics.counter(
            "monitor_buffer_flushes_total",
            help="administrative buffer flushes",
        ).inc()
        tel.metrics.gauge(
            "monitor_buffer_occupancy", labels={"rank": str(broker.rank)},
        ).set(0)
        broker.respond(msg, {"rank": broker.rank, "flushed": flushed})

    def _handle_status(self, broker: Broker, msg: Message) -> None:
        broker.respond(
            msg,
            {
                "hostname": self.broker.node.hostname,
                "sample_interval_s": self.sample_interval_s,
                "buffer_len": len(self.buffer),
                "buffer_capacity": self.buffer.capacity,
                "buffer_bytes": self.buffer.size_bytes(),
                "dropped": self.buffer.dropped,
                "samples_taken": self.samples_taken,
            },
        )
