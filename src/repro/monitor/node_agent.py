"""The monitor's per-node agent.

Stateless with respect to jobs: it samples Variorum on a fixed period
into its circular buffer and answers range queries. It neither knows
nor cares what is running — the design decision the paper credits for
the monitor's low overhead (Section III-A).

Each sample reports into the telemetry hub (``monitor_samples_total``,
per-rank buffer occupancy/drop gauges) and charges its per-platform
collection cost to the ``monitor`` overhead category — the same cost
model that slows co-located applications, so the overhead accountant's
percentage matches the slowdown the apps actually experience.
"""

from __future__ import annotations

from repro import variorum
from repro.flux.broker import Broker
from repro.flux.message import CachedSizeDict, Message, estimate_payload_bytes
from repro.flux.module import Module
from repro.monitor.buffer import (
    DEFAULT_CAPACITY,
    CircularBuffer,
    downsample_evenly,
)
from repro.monitor.overhead import sampling_overhead_fraction
from repro.monitor.sampler import sampler_of
from repro.variorum.backends import get_backend

#: The paper's default sampling period.
DEFAULT_SAMPLE_INTERVAL_S = 2.0

QUERY_TOPIC = "power-monitor.query"
STATUS_TOPIC = "power-monitor.status"
CLEAR_TOPIC = "power-monitor.clear"


class NodeAgentModule(Module):
    """Samples node power via Variorum into a circular buffer."""

    name = "power-monitor"

    def __init__(
        self,
        broker: Broker,
        sample_interval_s: float = DEFAULT_SAMPLE_INTERVAL_S,
        buffer_capacity: int = DEFAULT_CAPACITY,
        batch_sampling: bool = True,
    ) -> None:
        if broker.node is None:
            raise ValueError("node agent requires a broker with hardware attached")
        super().__init__(broker)
        self.sample_interval_s = float(sample_interval_s)
        self.buffer = CircularBuffer(buffer_capacity)
        self.samples_taken = 0
        #: Batched mode registers with the instance-wide
        #: :class:`~repro.monitor.sampler.BatchSampler` (one engine
        #: event per interval for all agents); the legacy mode keeps a
        #: per-agent timer. Outputs are byte-identical either way.
        self.batch_sampling = bool(batch_sampling)
        #: Simulated time this agent started sampling; a query window
        #: opening earlier (e.g. after a crash/restart wiped the ring)
        #: is reported as partial even though the fresh buffer never
        #: wrapped.
        self._t_loaded = 0.0
        # The per-sample accountant charge never changes; metric
        # handles are resolved lazily on first use so series register
        # at the same moment they always did.
        self._charge_s = self.node_overhead_fraction * self.sample_interval_s
        # The vendor backend is fixed for the node's lifetime; binding
        # it here skips the API-level dispatch on every sample (the
        # call itself is still variorum.get_node_power_json semantics).
        self._backend = get_backend(broker.node.spec.vendor)
        # The node's telemetry plan, likewise fixed; passing it into
        # sample_cached skips the per-sample plan lookup.
        self._plan = self._backend.plan_for(broker.node)
        self._g_occupancy = None
        self._g_dropped = None
        self._c_samples = None
        self._c_queries = None
        # Wire-size of a query response with zero samples — the
        # estimator prices every leaf type at a fixed width, so a full
        # response is exactly this base plus n_samples times the node's
        # constant per-sample size (pinned by the equivalence tests).
        self._record_base = None

    @property
    def node_overhead_fraction(self) -> float:
        """Progress penalty this module imposes on co-located work.

        Picked up by :class:`~repro.apps.run.AppRun` through the
        instance's telemetry-overhead hook.
        """
        return sampling_overhead_fraction(
            self.broker.node.spec.platform, self.sample_interval_s
        )

    def on_load(self) -> None:
        self._t_loaded = self.sim.now
        self.register_service(QUERY_TOPIC, self._handle_query)
        self.register_service(STATUS_TOPIC, self._handle_status)
        self.register_service(CLEAR_TOPIC, self._handle_clear)
        # First sample at load time, then on the fixed grid.
        if self.batch_sampling:
            sampler_of(self.sim).register(self)
        else:
            self.add_timer(self.sample_interval_s, self._sample, start_delay=0.0)

    def on_unload(self) -> None:
        if self.batch_sampling:
            sampler_of(self.sim).unregister(self)

    # ------------------------------------------------------------------
    # Sampling loop
    # ------------------------------------------------------------------
    def _sample(self, _timer) -> None:
        # Legacy per-agent timer path: identical body to the batched
        # tick, except each sample increments the shared counter itself.
        if self._c_samples is None:
            self._c_samples = self.broker.telemetry.metrics.counter(
                "monitor_samples_total",
                help="Variorum samples appended to node-agent ring buffers",
            )
        self._c_samples.inc()
        self.sample_in_batch(self.sim.now)

    def sample_in_batch(self, now: float) -> None:
        """One sample, minus the shared-counter update the batch tick owns."""
        buf = self.buffer
        buf.append(
            now, self._backend.sample_cached(self.broker.node, now, self._plan)
        )
        self.samples_taken += 1
        self._set_buffer_gauges()
        # The per-sample collection cost — identical to the fraction
        # that slows co-located apps (node_overhead_fraction).
        self.broker.telemetry.accountant.charge("monitor", self._charge_s)

    def _set_buffer_gauges(self) -> None:
        """Write the per-rank occupancy/drop gauges from buffer state.

        Last-write-wins, so the columnar store may defer these to its
        flush without changing any exported value.
        """
        if self._g_occupancy is None:
            metrics = self.broker.telemetry.metrics
            rank = {"rank": str(self.broker.rank)}
            self._g_occupancy = metrics.gauge(
                "monitor_buffer_occupancy", labels=rank,
                help="retained samples in the node agent's circular buffer",
            )
            self._g_dropped = metrics.gauge(
                "monitor_buffer_dropped", labels=rank,
                help="samples lost to ring wrap on this node agent",
            )
        buf = self.buffer
        retained = len(buf)
        self._g_occupancy.set(retained)
        self._g_dropped.set(buf.total_appended - retained)

    def _enroll_columnar(self, group) -> bool:
        """Hook for the batch sampler: join ``group`` columnar-side.

        The base agent always declines; ColumnarNodeAgent overrides
        with the eligibility rules (see repro.monitor.columnar_agent).
        """
        return False

    # ------------------------------------------------------------------
    # Crash recovery (see repro.lifecycle.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-able continuation state for this node's agent."""
        return {
            "rank": self.broker.rank,
            "t_loaded": self._t_loaded,
            "samples_taken": self.samples_taken,
            "buffer": self.buffer.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Rehydrate from :meth:`snapshot_state`; ``{}`` wipes to fresh.

        A wipe re-bases ``_t_loaded`` at *now* — fresh-agent semantics:
        queries over earlier windows report partial data, exactly as
        after a crash/restart that lost the ring.
        """
        t_loaded = state.get("t_loaded")
        self._t_loaded = self.sim.now if t_loaded is None else float(t_loaded)
        self.samples_taken = int(state.get("samples_taken", 0))
        self.buffer.restore_state(state.get("buffer") or {})

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------
    def _handle_query(self, broker: Broker, msg: Message) -> None:
        try:
            t_start = float(msg.payload["t_start"])
            t_end = float(msg.payload["t_end"])
        except (KeyError, TypeError, ValueError):
            broker.respond(msg, errnum=22, errmsg="need numeric t_start/t_end")
            return
        if t_end < t_start:
            broker.respond(msg, errnum=22, errmsg="t_end < t_start")
            return
        samples, complete = self.buffer.range(t_start, t_end)
        if t_start < self._t_loaded:
            # This agent has no history before it (re)started sampling.
            complete = False
        if self._c_queries is None:
            self._c_queries = self.broker.telemetry.metrics.counter(
                "monitor_queries_total",
                help="range queries answered by node agents",
            )
        self._c_queries.inc()
        # Optional downsampling: long windows on big machines produce
        # multi-megabyte responses; a client that only needs the shape
        # asks for at most N samples and gets an even stride.
        max_samples = msg.payload.get("max_samples")
        downsampled = False
        if max_samples is not None:
            try:
                max_samples = int(max_samples)
            except (TypeError, ValueError):
                broker.respond(msg, errnum=22, errmsg="bad max_samples")
                return
            if max_samples < 1:
                broker.respond(msg, errnum=22, errmsg="max_samples must be >= 1")
                return
            if len(samples) > max_samples:
                samples = downsample_evenly(samples, max_samples)
                downsampled = True
        # CachedSizeDict: this record is write-once once it leaves here
        # but re-priced at every aggregation level that forwards it.
        # Its size is computed arithmetically (base + n * sample size)
        # so the samples themselves are never walked by the estimator.
        record = CachedSizeDict(
            hostname=self.broker.node.hostname,
            rank=broker.rank,
            samples=samples,
            complete=complete,
            downsampled=downsampled,
        )
        sample_size = variorum.sample_wire_bytes(self.broker.node)
        if sample_size is not None:
            if self._record_base is None:
                self._record_base = estimate_payload_bytes(
                    {
                        "hostname": self.broker.node.hostname,
                        "rank": broker.rank,
                        "samples": [],
                        "complete": complete,
                        "downsampled": downsampled,
                    }
                )
            record._size_cache = (
                self._record_base + len(samples) * sample_size
            )
        broker.respond(msg, record)

    def _handle_clear(self, broker: Broker, msg: Message) -> None:
        """Administrative flush: drop the retained history.

        Subsequent job queries covering earlier windows will report
        partial data — the flush case the client CSV flag exists for.
        """
        flushed = self.buffer.flush()
        tel = broker.telemetry
        tel.metrics.counter(
            "monitor_buffer_flushes_total",
            help="administrative buffer flushes",
        ).inc()
        tel.metrics.gauge(
            "monitor_buffer_occupancy", labels={"rank": str(broker.rank)},
        ).set(0)
        broker.respond(msg, {"rank": broker.rank, "flushed": flushed})

    def _handle_status(self, broker: Broker, msg: Message) -> None:
        broker.respond(
            msg,
            {
                "hostname": self.broker.node.hostname,
                "sample_interval_s": self.sample_interval_s,
                "buffer_len": len(self.buffer),
                "buffer_capacity": self.buffer.capacity,
                "buffer_bytes": self.buffer.size_bytes(),
                "dropped": self.buffer.dropped,
                "samples_taken": self.samples_taken,
            },
        )
