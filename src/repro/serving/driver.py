"""The single engine driver: the only thing that advances time.

Serving splits the world in two. Requests — any number of them, from
any number of clients — *never* step the simulator; they read frozen
snapshots and schedule work. The :class:`SimDriver` is the one object
allowed to call ``sim.run``/``sim.step``, so "who advances the clock"
has exactly one answer and a query storm cannot interleave engine
steps nondeterministically. The asyncio shell funnels both requests
and periodic ``advance`` calls through one dispatcher task, preserving
the same single-driver property under concurrency.
"""

from __future__ import annotations

from repro.serving.registry import ClusterBackend, ClusterRegistry


class SimDriver:
    """Deterministic clock authority over a registry's shared engine."""

    def __init__(self, registry: ClusterRegistry) -> None:
        self.registry = registry
        self.sim = registry.sim

    def advance(self, dt_s: float) -> float:
        """Run the engine ``dt_s`` simulated seconds; returns new now."""
        if dt_s < 0:
            raise ValueError(f"dt_s must be >= 0, got {dt_s}")
        self.sim.run(until=self.sim.now + dt_s)
        return self.sim.now

    def step(self, n: int = 1) -> int:
        """Process up to ``n`` events; returns how many actually ran."""
        done = 0
        for _ in range(n):
            if not self.sim.step():
                break
            done += 1
        return done

    def wait_for_job(self, backend: ClusterBackend, jobid: int,
                     poll_s: float = 2.0, timeout_s: float = 1e7) -> str:
        """Advance time until ``jobid`` leaves the active states.

        Returns the terminal state value. Raises ``TimeoutError`` when
        the simulated deadline passes first (a hung scenario, not a
        wall-clock condition).
        """
        deadline = self.sim.now + timeout_s
        record = backend.job(jobid)
        while record.state.active:
            if self.sim.now >= deadline:
                raise TimeoutError(
                    f"job {jobid} still {record.state.value} at t={self.sim.now:.0f}s"
                )
            if self.sim.pending() == 0:
                raise RuntimeError(
                    f"event heap drained with job {jobid} still "
                    f"{record.state.value}"
                )
            self.advance(poll_s)
        return record.state.value
