"""The power-management API: a synchronous, transport-free core.

:class:`PowerService` is the whole API surface in one object with one
entry point — ``handle(method, path, params, body)`` → an
:class:`ApiResponse`. It is deliberately synchronous and
transport-free: the asyncio HTTP shell (:mod:`repro.serving.http`),
the in-process client (:mod:`repro.serving.client`), the load
generator and the simtest injector all call the *same* ``handle``, so
every test of the core covers every transport.

Contract: ``handle`` never raises and never steps the simulator.
Errors come back as structured JSON
(``{"error": {"code", "message"}}``) with a 4xx status — a malformed
request is a client outcome, not a server traceback — and an
unexpected exception is converted to a 500 envelope and counted on
``serving_errors_total``. Reads are served from cached
:class:`~repro.serving.snapshot.PowerSnapshot` columns and the job
manager's own books; writes (submit/cancel) mutate model state through
the same public calls a driver script would use, which schedule
simulator work but never run it — advancing time is the exclusive job
of the :class:`~repro.serving.driver.SimDriver`.

Endpoint catalog, response formats and pagination semantics are
documented in docs/serving.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.registry import list_apps
from repro.flux.jobspec import JobRecord, Jobspec, JobState
from repro.serving.registry import ClusterBackend, ClusterRegistry
from repro.serving.snapshot import SnapshotCache
from repro.telemetry import telemetry_of

#: Pagination bounds: the default keeps a list call one small JSON page;
#: the ceiling keeps a single response bounded no matter what a client
#: asks for.
DEFAULT_PAGE_LIMIT = 100
MAX_PAGE_LIMIT = 1000

#: Batch ceiling (ops per POST /v1/batch).
MAX_BATCH_OPS = 256

#: ``concise`` is a strict subset of ``detailed`` — the property tests
#: pin this projection relation, so extend DETAILED first.
CONCISE_JOB_FIELDS = ("jobid", "state", "app", "nnodes")
DETAILED_JOB_FIELDS = CONCISE_JOB_FIELDS + (
    "name",
    "user",
    "launcher",
    "ranks",
    "t_submit",
    "t_start",
    "t_end",
    "runtime_s",
    "job_limit_w",
    "node_limit_w",
)

#: Tenant job views add the resolved project on top of DETAILED (only
#: when a tenancy coordinator is attached — anonymous clusters keep the
#: exact historical field set the goldens pin).
TENANT_JOB_FIELDS = DETAILED_JOB_FIELDS + ("project",)

#: Accounting views (``/v1/accounting``): same concise ⊂ detailed
#: projection contract as job views.
CONCISE_ACCOUNTING_FIELDS = (
    "cluster",
    "project",
    "weight",
    "effective_weight",
    "active_jobs",
)
DETAILED_ACCOUNTING_FIELDS = CONCISE_ACCOUNTING_FIELDS + (
    "account",
    "usage_ws",
    "lifetime_ws",
    "granted_w",
    "admitted_total",
    "queued_total",
    "rejected_total",
)

_VALID_STATES = {s.value for s in JobState}


class ApiError(Exception):
    """A structured client/server error the core raises internally."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message

    def body(self) -> Dict[str, Any]:
        return {"error": {"code": self.code, "message": self.message}}


@dataclass
class ApiResponse:
    """What every request returns: a status plus a JSON-able body."""

    status: int
    body: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


# ---------------------------------------------------------------------------
# Parameter parsing (query values arrive as strings over HTTP)
# ---------------------------------------------------------------------------


def _int_param(params: Dict[str, Any], key: str, default: int,
               lo: int, hi: Optional[int] = None) -> int:
    raw = params.get(key, default)
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ApiError(400, "bad_request", f"{key} must be an integer, got {raw!r}")
    if value < lo or (hi is not None and value > hi):
        span = f">= {lo}" if hi is None else f"in [{lo}, {hi}]"
        raise ApiError(400, "bad_request", f"{key} must be {span}, got {value}")
    return value


def _format_param(params: Dict[str, Any]) -> bool:
    """True for ``detailed``; concise is the cheap default for lists."""
    fmt = params.get("response_format", "concise")
    if fmt not in ("concise", "detailed"):
        raise ApiError(
            400, "bad_request",
            f"response_format must be 'concise' or 'detailed', got {fmt!r}",
        )
    return fmt == "detailed"


def _job_view(backend: ClusterBackend, record: JobRecord,
              detailed: bool) -> Dict[str, Any]:
    view: Dict[str, Any] = {
        "jobid": record.jobid,
        "state": record.state.value,
        "app": record.spec.app,
        "nnodes": record.spec.nnodes,
    }
    if not detailed:
        return view
    view.update(
        name=record.spec.label,
        user=record.spec.user,
        launcher=record.spec.launcher,
        ranks=list(record.ranks),
        t_submit=record.t_submit,
        t_start=record.t_start,
        t_end=record.t_end,
        runtime_s=record.runtime_s,
        job_limit_w=None,
        node_limit_w=None,
    )
    state = backend.job_power_state(record.jobid)
    if state is not None:
        view["job_limit_w"] = state.job_limit_w
        view["node_limit_w"] = state.node_limit_w
    # Tenant clusters expose the resolved project; anonymous clusters
    # keep the exact historical field set (golden serving digests).
    tenancy = backend.tenancy
    if tenancy is not None:
        view["project"] = tenancy.project_of_job(record.jobid)
    return view


class PowerService:
    """The API core: routes requests over a :class:`ClusterRegistry`."""

    def __init__(self, registry: ClusterRegistry) -> None:
        self.registry = registry
        telemetry = telemetry_of(registry.sim)
        self._metrics = telemetry.metrics
        self._snapshots = SnapshotCache(metrics=self._metrics)
        #: Wall-clock request latency buckets: an in-process dict-routed
        #: call sits around 10 µs; a busy asyncio dispatch a few ms.
        self._latency_buckets = (
            1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
            1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 1.0,
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str,
               params: Optional[Dict[str, Any]] = None,
               body: Optional[Dict[str, Any]] = None) -> ApiResponse:
        """Serve one request. Never raises; never steps the simulator."""
        t0 = time.perf_counter()
        op = "unknown"
        try:
            op, response = self._route(
                str(method).upper(), str(path), dict(params or {}), body
            )
        except ApiError as exc:
            response = ApiResponse(exc.status, exc.body())
            self._metrics.counter(
                "serving_errors_total", {"code": exc.code},
                help="API errors by structured error code.",
            ).inc()
        except Exception as exc:  # noqa: BLE001 - the no-traceback contract
            response = ApiResponse(
                500,
                {"error": {"code": "internal", "message": f"{type(exc).__name__}: {exc}"}},
            )
            self._metrics.counter(
                "serving_errors_total", {"code": "internal"},
                help="API errors by structured error code.",
            ).inc()
        self._metrics.counter(
            "serving_requests_total",
            {"op": op, "status": str(response.status)},
            help="API requests by operation and HTTP status.",
        ).inc()
        self._metrics.histogram(
            "serving_request_latency_s", {"op": op},
            help="Wall-clock request service latency (observability only; "
                 "never part of a run digest).",
            buckets=self._latency_buckets,
        ).observe(time.perf_counter() - t0)
        return response

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(self, method: str, path: str, params: Dict[str, Any],
               body: Optional[Dict[str, Any]]) -> Tuple[str, ApiResponse]:
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "v1":
            raise ApiError(404, "not_found", f"no such path: {path}")
        parts = parts[1:]

        if parts == ["health"] and method == "GET":
            return "health", self._health()
        if parts == ["clusters"] and method == "GET":
            return "clusters", self._clusters()
        if parts == ["batch"] and method == "POST":
            return "batch", self._batch(body)
        if parts == ["site", "power"] and method == "GET":
            return "site_power", self._site_power()
        if parts == ["accounting"] and method == "GET":
            return "accounting", self._accounting(params)
        if len(parts) == 2 and parts[0] == "accounting" and method == "GET":
            return "accounting_project", self._accounting_project(
                parts[1], params
            )

        if len(parts) >= 2 and parts[0] == "clusters":
            backend = self._backend(parts[1])
            rest = parts[2:]
            if not rest:
                if method == "GET":
                    return "cluster_info", self._cluster_info(backend)
                raise ApiError(405, "method_not_allowed",
                               f"{method} not allowed on cluster")
            if rest == ["power"] and method == "GET":
                return "cluster_power", self._cluster_power(backend)
            if rest == ["nodes"] and method == "GET":
                return "nodes", self._nodes(backend, params)
            if rest == ["queue"] and method == "GET":
                return "queue", self._queue(backend)
            if rest == ["jobs"]:
                if method == "GET":
                    return "list_jobs", self._list_jobs(backend, params)
                if method == "POST":
                    return "submit_job", self._submit_job(backend, body)
                raise ApiError(405, "method_not_allowed",
                               f"{method} not allowed on jobs")
            if rest and rest[0] == "jobs" and len(rest) in (2, 3):
                jobid = self._jobid(rest[1])
                if len(rest) == 2:
                    if method == "GET":
                        return "get_job", self._get_job(backend, jobid, params)
                    if method == "DELETE":
                        return "cancel_job", self._cancel_job(backend, jobid)
                    raise ApiError(405, "method_not_allowed",
                                   f"{method} not allowed on a job")
                if rest[2] == "output" and method == "GET":
                    return "job_output", self._job_output(backend, jobid)
        raise ApiError(404, "not_found", f"no such path: {path}")

    def _backend(self, name: str) -> ClusterBackend:
        try:
            return self.registry.resolve(name)
        except KeyError:
            raise ApiError(404, "unknown_cluster", f"unknown cluster: {name!r}")

    @staticmethod
    def _jobid(raw: str) -> int:
        try:
            return int(raw)
        except ValueError:
            raise ApiError(400, "bad_request", f"jobid must be an integer, got {raw!r}")

    # ------------------------------------------------------------------
    # Read endpoints
    # ------------------------------------------------------------------
    def _health(self) -> ApiResponse:
        sim = self.registry.sim
        return ApiResponse(200, {
            "status": "ok",
            "t": sim.now,
            "events_processed": sim.events_processed,
            "clusters": self.registry.names(),
        })

    def _clusters(self) -> ApiResponse:
        out = []
        for name in self.registry.names():
            backend = self.registry.resolve(name)
            out.append({
                "name": name,
                "platform": backend.platform,
                "n_nodes": backend.n_nodes,
                "aliases": self.registry.aliases_of(name),
            })
        return ApiResponse(200, {"clusters": out})

    def _cluster_info(self, backend: ClusterBackend) -> ApiResponse:
        return ApiResponse(200, {
            "name": backend.name,
            "platform": backend.platform,
            "n_nodes": backend.n_nodes,
            "free_nodes": backend.free_nodes(),
            "n_jobs": len(backend.jobs),
            "manager": backend.describe_manager(),
        })

    def _cluster_power(self, backend: ClusterBackend) -> ApiResponse:
        snap = self._snapshots.get(backend)
        body = snap.summary()
        body["cluster"] = backend.name
        return ApiResponse(200, body)

    def _nodes(self, backend: ClusterBackend, params: Dict[str, Any]) -> ApiResponse:
        detailed = _format_param(params)
        offset = _int_param(params, "offset", 0, 0)
        limit = _int_param(params, "limit", DEFAULT_PAGE_LIMIT, 1, MAX_PAGE_LIMIT)
        snap = self._snapshots.get(backend)
        ranks = range(offset, min(offset + limit, snap.n_nodes))
        next_offset = offset + limit if offset + limit < snap.n_nodes else None
        return ApiResponse(200, {
            "cluster": backend.name,
            "t": snap.t,
            "nodes": [snap.node_view(r, detailed) for r in ranks],
            "total": snap.n_nodes,
            "offset": offset,
            "limit": limit,
            "next_offset": next_offset,
        })

    def _list_jobs(self, backend: ClusterBackend, params: Dict[str, Any]) -> ApiResponse:
        detailed = _format_param(params)
        offset = _int_param(params, "offset", 0, 0)
        limit = _int_param(params, "limit", DEFAULT_PAGE_LIMIT, 1, MAX_PAGE_LIMIT)
        state = params.get("state")
        if state is not None and state not in _VALID_STATES:
            raise ApiError(
                400, "bad_request",
                f"state must be one of {sorted(_VALID_STATES)}, got {state!r}",
            )
        user = params.get("user")
        if user is not None and not isinstance(user, str):
            raise ApiError(400, "bad_request", "user must be a string")
        project = params.get("project")
        if project is not None and not isinstance(project, str):
            raise ApiError(400, "bad_request", "project must be a string")
        tenancy = backend.tenancy

        def _project_of(record: JobRecord) -> Optional[str]:
            if tenancy is not None:
                return tenancy.project_of_job(record.jobid)
            return record.spec.project

        # jobids are issued sequentially and the books are insertion
        # ordered, so this listing order is stable across pages — the
        # pagination property tests lean on exactly that.
        records = [
            r for r in backend.jobs.values()
            if (state is None or r.state.value == state)
            and (user is None or r.spec.user == user)
            and (project is None or _project_of(r) == project)
        ]
        page = records[offset:offset + limit]
        next_offset = offset + limit if offset + limit < len(records) else None
        return ApiResponse(200, {
            "cluster": backend.name,
            "jobs": [_job_view(backend, r, detailed) for r in page],
            "total": len(records),
            "offset": offset,
            "limit": limit,
            "next_offset": next_offset,
        })

    def _get_job(self, backend: ClusterBackend, jobid: int,
                 params: Dict[str, Any]) -> ApiResponse:
        detailed = _format_param(params)
        try:
            record = backend.job(jobid)
        except KeyError:
            raise ApiError(404, "unknown_job", f"no such job: {jobid}")
        return ApiResponse(200, _job_view(backend, record, detailed))

    def _job_output(self, backend: ClusterBackend, jobid: int) -> ApiResponse:
        try:
            record = backend.job(jobid)
        except KeyError:
            raise ApiError(404, "unknown_job", f"no such job: {jobid}")
        body: Dict[str, Any] = {
            "jobid": jobid,
            "state": record.state.value,
            "finished": False,
            "progress_s": None,
            "total_work_s": None,
            "runtime_s": record.runtime_s,
            "avg_node_power_w": None,
            "max_node_power_w": None,
        }
        run = backend.app_run(jobid)
        if run is not None:
            body["finished"] = bool(run.finished)
            body["progress_s"] = run.progress_s
            body["total_work_s"] = run.total_work_s
            body["avg_node_power_w"] = run.avg_node_power_w
            body["max_node_power_w"] = run.max_node_power_w
        return ApiResponse(200, body)

    def _queue(self, backend: ClusterBackend) -> ApiResponse:
        jm = backend.instance.jobmanager
        return ApiResponse(200, {
            "cluster": backend.name,
            "free_nodes": backend.free_nodes(),
            "queued": [r.jobid for r in jm.jobs.values()
                       if r.state is JobState.SUBMITTED],
            "scheduled": [r.jobid for r in jm.jobs.values()
                          if r.state is JobState.SCHEDULED],
            "running": [r.jobid for r in jm.jobs.values()
                        if r.state is JobState.RUNNING],
        })

    def _accounting_rows(self, cluster: Optional[str]) -> List[Dict[str, Any]]:
        """Per-(cluster, project) accounting rows over tenant-enabled
        backends, in (cluster, project) order. Anonymous clusters
        simply contribute no rows."""
        rows: List[Dict[str, Any]] = []
        for name in self.registry.names():
            if cluster is not None and name != cluster:
                continue
            tenancy = self.registry.resolve(name).tenancy
            if tenancy is None:
                continue
            for row in tenancy.accounting_rows():
                rows.append({"cluster": name, **row})
        return rows

    def _accounting(self, params: Dict[str, Any]) -> ApiResponse:
        detailed = _format_param(params)
        offset = _int_param(params, "offset", 0, 0)
        limit = _int_param(params, "limit", DEFAULT_PAGE_LIMIT, 1, MAX_PAGE_LIMIT)
        cluster = params.get("cluster")
        if cluster is not None and not isinstance(cluster, str):
            raise ApiError(400, "bad_request", "cluster must be a string")
        if cluster is not None:
            # Resolve for the 404 contract and canonicalize aliases.
            cluster = self._backend(cluster).name
        rows = self._accounting_rows(cluster)
        fields = DETAILED_ACCOUNTING_FIELDS if detailed else CONCISE_ACCOUNTING_FIELDS
        page = rows[offset:offset + limit]
        next_offset = offset + limit if offset + limit < len(rows) else None
        return ApiResponse(200, {
            "accounts": [{k: row[k] for k in fields} for row in page],
            "total": len(rows),
            "offset": offset,
            "limit": limit,
            "next_offset": next_offset,
        })

    def _accounting_project(self, project: str,
                            params: Dict[str, Any]) -> ApiResponse:
        del params  # project detail is always the full view
        entries = [
            {k: row[k] for k in DETAILED_ACCOUNTING_FIELDS}
            for row in self._accounting_rows(None)
            if row["project"] == project
        ]
        if not entries:
            raise ApiError(
                404, "unknown_project",
                f"no tenant-enabled cluster knows project {project!r}",
            )
        return ApiResponse(200, {"project": project, "entries": entries})

    def _site_power(self) -> ApiResponse:
        site = self.registry.site
        if site is None:
            raise ApiError(404, "no_site", "registry is not backed by a federated site")
        clusters = {}
        for name in self.registry.names():
            snap = self._snapshots.get(self.registry.resolve(name))
            clusters[name] = {
                "share_w": site.assigned_shares.get(name),
                "total_power_w": snap.total_power_w,
                "down": site.cluster_is_down(name),
            }
        return ApiResponse(200, {
            "site_budget_w": site.site_budget_w,
            "assigned_total_w": sum(site.assigned_shares.values()),
            "last_rebalance_t": site.last_rebalance_t,
            "clusters": clusters,
        })

    # ------------------------------------------------------------------
    # Write endpoints
    # ------------------------------------------------------------------
    def _submit_job(self, backend: ClusterBackend,
                    body: Optional[Dict[str, Any]]) -> ApiResponse:
        if not isinstance(body, dict):
            raise ApiError(400, "bad_request", "submit requires a JSON object body")
        app = body.get("app")
        if not isinstance(app, str) or app not in list_apps():
            raise ApiError(
                400, "unknown_app",
                f"app must be one of {list_apps()}, got {app!r}",
            )
        nnodes = body.get("nnodes")
        if not isinstance(nnodes, int) or isinstance(nnodes, bool) \
                or not 1 <= nnodes <= backend.n_nodes:
            raise ApiError(
                400, "bad_request",
                f"nnodes must be an integer in [1, {backend.n_nodes}], got {nnodes!r}",
            )
        params = body.get("params", {})
        if not isinstance(params, dict):
            raise ApiError(400, "bad_request", "params must be a JSON object")
        name = body.get("name")
        if name is not None and not isinstance(name, str):
            raise ApiError(400, "bad_request", "name must be a string")
        user = body.get("user", "user0")
        if not isinstance(user, str):
            raise ApiError(400, "bad_request", "user must be a string")
        spec = Jobspec(app=app, nnodes=nnodes, params=params, name=name, user=user)
        record = backend.submit(spec)
        if record is None:
            # Tenancy admission queued or rejected the submission; both
            # are client outcomes with the structured decision attached.
            tenancy = backend.tenancy
            decision = tenancy.last_decision if tenancy is not None else None
            body: Dict[str, Any] = {
                "cluster": backend.name,
                "admitted": False,
                "decision": decision.to_dict() if decision is not None else None,
            }
            status = 202 if decision is not None and decision.action == "queue" else 403
            return ApiResponse(status, body)
        return ApiResponse(201, _job_view(backend, record, detailed=True))

    def _cancel_job(self, backend: ClusterBackend, jobid: int) -> ApiResponse:
        if jobid not in backend.jobs:
            raise ApiError(404, "unknown_job", f"no such job: {jobid}")
        record = backend.job(jobid)
        if record.state is not JobState.SUBMITTED:
            raise ApiError(
                409, "invalid_state",
                f"job {jobid} is {record.state.value}; only submitted jobs "
                "can be cancelled",
            )
        backend.cancel(jobid)
        return ApiResponse(200, _job_view(backend, backend.job(jobid), detailed=True))

    # ------------------------------------------------------------------
    # Batch
    # ------------------------------------------------------------------
    def _batch(self, body: Optional[Dict[str, Any]]) -> ApiResponse:
        if not isinstance(body, dict) or not isinstance(body.get("ops"), list):
            raise ApiError(400, "bad_request",
                           "batch requires a JSON body with an 'ops' list")
        ops = body["ops"]
        if not ops:
            raise ApiError(400, "bad_request", "batch ops list is empty")
        if len(ops) > MAX_BATCH_OPS:
            raise ApiError(400, "bad_request",
                           f"batch is limited to {MAX_BATCH_OPS} ops, got {len(ops)}")
        results: List[Dict[str, Any]] = []
        for i, op in enumerate(ops):
            if not isinstance(op, dict) or "path" not in op:
                results.append({
                    "index": i, "status": 400,
                    "body": {"error": {"code": "bad_request",
                                       "message": "each op needs method+path"}},
                })
                continue
            if str(op.get("path", "")).lstrip("/").startswith("v1/batch"):
                results.append({
                    "index": i, "status": 400,
                    "body": {"error": {"code": "bad_request",
                                       "message": "batch ops cannot nest batches"}},
                })
                continue
            sub = self.handle(
                str(op.get("method", "GET")), str(op["path"]),
                op.get("params"), op.get("body"),
            )
            results.append({"index": i, "status": sub.status, "body": sub.body})
        return ApiResponse(200, {"results": results})
