"""Columnar power snapshots: the serving tier's read model.

Power queries under a query storm must be (a) cheap and (b) *pure* —
``/v1/clusters/x/power`` served ten thousand times must leave the
simulation byte-identical to never having been asked. The monitor
client's ``fetch`` is neither: it round-trips the TBON and steps the
engine. So the serving tier never touches it; instead it materialises
a :class:`PowerSnapshot` straight off the hardware models'
side-effect-free accessors (:meth:`~repro.hardware.node.Node.total_power_w`
and friends) into flat numpy columns.

The snapshot is cached per backend and keyed on the engine clock
``(sim.now, events_processed)``: node power only changes when an event
runs, so between events every request — a thousand concurrent clients
included — hits the same frozen arrays. One refresh per engine step is
the worst case, independent of client count; the
``serving_snapshot_refreshes_total`` counter makes the hit rate
observable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.serving.registry import ClusterBackend


class PowerSnapshot:
    """Frozen per-node power columns plus cluster-level aggregates."""

    def __init__(self, backend: ClusterBackend) -> None:
        nodes = backend.instance.nodes
        self.t = backend.sim.now
        self.n_nodes = len(nodes)
        self.hostnames: List[str] = [n.hostname for n in nodes]
        self.power_w = np.fromiter(
            (n.total_power_w() for n in nodes), dtype=np.float64, count=self.n_nodes
        )
        self.raw_power_w = np.fromiter(
            (n.raw_power_w() for n in nodes), dtype=np.float64, count=self.n_nodes
        )
        self.idle_power_w = np.fromiter(
            (n.idle_power_w() for n in nodes), dtype=np.float64, count=self.n_nodes
        )
        self.total_power_w = float(self.power_w.sum())
        self.total_idle_w = float(self.idle_power_w.sum())
        #: Manager view (None when no manager is loaded).
        self.manager: Optional[Dict[str, object]] = backend.describe_manager()

    def node_view(self, rank: int, detailed: bool) -> Dict[str, object]:
        view: Dict[str, object] = {
            "rank": rank,
            "hostname": self.hostnames[rank],
            "power_w": float(self.power_w[rank]),
        }
        if detailed:
            view["raw_power_w"] = float(self.raw_power_w[rank])
            view["idle_power_w"] = float(self.idle_power_w[rank])
        return view

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "t": self.t,
            "n_nodes": self.n_nodes,
            "total_power_w": self.total_power_w,
            "total_idle_w": self.total_idle_w,
            "budget_w": None,
            "policy": None,
            "per_node_share_w": None,
            "active_jobs": [],
            "active_nodes": 0,
        }
        if self.manager is not None:
            out["budget_w"] = self.manager["global_cap_w"]
            out["policy"] = self.manager["policy"]
            out["per_node_share_w"] = self.manager["per_node_share_w"]
            out["active_jobs"] = self.manager["active_jobs"]
            out["active_nodes"] = self.manager["active_nodes"]
        return out


class SnapshotCache:
    """One cached :class:`PowerSnapshot` per backend, engine-clock keyed."""

    def __init__(self, metrics=None) -> None:
        self._cache: Dict[str, Tuple[Tuple[float, int], PowerSnapshot]] = {}
        self._refreshes = (
            metrics.counter(
                "serving_snapshot_refreshes_total",
                help="Power snapshots materialised (cache misses).",
            )
            if metrics is not None
            else None
        )

    def get(self, backend: ClusterBackend) -> PowerSnapshot:
        key = (backend.sim.now, backend.sim.events_processed)
        hit = self._cache.get(backend.name)
        if hit is not None and hit[0] == key:
            return hit[1]
        snap = PowerSnapshot(backend)
        self._cache[backend.name] = (key, snap)
        if self._refreshes is not None:
            self._refreshes.inc()
        return snap
