"""Seeded load generation: deterministic query storms with real latency.

The harness separates *what is asked* from *how fast the server answers*:

* **Trace generation** is pure. ``generate_trace(seed, profile)`` draws
  an open-loop arrival process (exponential interarrivals, client
  assignment) and a weighted operation mix from dedicated
  ``serving/*`` RNG substreams, and emits a list of
  :class:`TracedRequest` — same seed, same profile → byte-identical
  trace (``trace_sha256`` pins this). Request payloads are generated
  *valid by construction*: jobids are issued sequentially by the job
  manager and submissions execute in trace order, so the generator
  always knows how many jobs exist and never targets a missing one —
  a clean run has zero errors by design, and any error is a finding.
* **Execution** replays the trace under asyncio with one task per
  simulated client. A turn ladder hands execution to the globally next
  sequence number, so however the event loop schedules the client
  tasks, requests hit the service in exactly trace order and the
  engine advances at fixed request-count intervals — responses are
  deterministic (``response_digest`` pins this) while per-request
  wall-clock latencies remain genuine measurements.

Latency methodology: each latency sample spans only the request's own
service time (the clock starts after the client wins its turn), p50 /
p95 / p99 are nearest-rank percentiles over all samples, and results
are emitted in the existing ``repro-bench/1`` schema so
``repro bench --compare`` can gate serving regressions like any other
benchmark.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.harness import BenchReport, BenchResult
from repro.simkernel.rng import RandomStreams
from repro.serving.driver import SimDriver
from repro.serving.service import PowerService

#: Default operation mix: read-heavy with a thin write stream, the
#: shape of a production monitoring dashboard plus occasional submits.
#: Weights must sum to 1.
DEFAULT_OP_MIX: Tuple[Tuple[str, float], ...] = (
    ("cluster_power", 0.22),
    ("list_jobs", 0.20),
    ("get_job", 0.18),
    ("nodes", 0.10),
    ("queue", 0.10),
    ("job_output", 0.08),
    ("health", 0.04),
    ("batch_power", 0.03),
    ("submit_job", 0.05),
)

#: Op mix for tenancy-aware campaigns: the default dashboard shape with
#: a heavy ``/v1/accounting`` read stream carved out of the other reads.
#: DEFAULT_OP_MIX stays untouched — golden serving traces pin it.
ACCOUNTING_OP_MIX: Tuple[Tuple[str, float], ...] = (
    ("cluster_power", 0.18),
    ("list_jobs", 0.16),
    ("get_job", 0.14),
    ("accounting", 0.20),
    ("nodes", 0.08),
    ("queue", 0.08),
    ("job_output", 0.06),
    ("health", 0.04),
    ("batch_power", 0.02),
    ("submit_job", 0.04),
)

#: Apps the generator submits (portable on every platform).
SUBMIT_APPS: Tuple[str, ...] = ("gemm", "quicksilver", "lammps")


@dataclass(frozen=True)
class LoadProfile:
    """Knobs of one load campaign (see docs/serving.md)."""

    clients: int = 100
    requests_per_client: int = 4
    #: Jobs submitted (and partially run) before the storm, so read ops
    #: have something to read from request one.
    warmup_jobs: int = 4
    #: Open-loop arrival rate (requests per *virtual* second; shapes the
    #: client interleaving, not the wall clock).
    arrival_rate_per_s: float = 200.0
    op_mix: Tuple[Tuple[str, float], ...] = DEFAULT_OP_MIX
    #: Probability a read asks for ``detailed`` instead of ``concise``.
    detailed_fraction: float = 0.3
    #: Advance the engine ``advance_dt_s`` simulated seconds after every
    #: N executed requests (0 freezes time for the whole storm).
    advance_every: int = 50
    advance_dt_s: float = 1.0
    cluster: str = "default"

    @property
    def total_requests(self) -> int:
        return self.clients * self.requests_per_client


@dataclass(frozen=True)
class TracedRequest:
    """One request of a generated trace (pure data, JSONL-stable)."""

    seq: int
    client: int
    t_arrival: float
    op: str
    method: str
    path: str
    params: Optional[Dict[str, Any]] = None
    body: Optional[Dict[str, Any]] = None

    def to_line(self) -> str:
        return json.dumps({
            "seq": self.seq,
            "client": self.client,
            "t_arrival": self.t_arrival,
            "op": self.op,
            "method": self.method,
            "path": self.path,
            "params": self.params,
            "body": self.body,
        }, sort_keys=True)


def trace_lines(trace: List[TracedRequest]) -> List[str]:
    return [req.to_line() for req in trace]


def trace_sha256(trace: List[TracedRequest]) -> str:
    blob = ("\n".join(trace_lines(trace)) + "\n").encode()
    return hashlib.sha256(blob).hexdigest()


# ---------------------------------------------------------------------------
# Trace generation (pure)
# ---------------------------------------------------------------------------


def generate_trace(seed: int, profile: LoadProfile,
                   n_nodes: int = 16) -> List[TracedRequest]:
    """Draw the full request trace for ``seed`` (same seed → same bytes).

    Three substreams keep the dimensions independent — reweighting the
    op mix never perturbs which client a request lands on:

    * ``serving/arrivals`` — interarrival gaps + client assignment;
    * ``serving/ops``      — operation choice;
    * ``serving/payload``  — parameters of the chosen operation.
    """
    if profile.clients < 1 or profile.requests_per_client < 1:
        raise ValueError("profile needs >= 1 client and >= 1 request each")
    total_weight = sum(w for _, w in profile.op_mix)
    if abs(total_weight - 1.0) > 1e-9:
        raise ValueError(f"op_mix weights must sum to 1, got {total_weight}")

    streams = RandomStreams(seed=seed)
    arrivals = streams.get("serving/arrivals")
    ops_rng = streams.get("serving/ops")
    payload = streams.get("serving/payload")

    cluster = profile.cluster
    known_jobs = profile.warmup_jobs
    trace: List[TracedRequest] = []
    t = 0.0
    for seq in range(profile.total_requests):
        t += float(arrivals.exponential(1.0 / profile.arrival_rate_per_s))
        client = int(arrivals.integers(profile.clients))
        draw = float(ops_rng.random())
        op = profile.op_mix[-1][0]
        acc = 0.0
        for name, weight in profile.op_mix:
            acc += weight
            if draw < acc:
                op = name
                break
        if op in ("get_job", "job_output") and known_jobs == 0:
            op = "list_jobs"

        fmt = "detailed" if float(payload.random()) < profile.detailed_fraction \
            else "concise"
        method, path = "GET", ""
        params: Optional[Dict[str, Any]] = None
        body: Optional[Dict[str, Any]] = None
        if op == "cluster_power":
            path = f"/v1/clusters/{cluster}/power"
        elif op == "list_jobs":
            params = {
                "response_format": fmt,
                "limit": int(payload.choice([2, 5, 10, 50])),
                "offset": 0,
            }
            path = f"/v1/clusters/{cluster}/jobs"
        elif op == "get_job":
            jobid = 1 + int(payload.integers(known_jobs))
            params = {"response_format": fmt}
            path = f"/v1/clusters/{cluster}/jobs/{jobid}"
        elif op == "nodes":
            params = {
                "response_format": fmt,
                "limit": int(payload.choice([4, 8, 16])),
                "offset": 0,
            }
            path = f"/v1/clusters/{cluster}/nodes"
        elif op == "queue":
            path = f"/v1/clusters/{cluster}/queue"
        elif op == "job_output":
            jobid = 1 + int(payload.integers(known_jobs))
            path = f"/v1/clusters/{cluster}/jobs/{jobid}/output"
        elif op == "health":
            path = "/v1/health"
        elif op == "batch_power":
            method = "POST"
            path = "/v1/batch"
            body = {"ops": [
                {"method": "GET", "path": f"/v1/clusters/{cluster}/power"},
                {"method": "GET", "path": f"/v1/clusters/{cluster}/queue"},
                {"method": "GET", "path": "/v1/health"},
            ]}
        elif op == "submit_job":
            method = "POST"
            path = f"/v1/clusters/{cluster}/jobs"
            body = {
                "app": str(payload.choice(list(SUBMIT_APPS))),
                "nnodes": 1 + int(payload.integers(min(4, n_nodes))),
                "params": {"work_scale": round(0.5 + float(payload.random()) * 0.5, 3)},
                "name": f"load-{seq}",
            }
            known_jobs += 1
        elif op == "accounting":
            params = {
                "response_format": fmt,
                "limit": int(payload.choice([2, 5, 10])),
                "offset": 0,
            }
            path = "/v1/accounting"
        else:
            raise ValueError(f"unknown op in mix: {op!r}")
        trace.append(TracedRequest(
            seq=seq, client=client, t_arrival=round(t, 6), op=op,
            method=method, path=path, params=params, body=body,
        ))
    return trace


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


@dataclass
class LoadtestResult:
    """Outcome of one executed trace."""

    n_requests: int
    errors: int
    status_counts: Dict[str, int]
    op_counts: Dict[str, int]
    #: Sorted wall-clock per-request latencies (seconds).
    latencies_s: List[float]
    wall_s: float
    trace_sha256: str
    response_digest: str
    mode: str
    clients: int
    seed: int

    def percentile_ms(self, p: float) -> float:
        """Nearest-rank percentile over the latency samples, in ms."""
        if not self.latencies_s:
            return 0.0
        rank = min(len(self.latencies_s),
                   max(1, math.ceil(p / 100.0 * len(self.latencies_s))))
        return self.latencies_s[rank - 1] * 1e3

    @property
    def p50_ms(self) -> float:
        return self.percentile_ms(50)

    @property
    def p95_ms(self) -> float:
        return self.percentile_ms(95)

    @property
    def p99_ms(self) -> float:
        return self.percentile_ms(99)

    @property
    def requests_per_s(self) -> float:
        return self.n_requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def error_rate(self) -> float:
        return self.errors / self.n_requests if self.n_requests else 0.0

    def to_report(self, name: str = "serving", quick: bool = False) -> BenchReport:
        """Wrap the campaign in the ``repro-bench/1`` schema."""
        params = {"clients": self.clients, "seed": self.seed, "mode": self.mode,
                  "requests": self.n_requests}
        report = BenchReport(
            name=name, quick=quick, created_unix=int(time.time()), repeats=1
        )
        report.results = [
            BenchResult("loadtest", "requests_per_s", self.requests_per_s,
                        self.wall_s, dict(params)),
            BenchResult("loadtest", "latency_p50_ms", self.p50_ms,
                        self.wall_s, dict(params)),
            BenchResult("loadtest", "latency_p95_ms", self.p95_ms,
                        self.wall_s, dict(params)),
            BenchResult("loadtest", "latency_p99_ms", self.p99_ms,
                        self.wall_s, dict(params)),
            BenchResult("loadtest", "errors", float(self.errors),
                        self.wall_s, dict(params)),
        ]
        return report

    def summary(self) -> str:
        return (
            f"{self.n_requests} requests / {self.clients} clients "
            f"({self.mode}): {self.requests_per_s:.0f} req/s, "
            f"p50={self.p50_ms:.2f}ms p95={self.p95_ms:.2f}ms "
            f"p99={self.p99_ms:.2f}ms, errors={self.errors} "
            f"({self.error_rate * 100:.2f}%)"
        )


def _canonical(obj: Any) -> Any:
    """Round floats for a stable cross-run response digest."""
    if isinstance(obj, float):
        return round(obj, 9)
    if isinstance(obj, dict):
        return {k: _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def _response_digest(responses: List[Tuple[int, Dict[str, Any]]]) -> str:
    digest = hashlib.sha256()
    for seq, (status, body) in enumerate(responses):
        line = json.dumps(
            {"seq": seq, "status": status, "body": _canonical(body)},
            sort_keys=True,
        )
        digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()


async def _execute_ordered(
    trace: List[TracedRequest],
    execute: Callable,
    after_request: Optional[Callable[[int], None]] = None,
) -> Tuple[List[Tuple[int, Dict[str, Any]]], List[float]]:
    """Replay the trace: one task per client, a turn ladder for order.

    Every client's requests carry globally increasing sequence numbers,
    so the holder of the next turn is always a task whose earlier
    requests have completed — the ladder cannot deadlock, and requests
    execute in exactly trace order regardless of event-loop scheduling.
    """
    n = len(trace)
    turns = [asyncio.Event() for _ in range(n + 1)]
    turns[0].set()
    responses: List[Optional[Tuple[int, Dict[str, Any]]]] = [None] * n
    latencies: List[float] = [0.0] * n

    by_client: Dict[int, List[TracedRequest]] = {}
    for req in trace:
        by_client.setdefault(req.client, []).append(req)

    async def _client(requests: List[TracedRequest]) -> None:
        for req in requests:
            await turns[req.seq].wait()
            t0 = time.perf_counter()
            responses[req.seq] = await execute(req)
            latencies[req.seq] = time.perf_counter() - t0
            if after_request is not None:
                after_request(req.seq)
            turns[req.seq + 1].set()

    await asyncio.gather(*(_client(reqs) for reqs in by_client.values()))
    return [r for r in responses if r is not None], latencies


def run_loadtest(
    seed: int,
    profile: LoadProfile,
    service: PowerService,
    driver: SimDriver,
    trace: Optional[List[TracedRequest]] = None,
) -> LoadtestResult:
    """Generate (unless given) and execute a trace in-process.

    Warmup jobs are submitted and given a few simulated seconds before
    the storm so list/get/output reads land on real state; then the
    trace replays under the turn ladder with the engine advancing every
    ``profile.advance_every`` requests. Everything a response can
    contain is a function of (seed, profile, cluster construction), so
    ``response_digest`` is stable across runs.
    """
    backend = service.registry.resolve(profile.cluster)
    if trace is None:
        trace = generate_trace(seed, profile, n_nodes=backend.n_nodes)

    for i in range(profile.warmup_jobs):
        response = service.handle(
            "POST", f"/v1/clusters/{profile.cluster}/jobs",
            body={"app": "gemm", "nnodes": 1,
                  "params": {"work_scale": 0.5}, "name": f"warmup-{i}"},
        )
        if response.status != 201:
            raise RuntimeError(f"warmup submit failed: {response.body}")
    if profile.warmup_jobs:
        driver.advance(4.0)

    async def _execute(req: TracedRequest) -> Tuple[int, Dict[str, Any]]:
        response = service.handle(req.method, req.path, req.params, req.body)
        return response.status, response.body

    def _after(seq: int) -> None:
        if profile.advance_every and (seq + 1) % profile.advance_every == 0:
            driver.advance(profile.advance_dt_s)

    t0 = time.perf_counter()
    responses, latencies = asyncio.run(_execute_ordered(trace, _execute, _after))
    wall_s = time.perf_counter() - t0
    return _collect(trace, responses, latencies, wall_s, "inproc", profile, seed)


async def arun_loadtest_http(
    seed: int,
    profile: LoadProfile,
    host: str,
    port: int,
    trace: Optional[List[TracedRequest]] = None,
    n_nodes: int = 16,
    warmup: bool = True,
) -> LoadtestResult:
    """Execute a trace against a live HTTP endpoint (one socket/client).

    The server's dispatcher serializes requests; the turn ladder here
    additionally fixes *which order they arrive in*, so an idle-engine
    server (no advance loop) yields the same responses as in-process
    execution with ``advance_every=0``. Awaitable so a caller can run
    the server and the storm on one event loop.
    """
    from repro.serving.http import AsyncApiClient

    if trace is None:
        trace = generate_trace(seed, profile, n_nodes=n_nodes)

    if warmup:
        warm = AsyncApiClient(host, port)
        for i in range(profile.warmup_jobs):
            status, body = await warm.request(
                "POST", f"/v1/clusters/{profile.cluster}/jobs",
                body={"app": "gemm", "nnodes": 1,
                      "params": {"work_scale": 0.5}, "name": f"warmup-{i}"},
            )
            if status != 201:
                raise RuntimeError(f"warmup submit failed: {body}")
        await warm.close()
    clients: Dict[int, AsyncApiClient] = {}

    async def _execute(req: TracedRequest) -> Tuple[int, Dict[str, Any]]:
        conn = clients.get(req.client)
        if conn is None:
            conn = clients[req.client] = AsyncApiClient(host, port)
        return await conn.request(req.method, req.path, req.params, req.body)

    t0 = time.perf_counter()
    responses, latencies = await _execute_ordered(trace, _execute)
    wall_s = time.perf_counter() - t0
    for conn in clients.values():
        await conn.close()
    return _collect(trace, responses, latencies, wall_s, "http", profile, seed)


def run_loadtest_http(
    seed: int,
    profile: LoadProfile,
    host: str,
    port: int,
    trace: Optional[List[TracedRequest]] = None,
    n_nodes: int = 16,
    warmup: bool = True,
) -> LoadtestResult:
    """Sync wrapper over :func:`arun_loadtest_http` (own event loop)."""
    return asyncio.run(arun_loadtest_http(
        seed, profile, host, port, trace=trace, n_nodes=n_nodes, warmup=warmup,
    ))


def _collect(
    trace: List[TracedRequest],
    responses: List[Tuple[int, Dict[str, Any]]],
    latencies: List[float],
    wall_s: float,
    mode: str,
    profile: LoadProfile,
    seed: int,
) -> LoadtestResult:
    status_counts: Dict[str, int] = {}
    op_counts: Dict[str, int] = {}
    errors = 0
    for req, (status, _body) in zip(trace, responses):
        status_counts[str(status)] = status_counts.get(str(status), 0) + 1
        op_counts[req.op] = op_counts.get(req.op, 0) + 1
        if status >= 400:
            errors += 1
    return LoadtestResult(
        n_requests=len(trace),
        errors=errors,
        status_counts=dict(sorted(status_counts.items())),
        op_counts=dict(sorted(op_counts.items())),
        latencies_s=sorted(latencies),
        wall_s=wall_s,
        trace_sha256=trace_sha256(trace),
        response_digest=_response_digest(responses),
        mode=mode,
        clients=profile.clients,
        seed=seed,
    )
