"""Serving tier: a production-shaped API over the simulated machine.

The paper frames job power management as a *service* operators and
users query continuously (PAPER.md §V; ORNL's system-scale deployment
runs exactly this shape). This package is that front end:

* :mod:`repro.serving.registry` — semantic cluster names → backends;
* :mod:`repro.serving.snapshot` — cached columnar power read model;
* :mod:`repro.serving.service`  — the transport-free API core;
* :mod:`repro.serving.driver`   — the single engine-stepping authority;
* :mod:`repro.serving.client`   — in-process client (``run_and_wait``);
* :mod:`repro.serving.http`     — asyncio HTTP/1.1 shell + client;
* :mod:`repro.serving.loadgen`  — seeded, deterministic load harness.

Determinism contract: request handling never steps the simulator and
reads only snapshot/bookkeeping state, so any volume of API traffic
leaves a run's simtest digest untouched (pinned by test); time only
advances through the driver, on a deterministic schedule.

See docs/serving.md for the endpoint catalog and methodology.
"""

from repro.serving.client import ServingClient, ServingError
from repro.serving.driver import SimDriver
from repro.serving.http import AsyncApiClient, ServingServer
from repro.serving.loadgen import (
    DEFAULT_OP_MIX,
    LoadProfile,
    LoadtestResult,
    TracedRequest,
    arun_loadtest_http,
    generate_trace,
    run_loadtest,
    run_loadtest_http,
    trace_lines,
    trace_sha256,
)
from repro.serving.registry import ClusterBackend, ClusterRegistry
from repro.serving.service import (
    ApiError,
    ApiResponse,
    CONCISE_JOB_FIELDS,
    DETAILED_JOB_FIELDS,
    PowerService,
)
from repro.serving.snapshot import PowerSnapshot, SnapshotCache

__all__ = [
    "ApiError",
    "ApiResponse",
    "AsyncApiClient",
    "CONCISE_JOB_FIELDS",
    "ClusterBackend",
    "ClusterRegistry",
    "DEFAULT_OP_MIX",
    "DETAILED_JOB_FIELDS",
    "LoadProfile",
    "LoadtestResult",
    "PowerService",
    "PowerSnapshot",
    "ServingClient",
    "ServingError",
    "ServingServer",
    "SimDriver",
    "SnapshotCache",
    "TracedRequest",
    "arun_loadtest_http",
    "generate_trace",
    "run_loadtest",
    "run_loadtest_http",
    "trace_lines",
    "trace_sha256",
]
