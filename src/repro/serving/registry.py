"""Cluster registry: semantic backend names for the serving tier.

The API never hands out object references — clients address clusters by
*semantic name* (``"default"``, ``"lassen-prod"``, an alias like
``"prod"``), and the registry maps those names onto
:class:`~repro.cluster.PowerManagedCluster` backends. A registry is
built one of two ways:

* :meth:`ClusterRegistry.from_cluster` — one standalone cluster under a
  chosen name (the ``repro serve`` / ``repro loadtest`` shape);
* :meth:`ClusterRegistry.from_site` — every cluster of a
  :class:`~repro.federation.site.FederatedSite`, named by its
  :class:`~repro.federation.site.ClusterSpec`, with the site retained
  so ``/v1/site/power`` can serve the federation budget view.

All clusters in one registry must share one simulator — the serving
tier has a single engine-stepping driver, and a registry spanning two
engines would let one request stall behind a foreign clock.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import JobRecord, Jobspec


class ClusterBackend:
    """One serveable cluster: a thin adapter the service reads through.

    Everything here delegates to the wrapped cluster; the adapter adds
    no state beyond its name, so a backend can be registered under any
    number of aliases without divergence.
    """

    def __init__(self, name: str, cluster: PowerManagedCluster) -> None:
        self.name = name
        self.cluster = cluster

    # -- identity ------------------------------------------------------
    @property
    def sim(self):
        return self.cluster.sim

    @property
    def instance(self):
        return self.cluster.instance

    @property
    def platform(self) -> str:
        return self.cluster.instance.platform

    @property
    def n_nodes(self) -> int:
        return self.cluster.instance.n_nodes

    # -- jobs ----------------------------------------------------------
    @property
    def jobs(self) -> Dict[int, JobRecord]:
        """Insertion-ordered jobid → record map (the rank-0 books)."""
        return self.cluster.instance.jobmanager.jobs

    def job(self, jobid: int) -> JobRecord:
        return self.cluster.instance.jobmanager.jobs[jobid]

    def submit(self, spec: Jobspec) -> JobRecord:
        return self.cluster.submit(spec)

    def cancel(self, jobid: int) -> None:
        self.cluster.instance.jobmanager.cancel(jobid)

    def app_run(self, jobid: int):
        """The job's application run, or None before it starts."""
        return self.cluster.instance.app_runs.get(jobid)

    def free_nodes(self) -> int:
        return self.cluster.instance.scheduler.free_count

    # -- power ---------------------------------------------------------
    @property
    def manager(self):
        return self.cluster.manager

    # -- tenancy -------------------------------------------------------
    @property
    def tenancy(self):
        """The cluster's tenancy coordinator, or None (anonymous)."""
        return getattr(self.cluster, "tenancy", None)

    def job_power_state(self, jobid: int):
        """Manager-internal share bookkeeping for an active job."""
        if self.cluster.manager is None:
            return None
        return self.cluster.manager.cluster.job_level.jobs.get(jobid)

    def describe_manager(self) -> Optional[Dict[str, object]]:
        if self.cluster.manager is None:
            return None
        return self.cluster.manager.cluster.describe()


class ClusterRegistry:
    """Semantic name → :class:`ClusterBackend`, plus the optional site."""

    def __init__(self, site=None) -> None:
        self.site = site
        self._backends: Dict[str, ClusterBackend] = {}
        self._aliases: Dict[str, str] = {}

    # -- construction --------------------------------------------------
    @classmethod
    def from_cluster(
        cls,
        cluster: PowerManagedCluster,
        name: str = "default",
        aliases: Iterable[str] = (),
    ) -> "ClusterRegistry":
        registry = cls()
        registry.register(ClusterBackend(name, cluster), aliases=aliases)
        return registry

    @classmethod
    def from_site(cls, site) -> "ClusterRegistry":
        registry = cls(site=site)
        for name in sorted(site.clusters):
            registry.register(ClusterBackend(name, site.clusters[name]))
        return registry

    def register(
        self, backend: ClusterBackend, aliases: Iterable[str] = ()
    ) -> ClusterBackend:
        if backend.name in self._backends or backend.name in self._aliases:
            raise ValueError(f"cluster name already registered: {backend.name!r}")
        if self._backends:
            existing = next(iter(self._backends.values()))
            if backend.sim is not existing.sim:
                raise ValueError(
                    "all clusters in a registry must share one simulator "
                    "(single-driver serving contract)"
                )
        self._backends[backend.name] = backend
        for alias in aliases:
            self.alias(alias, backend.name)
        return backend

    def alias(self, alias: str, target: str) -> None:
        if alias in self._backends or alias in self._aliases:
            raise ValueError(f"cluster name already registered: {alias!r}")
        if target not in self._backends:
            raise KeyError(f"unknown cluster: {target!r}")
        self._aliases[alias] = target

    # -- lookup --------------------------------------------------------
    def resolve(self, name: str) -> ClusterBackend:
        canonical = self._aliases.get(name, name)
        try:
            return self._backends[canonical]
        except KeyError:
            raise KeyError(f"unknown cluster: {name!r}")

    def names(self) -> List[str]:
        """Canonical (non-alias) names, registration order."""
        return list(self._backends)

    def aliases_of(self, name: str) -> List[str]:
        return sorted(a for a, t in self._aliases.items() if t == name)

    def default(self) -> ClusterBackend:
        if not self._backends:
            raise KeyError("registry has no clusters")
        return next(iter(self._backends.values()))

    @property
    def sim(self):
        return self.default().sim
