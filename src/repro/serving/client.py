"""In-process serving client: ergonomic helpers over the raw API.

``ServingClient`` wraps a :class:`~repro.serving.service.PowerService`
(and optionally a :class:`~repro.serving.driver.SimDriver`) in typed
convenience calls — the same surface a remote HTTP client sees, minus
the socket. Error responses raise :class:`ServingError` so scripted
callers get exceptions instead of status-code plumbing; the high-level
``run_and_wait`` composes submit + driver polling + output fetch into
the one-liner most experiment scripts want.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.serving.driver import SimDriver
from repro.serving.service import ApiResponse, PowerService


class ServingError(Exception):
    """A non-2xx API response, surfaced as an exception."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"[{status} {code}] {message}")
        self.status = int(status)
        self.code = code
        self.message = message

    @classmethod
    def from_response(cls, response: ApiResponse) -> "ServingError":
        err = response.body.get("error", {}) if isinstance(response.body, dict) else {}
        return cls(
            response.status,
            str(err.get("code", "unknown")),
            str(err.get("message", "request failed")),
        )


class ServingClient:
    """Synchronous client bound to an in-process service."""

    def __init__(self, service: PowerService,
                 driver: Optional[SimDriver] = None) -> None:
        self.service = service
        self.driver = driver

    # -- plumbing ------------------------------------------------------
    def request(self, method: str, path: str,
                params: Optional[Dict[str, Any]] = None,
                body: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        response = self.service.handle(method, path, params, body)
        if not response.ok:
            raise ServingError.from_response(response)
        return response.body

    # -- reads ---------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/health")

    def clusters(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/v1/clusters")["clusters"]

    def cluster_power(self, cluster: str = "default") -> Dict[str, Any]:
        return self.request("GET", f"/v1/clusters/{cluster}/power")

    def site_power(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/site/power")

    def nodes(self, cluster: str = "default", *,
              response_format: str = "concise",
              offset: int = 0, limit: int = 100) -> Dict[str, Any]:
        return self.request(
            "GET", f"/v1/clusters/{cluster}/nodes",
            {"response_format": response_format, "offset": offset, "limit": limit},
        )

    def get_job(self, jobid: int, cluster: str = "default", *,
                response_format: str = "detailed") -> Dict[str, Any]:
        return self.request(
            "GET", f"/v1/clusters/{cluster}/jobs/{jobid}",
            {"response_format": response_format},
        )

    def job_output(self, jobid: int, cluster: str = "default") -> Dict[str, Any]:
        return self.request("GET", f"/v1/clusters/{cluster}/jobs/{jobid}/output")

    def queue(self, cluster: str = "default") -> Dict[str, Any]:
        return self.request("GET", f"/v1/clusters/{cluster}/queue")

    def list_jobs(self, cluster: str = "default", *, state: Optional[str] = None,
                  response_format: str = "concise",
                  page_limit: int = 100) -> Iterator[Dict[str, Any]]:
        """Iterate every job view, transparently following pagination."""
        offset = 0
        while True:
            params: Dict[str, Any] = {
                "response_format": response_format,
                "offset": offset,
                "limit": page_limit,
            }
            if state is not None:
                params["state"] = state
            page = self.request("GET", f"/v1/clusters/{cluster}/jobs", params)
            for job in page["jobs"]:
                yield job
            if page["next_offset"] is None:
                return
            offset = page["next_offset"]

    # -- writes --------------------------------------------------------
    def submit_job(self, app: str, nnodes: int, cluster: str = "default",
                   **fields: Any) -> Dict[str, Any]:
        body = {"app": app, "nnodes": nnodes, **fields}
        return self.request("POST", f"/v1/clusters/{cluster}/jobs", body=body)

    def cancel_job(self, jobid: int, cluster: str = "default") -> Dict[str, Any]:
        return self.request("DELETE", f"/v1/clusters/{cluster}/jobs/{jobid}")

    def batch(self, ops: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return self.request("POST", "/v1/batch", body={"ops": ops})["results"]

    # -- high level ----------------------------------------------------
    def run_and_wait(self, app: str, nnodes: int, cluster: str = "default",
                     poll_s: float = 2.0, timeout_s: float = 1e7,
                     **fields: Any) -> Dict[str, Any]:
        """Submit, advance simulated time to completion, return output."""
        if self.driver is None:
            raise RuntimeError("run_and_wait needs a SimDriver-backed client")
        job = self.submit_job(app, nnodes, cluster=cluster, **fields)
        backend = self.service.registry.resolve(cluster)
        self.driver.wait_for_job(
            backend, job["jobid"], poll_s=poll_s, timeout_s=timeout_s
        )
        return self.job_output(job["jobid"], cluster=cluster)
