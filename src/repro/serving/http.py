"""Asyncio HTTP/1.1 shell around the synchronous service core.

Stdlib-only (``asyncio.start_server`` + hand-rolled HTTP/1.1 with
keep-alive): the container image carries no web framework, and the
protocol surface the API needs — JSON bodies, query strings,
Content-Length framing — is small enough to own.

Concurrency model: every connection handler parses requests and then
awaits a future it enqueued on the **single dispatcher task**, which
executes requests strictly in arrival order and is also the only place
the periodic engine ``advance`` runs. That funnels thousands of
concurrent sockets down to one serialized stream of
``service.handle`` calls — the same single-driver determinism contract
the in-process path has, now under real network concurrency.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.serving.driver import SimDriver
from repro.serving.service import ApiResponse, PowerService

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error",
}

#: Largest accepted request head or body (bytes); a batch of 256 ops
#: fits comfortably, an abusive payload does not.
MAX_REQUEST_BYTES = 1 << 20


def _encode_response(response: ApiResponse, keep_alive: bool) -> bytes:
    payload = json.dumps(response.body, sort_keys=True).encode()
    reason = _REASONS.get(response.status, "Unknown")
    head = (
        f"HTTP/1.1 {response.status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode() + payload


class ServingServer:
    """A long-running service instance bound to a TCP port."""

    def __init__(
        self,
        service: PowerService,
        driver: SimDriver,
        host: str = "127.0.0.1",
        port: int = 0,
        advance_interval_s: Optional[float] = None,
        advance_dt_s: float = 2.0,
    ) -> None:
        self.service = service
        self.driver = driver
        self.host = host
        self.port = port
        #: Wall-clock period between engine advances; None never steps
        #: the engine (pure snapshot serving, e.g. under the smoke test).
        self.advance_interval_s = advance_interval_s
        self.advance_dt_s = advance_dt_s
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._advancer: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._queue = asyncio.Queue()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=MAX_REQUEST_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.advance_interval_s is not None:
            self._advancer = asyncio.create_task(self._advance_loop())

    async def stop(self) -> None:
        for task in (self._advancer, self._dispatcher):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._advancer = self._dispatcher = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # The single dispatcher
    # ------------------------------------------------------------------
    async def dispatch(self, method: str, path: str,
                       params: Optional[Dict[str, Any]] = None,
                       body: Optional[Dict[str, Any]] = None) -> ApiResponse:
        """Enqueue one request for ordered execution; await its result."""
        assert self._queue is not None, "server not started"
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put(("request", (method, path, params, body), future))
        return await future

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        while True:
            kind, payload, future = await self._queue.get()
            try:
                if kind == "advance":
                    result: Any = self.driver.advance(payload)
                else:
                    method, path, params, body = payload
                    result = self.service.handle(method, path, params, body)
            except Exception as exc:  # noqa: BLE001 - reported to the waiter
                if future is not None and not future.done():
                    future.set_exception(exc)
                continue
            if future is not None and not future.done():
                future.set_result(result)

    async def _advance_loop(self) -> None:
        assert self._queue is not None
        while True:
            await asyncio.sleep(self.advance_interval_s)
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            await self._queue.put(("advance", self.advance_dt_s, future))
            await future

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                error, request = parsed
                if error is not None:
                    writer.write(_encode_response(error, keep_alive=False))
                    await writer.drain()
                    break
                response = await self.dispatch(*request)
                writer.write(_encode_response(response, keep_alive=True))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[Optional[ApiResponse], Optional[tuple]]]:
        """None on clean EOF; else (error_response, request_tuple)."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None
            return self._bad_request("truncated request head"), None
        except asyncio.LimitOverrunError:
            return ApiResponse(413, {"error": {
                "code": "too_large", "message": "request head too large"}}), None
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, version = lines[0].split(" ", 2)
        except ValueError:
            return self._bad_request(f"malformed request line: {lines[0]!r}"), None
        if not version.startswith("HTTP/1."):
            return self._bad_request(f"unsupported protocol {version!r}"), None
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        body: Optional[Dict[str, Any]] = None
        raw_length = headers.get("content-length", "0")
        try:
            length = int(raw_length)
        except ValueError:
            return self._bad_request(f"bad Content-Length {raw_length!r}"), None
        if length > MAX_REQUEST_BYTES:
            return ApiResponse(413, {"error": {
                "code": "too_large", "message": "request body too large"}}), None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                return self._bad_request(f"body is not valid JSON: {exc}"), None
        split = urlsplit(target)
        params = dict(parse_qsl(split.query, keep_blank_values=True))
        return None, (method, split.path, params, body)

    @staticmethod
    def _bad_request(message: str) -> ApiResponse:
        return ApiResponse(400, {"error": {"code": "bad_request", "message": message}})


class AsyncApiClient:
    """Minimal keep-alive JSON client for the HTTP shell.

    One instance owns one connection — exactly what each simulated
    loadgen client needs. Requests on a single instance must be
    sequential (the loadgen guarantees this per client).
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
        self._reader = self._writer = None

    async def request(self, method: str, path: str,
                      params: Optional[Dict[str, Any]] = None,
                      body: Optional[Dict[str, Any]] = None
                      ) -> Tuple[int, Dict[str, Any]]:
        if self._writer is None:
            await self._connect()
        target = path
        if params:
            query = "&".join(f"{k}={v}" for k, v in params.items())
            target = f"{path}?{query}"
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode()
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "\r\n"
        )
        assert self._writer is not None and self._reader is not None
        self._writer.write(head.encode() + payload)
        await self._writer.drain()
        status_line = await self._reader.readuntil(b"\r\n")
        status = int(status_line.split(b" ", 2)[1])
        length = 0
        keep_alive = True
        while True:
            line = await self._reader.readuntil(b"\r\n")
            if line == b"\r\n":
                break
            key, _, value = line.decode("latin-1").partition(":")
            key = key.strip().lower()
            if key == "content-length":
                length = int(value.strip())
            elif key == "connection" and value.strip().lower() == "close":
                keep_alive = False
        raw = await self._reader.readexactly(length) if length else b"{}"
        if not keep_alive:
            await self.close()
        return status, json.loads(raw)
