"""The per-node message broker daemon.

A broker owns the services registered by its loaded modules, delivers
requests to them, routes responses back to waiting RPC futures, and
participates in event distribution (events are sequenced at rank 0 and
broadcast down the tree, per Flux semantics).

Every broker reports into the simulation-wide telemetry hub
(:mod:`repro.telemetry`): message and RPC counters, per-topic RPC
round-trip latency histograms, and TBON hop/byte accounting — the
numbers docs/observability.md catalogs. Instrumentation is purely
observational; it never alters routing, timing, or payloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Set, Tuple

from repro.flux.message import (
    CachedSizeDict,
    FluxRPCError,
    Message,
    MessageType,
)
from repro.simkernel import SimEvent, Simulator
from repro.telemetry import telemetry_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.flux.module import Module
    from repro.flux.overlay import TBON
    from repro.hardware.node import Node

ServiceHandler = Callable[["Broker", Message], None]
EventCallback = Callable[[Message], None]


class Broker:
    """One ``flux-broker`` process.

    Parameters
    ----------
    sim:
        The shared simulator.
    rank:
        This broker's rank on the overlay (0 is the TBON root).
    overlay:
        The shared :class:`~repro.flux.overlay.TBON`.
    node:
        The hardware node this broker runs on (used by power modules).
    registry:
        Rank → broker map shared by the instance, used for delivery.
    """

    def __init__(
        self,
        sim: Simulator,
        rank: int,
        overlay: "TBON",
        node: Optional["Node"] = None,
        registry: Optional[Dict[int, "Broker"]] = None,
        down_ranks: Optional[Set[int]] = None,
    ) -> None:
        self.sim = sim
        self.rank = rank
        self.overlay = overlay
        self.node = node
        self._registry = registry if registry is not None else {rank: self}
        self._registry[rank] = self
        #: False while this broker is crashed (fault injection). A down
        #: broker delivers nothing; its tree position still forwards
        #: events (the overlay heals around it for broadcast), but
        #: point-to-point routes crossing it are dead.
        self.up = True
        #: Requests delivered before this simulated time are dropped —
        #: a hung agent accepts connections but never services them.
        self.hung_until = 0.0
        #: Set by the fault injector: called once per transmitted
        #: message; returns ``"drop"``, an extra-delay float, or a
        #: falsy value for "no fault". None (the default) costs
        #: nothing, keeping fault-free runs byte-identical.
        self.fault_hook: Optional[Callable[["Broker", Message], Any]] = None
        #: Instance-wide set of crashed ranks, shared by every broker
        #: so route liveness is one membership test per hop.
        self.down_ranks: Set[int] = down_ranks if down_ranks is not None else set()

        self.modules: Dict[str, "Module"] = {}
        self._services: Dict[str, ServiceHandler] = {}
        self._pending_rpcs: Dict[int, SimEvent] = {}
        self._subscriptions: List[Tuple[str, EventCallback]] = []
        self._event_seq = 0  # only used at rank 0
        #: Last scheduled arrival per destination rank: Flux overlay
        #: channels are ordered streams, so two messages we send to the
        #: same peer must arrive in send order even when per-hop
        #: latency jitter would say otherwise.
        self._fifo_horizon: Dict[int, float] = {}
        #: This broker's inbound-link serialisation horizon: bytes from
        #: *all* senders share the receiver's link, so concurrent large
        #: responses (a root fan-in) queue behind one another.
        self._ingest_horizon = 0.0
        self.messages_sent = 0
        self.messages_delivered = 0
        #: Shared observability hub (one per simulator); see repro.telemetry.
        self.telemetry = telemetry_of(sim)
        #: matchtag -> (topic, send time) for RPC latency accounting.
        self._rpc_sent: Dict[int, Tuple[str, float]] = {}
        # Metric handles are on the per-message hot path; they are
        # resolved lazily (so each series still registers at its
        # historical first-use instant, keeping exports identical) and
        # cached per broker — per topic/type/reason where labelled.
        self._c_rpc_requests: Dict[str, Any] = {}
        self._c_rpc_errors: Dict[str, Any] = {}
        self._h_rpc_latency: Dict[str, Any] = {}
        self._c_events_published: Dict[str, Any] = {}
        self._c_sent_by_type: Dict[str, Any] = {}
        self._c_delivered_by_type: Dict[str, Any] = {}
        self._c_dropped_by_reason: Dict[str, Any] = {}
        self._c_tbon_bytes = None
        self._c_tbon_hops = None
        self._c_event_forwards = None
        self._c_event_deliveries = None

    # ------------------------------------------------------------------
    # Module management (RFC 5: dynamically loaded broker plugins)
    # ------------------------------------------------------------------
    def load_module(self, module: "Module") -> None:
        if module.name in self.modules:
            raise ValueError(f"module {module.name!r} already loaded on rank {self.rank}")
        self.modules[module.name] = module
        module.on_load()

    def unload_module(self, name: str) -> None:
        module = self.modules.pop(name, None)
        if module is None:
            raise KeyError(f"module {name!r} not loaded on rank {self.rank}")
        module.on_unload()
        module.teardown()

    # ------------------------------------------------------------------
    # Services
    # ------------------------------------------------------------------
    def register_service(self, topic: str, handler: ServiceHandler) -> None:
        """Register a request handler for an exact topic string."""
        if topic in self._services:
            raise ValueError(f"service {topic!r} already registered on rank {self.rank}")
        self._services[topic] = handler

    def unregister_service(self, topic: str) -> None:
        self._services.pop(topic, None)

    def has_service(self, topic: str) -> bool:
        return topic in self._services

    # ------------------------------------------------------------------
    # RPC
    # ------------------------------------------------------------------
    def rpc(
        self,
        dst_rank: int,
        topic: str,
        payload: Optional[Dict[str, Any]] = None,
    ) -> SimEvent:
        """Send a request; returns a future for the response payload.

        The future succeeds with the response payload dict, or fails
        with :class:`FluxRPCError` when the service sets ``errnum``.
        """
        tag = Message.new_matchtag()
        future = SimEvent(self.sim)
        self._pending_rpcs[tag] = future
        counter = self._c_rpc_requests.get(topic)
        if counter is None:
            counter = self.telemetry.metrics.counter(
                "flux_rpc_requests_total",
                labels={"topic": topic},
                help="RPC requests sent, by topic",
            )
            self._c_rpc_requests[topic] = counter
        counter.inc()
        self._rpc_sent[tag] = (topic, self.sim.now)
        # CachedSizeDict payloads are write-once by contract, so they
        # skip the defensive copy — a manager fanning one limit to 10k
        # ranks shares a single payload object (and size estimate).
        msg = Message(
            msg_type=MessageType.REQUEST,
            topic=topic,
            payload=payload if isinstance(payload, CachedSizeDict)
            else dict(payload or {}),
            src_rank=self.rank,
            dst_rank=dst_rank,
            matchtag=tag,
        )
        self._transmit(msg)
        return future

    def respond(
        self,
        request: Message,
        payload: Optional[Dict[str, Any]] = None,
        errnum: int = 0,
        errmsg: str = "",
    ) -> None:
        """Send the response for a request previously delivered here."""
        self._transmit(request.make_response(payload, errnum=errnum, errmsg=errmsg))

    # ------------------------------------------------------------------
    # Events (pub/sub)
    # ------------------------------------------------------------------
    def subscribe(self, topic_prefix: str, callback: EventCallback) -> None:
        """Deliver events whose topic starts with ``topic_prefix``."""
        self._subscriptions.append((topic_prefix, callback))

    def unsubscribe(self, topic_prefix: str, callback: EventCallback) -> None:
        self._subscriptions = [
            (p, c)
            for (p, c) in self._subscriptions
            if not (p == topic_prefix and c is callback)
        ]

    def publish(self, topic: str, payload: Optional[Dict[str, Any]] = None) -> None:
        """Publish an event: routed to rank 0, sequenced, broadcast."""
        if not self.up:
            return  # a crashed broker cannot publish
        msg = Message(
            msg_type=MessageType.EVENT,
            topic=topic,
            payload=dict(payload or {}),
            src_rank=self.rank,
            dst_rank=0,
        )
        self.messages_sent += 1
        counter = self._c_events_published.get(topic)
        if counter is None:
            counter = self.telemetry.metrics.counter(
                "flux_events_published_total",
                labels={"topic": topic},
                help="events published (pre-sequencing), by topic",
            )
            self._c_events_published[topic] = counter
        counter.inc()
        arrival = self._fifo_arrival(0, self.overlay.path_delay(self.rank, 0))
        self.sim.schedule_at(arrival, self._registry[0]._sequence_event, msg)

    def _sequence_event(self, msg: Message) -> None:
        """Rank 0: assign a sequence number and broadcast down the tree."""
        assert self.rank == 0, "events are sequenced at the TBON root"
        self._event_seq += 1
        msg.seq = self._event_seq
        self._broadcast_event(msg)

    def _broadcast_event(self, msg: Message) -> None:
        # Event distribution heals around crashed brokers: a down rank
        # still forwards copies to its subtree (in Flux the children
        # reparent), it just cannot deliver locally.
        if self.up:
            self._deliver_event(msg)
        else:
            self._drop_message(msg, "node-down")
        for child in self.overlay.children(self.rank):
            if self._c_event_forwards is None:
                self._c_event_forwards = self.telemetry.metrics.counter(
                    "tbon_event_forwards_total",
                    help="event copies forwarded down TBON edges",
                )
            self._c_event_forwards.inc()
            arrival = self._fifo_arrival(child, self.overlay.hop_delay())
            self.sim.schedule_at(arrival, self._registry[child]._broadcast_event, msg)

    def _deliver_event(self, msg: Message) -> None:
        self.messages_delivered += 1
        if self._c_event_deliveries is None:
            self._c_event_deliveries = self.telemetry.metrics.counter(
                "flux_event_deliveries_total",
                help="event deliveries to brokers (fan-out included)",
            )
        self._c_event_deliveries.inc()
        for prefix, callback in list(self._subscriptions):
            if msg.topic.startswith(prefix):
                callback(msg)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _transmit(self, msg: Message) -> None:
        """Route a point-to-point message over the tree with latency.

        Delay = per-hop latency + per-hop serialisation of the payload
        (store-and-forward through intermediate brokers).
        """
        assert msg.dst_rank is not None
        # Fault model. Point-to-point traffic is store-and-forward, so
        # any crashed rank on the tree route black-holes the message
        # (this is what makes a dead interior broker take out its whole
        # subtree's telemetry). The link-fault hook, when installed,
        # may drop the message or stretch its latency. Both checks are
        # no-ops in a fault-free run — byte-identical behaviour.
        if self.down_ranks and any(
            r in self.down_ranks
            for r in self.overlay.route(msg.src_rank, msg.dst_rank)
        ):
            self._drop_message(msg, "route-down")
            return
        extra_delay = 0.0
        if self.fault_hook is not None:
            verdict = self.fault_hook(self, msg)
            if verdict == "drop":
                self._drop_message(msg, "link")
                return
            if verdict:
                extra_delay = float(verdict)
        self.messages_sent += 1
        size = msg.size_bytes()
        msg_type = msg.msg_type.value
        sent = self._c_sent_by_type.get(msg_type)
        if sent is None:
            sent = self.telemetry.metrics.counter(
                "flux_messages_sent_total",
                labels={"type": msg_type},
                help="point-to-point messages transmitted, by type",
            )
            self._c_sent_by_type[msg_type] = sent
        sent.inc()
        if self._c_tbon_bytes is None:
            self._c_tbon_bytes = self.telemetry.metrics.counter(
                "tbon_bytes_total",
                help="payload+header bytes put on the overlay",
            )
            self._c_tbon_hops = self.telemetry.metrics.counter(
                "tbon_hops_total",
                help="tree edges traversed by point-to-point messages",
            )
        self._c_tbon_bytes.inc(size)
        self._c_tbon_hops.inc(self.overlay.hop_count(msg.src_rank, msg.dst_rank))
        delay = self.overlay.path_delay(msg.src_rank, msg.dst_rank, size_bytes=size)
        arrival = self._fifo_arrival(msg.dst_rank, delay + extra_delay)
        target = self._registry[msg.dst_rank]
        # Receiver-side ingest: concurrent senders share the target's
        # inbound link, so its serialisation time queues across them.
        if msg.dst_rank != self.rank:
            ingest = size * 8.0 / self.overlay.bandwidth_bps
            arrival = max(arrival, target._ingest_horizon + ingest)
            target._ingest_horizon = max(target._ingest_horizon, arrival)
        self.sim.schedule_at(arrival, target._deliver, msg)

    def _fifo_arrival(self, dst_rank: int, delay: float) -> float:
        """Arrival time respecting per-peer FIFO ordering."""
        arrival = self.sim.now + delay
        horizon = self._fifo_horizon.get(dst_rank, 0.0)
        if arrival <= horizon:
            arrival = horizon + 1e-9
        self._fifo_horizon[dst_rank] = arrival
        return arrival

    def _drop_message(self, msg: Message, reason: str) -> None:
        """Account a message lost to fault injection or a dead peer."""
        counter = self._c_dropped_by_reason.get(reason)
        if counter is None:
            counter = self.telemetry.metrics.counter(
                "tbon_messages_dropped_total",
                labels={"reason": reason},
                help="messages lost to injected faults or dead brokers, by reason",
            )
            self._c_dropped_by_reason[reason] = counter
        counter.inc()

    def _deliver(self, msg: Message) -> None:
        """Hand an arrived message to its service or waiting RPC future."""
        if not self.up:
            # Crashed after this message was already in flight.
            self._drop_message(msg, "node-down")
            return
        if msg.msg_type is MessageType.REQUEST and self.sim.now < self.hung_until:
            # A hung broker accepts the connection but never services
            # the request; responses already computed still drain.
            self._drop_message(msg, "hung")
            return
        self.messages_delivered += 1
        msg_type = msg.msg_type.value
        delivered = self._c_delivered_by_type.get(msg_type)
        if delivered is None:
            delivered = self.telemetry.metrics.counter(
                "flux_messages_delivered_total",
                labels={"type": msg_type},
                help="point-to-point messages delivered, by type",
            )
            self._c_delivered_by_type[msg_type] = delivered
        delivered.inc()
        if msg.msg_type is MessageType.REQUEST:
            handler = self._services.get(msg.topic)
            if handler is None:
                self.respond(msg, errnum=38, errmsg=f"no service {msg.topic!r}")
                return
            handler(self, msg)
        elif msg.msg_type is MessageType.RESPONSE:
            future = self._pending_rpcs.pop(msg.matchtag, None)
            sent = self._rpc_sent.pop(msg.matchtag, None)
            if sent is not None:
                topic, t_sent = sent
                hist = self._h_rpc_latency.get(topic)
                if hist is None:
                    hist = self.telemetry.metrics.histogram(
                        "flux_rpc_latency_seconds",
                        labels={"topic": topic},
                        help="RPC round-trip latency (send to response), by topic",
                    )
                    self._h_rpc_latency[topic] = hist
                hist.observe(self.sim.now - t_sent)
                self.telemetry.tracer.span(
                    f"rpc:{topic}", "flux", t_sent, rank=self.rank,
                    peer=msg.src_rank, errnum=msg.errnum,
                )
            if future is None:
                return  # response to a cancelled/unknown RPC: drop
            if msg.errnum != 0:
                counter = self._c_rpc_errors.get(msg.topic)
                if counter is None:
                    counter = self.telemetry.metrics.counter(
                        "flux_rpc_errors_total",
                        labels={"topic": msg.topic},
                        help="RPC responses carrying a nonzero errnum, by topic",
                    )
                    self._c_rpc_errors[msg.topic] = counter
                counter.inc()
                future.fail(FluxRPCError(msg.topic, msg.errnum, msg.errmsg))
            else:
                future.succeed(msg.payload)
        else:  # pragma: no cover - events use the broadcast path
            self._deliver_event(msg)
