"""A discrete-event Flux-like resource management framework.

This package substitutes for ``flux-core`` (v0.63 in the paper). It
reproduces the *interfaces* the power-management modules rely on:

* :class:`~repro.flux.broker.Broker` — one message-broker daemon per
  node; brokers form a Tree-Based Overlay Network
  (:class:`~repro.flux.overlay.TBON`) and exchange request/response
  RPCs and published events over it, with per-hop latency.
* :class:`~repro.flux.module.Module` — a dynamically loadable broker
  plugin with its own control flow, interacting with Flux exclusively
  via messages (RFC 5 semantics).
* :class:`~repro.flux.jobspec.Jobspec` and the FCFS
  :class:`~repro.flux.scheduler.Scheduler` +
  :class:`~repro.flux.jobmanager.JobManager` — job lifecycle with
  ``job-state`` events, the hook the state-aware power manager uses.
* :class:`~repro.flux.instance.FluxInstance` — bootstraps brokers over
  a set of hardware nodes, loads modules, submits jobs and runs the
  simulation (the analogue of a system or user-level Flux instance).
"""

from repro.flux.message import Message, MessageType, FluxRPCError
from repro.flux.overlay import TBON
from repro.flux.broker import Broker
from repro.flux.module import Module
from repro.flux.kvs import KVSModule
from repro.flux.jobspec import Jobspec, JobRecord, JobState
from repro.flux.scheduler import Scheduler
from repro.flux.jobmanager import JobManager
from repro.flux.instance import FluxInstance
from repro.flux.user_instance import UserInstance, spawn_user_instance

__all__ = [
    "Message",
    "MessageType",
    "FluxRPCError",
    "TBON",
    "Broker",
    "Module",
    "KVSModule",
    "Jobspec",
    "JobRecord",
    "JobState",
    "Scheduler",
    "JobManager",
    "FluxInstance",
    "UserInstance",
    "spawn_user_instance",
]
