"""FluxInstance: bootstrap brokers + modules over simulated hardware.

The instance is the analogue of ``flux start`` across an allocation: it
builds one hardware node and one broker per rank, wires them into a
TBON, loads the KVS and job manager on rank 0, and provides submit/run.
Power-management modules (monitor/manager) are loaded on top with
:meth:`FluxInstance.load_module_on_all` / ``load_module_on_root`` —
mirroring ``flux module load`` on a production system.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro.apps.registry import get_profile
from repro.apps.run import AppRun
from repro.flux.broker import Broker
from repro.flux.jobmanager import JobManager
from repro.flux.jobspec import JobRecord, Jobspec
from repro.flux.kvs import KVSModule
from repro.flux.module import Module
from repro.flux.overlay import TBON
from repro.flux.scheduler import Scheduler
from repro.hardware.noise import JitterModel
from repro.hardware.node import Node
from repro.hardware.platforms import make_node
from repro.simkernel import RandomStreams, Simulator
from repro.telemetry import Telemetry, telemetry_of


class FluxInstance:
    """A simulated Flux instance over ``n_nodes`` nodes of one platform.

    Parameters
    ----------
    platform:
        ``"lassen"``, ``"tioga"`` or ``"generic"``.
    n_nodes:
        Instance size (brokers = nodes).
    seed:
        Root seed for every stochastic element (TBON latency jitter,
        sensor noise, run-to-run variability, NVML failures).
    fanout:
        TBON arity.
    enable_jitter:
        Turn the run-to-run variability model on (Fig 3/4 experiments);
        off by default so calibration experiments are noise-free.
    nvml_failure_rate:
        Probability of a misbehaving NVML cap request per call.
    sensor_noise_sigma_w:
        Gaussian sensor noise per domain reading.
    app_dt:
        Application control step (seconds).
    backfill:
        Enable conservative backfill in the FCFS scheduler.
    telemetry_enabled:
        When False, the observability hub (:mod:`repro.telemetry`)
        records nothing. Recording is a pure observer either way, so
        simulated results are byte-identical on/off.
    """

    def __init__(
        self,
        platform: str = "lassen",
        n_nodes: int = 8,
        seed: int = 0,
        fanout: int = 2,
        enable_jitter: bool = False,
        nvml_failure_rate: float = 0.0,
        sensor_noise_sigma_w: float = 0.0,
        app_dt: float = 1.0,
        backfill: bool = False,
        nodes: Optional[List[Node]] = None,
        sim: Optional[Simulator] = None,
        scheduler_factory: Optional[Callable[[int], Scheduler]] = None,
        telemetry_enabled: bool = True,
        hostname_prefix: Optional[str] = None,
    ) -> None:
        """``nodes``/``sim`` may be supplied to bootstrap this instance
        over existing hardware inside a running simulation — the
        user-level (nested) instance case; see
        :mod:`repro.flux.user_instance`. ``hostname_prefix`` overrides
        the platform name in generated hostnames, so several sibling
        instances of one platform (a federated site) stay
        distinguishable in telemetry CSVs; None keeps the historical
        ``<platform><rank>`` naming byte-identical."""
        self.platform = platform
        self.app_dt = float(app_dt)
        self.sim = sim if sim is not None else Simulator()
        #: The shared observability hub (nested instances on the same
        #: simulator share it). Disabling is one-way here so a nested
        #: instance's default True never re-enables a disabled parent.
        self.telemetry: Telemetry = telemetry_of(self.sim)
        if not telemetry_enabled:
            self.telemetry.enabled = False
        self.streams = RandomStreams(seed=seed)

        if nodes is not None:
            self.nodes = list(nodes)
            self.n_nodes = len(self.nodes)
        else:
            name_stem = hostname_prefix if hostname_prefix is not None else platform
            self.n_nodes = int(n_nodes)
            self.nodes = [
                make_node(
                    platform,
                    f"{name_stem}{i:03d}",
                    rng=self.streams.get(f"node/{i}"),
                    nvml_failure_rate=nvml_failure_rate,
                    sensor_noise_sigma_w=sensor_noise_sigma_w,
                )
                for i in range(self.n_nodes)
            ]
        self.overlay = TBON(
            self.n_nodes, fanout=fanout, rng=self.streams.get("tbon/latency")
        )
        registry: Dict[int, Broker] = {}
        #: Crashed ranks, shared with every broker so routing sees node
        #: death instantly; mutated only by the fault injector.
        self.down_ranks: Set[int] = set()
        self.brokers: List[Broker] = [
            Broker(
                self.sim,
                rank,
                self.overlay,
                node=self.nodes[rank],
                registry=registry,
                down_ranks=self.down_ranks,
            )
            for rank in range(self.n_nodes)
        ]

        self.kvs = KVSModule(self.brokers[0])
        self.brokers[0].load_module(self.kvs)
        self.scheduler = (
            scheduler_factory(self.n_nodes)
            if scheduler_factory is not None
            else Scheduler(self.n_nodes, backfill=backfill)
        )
        self.jobmanager = JobManager(
            self.brokers[0], self.scheduler, executor=self._execute, kvs=self.kvs
        )
        self.brokers[0].load_module(self.jobmanager)

        self.jitter_model = JitterModel(
            rng=self.streams.get("jitter") if enable_jitter else None
        )
        self.app_runs: Dict[int, AppRun] = {}
        self._nested_done: Dict[int, Callable[[int], None]] = {}
        self._rank_of_node: Dict[int, int] = {
            id(node): rank for rank, node in enumerate(self.nodes)
        }

    # ------------------------------------------------------------------
    # Module loading
    # ------------------------------------------------------------------
    def load_module_on_all(
        self, factory: Callable[[Broker], Module]
    ) -> List[Module]:
        """Load a module instance on every broker (e.g. node agents)."""
        modules = []
        for broker in self.brokers:
            module = factory(broker)
            broker.load_module(module)
            modules.append(module)
        return modules

    def load_module_on_root(self, factory: Callable[[Broker], Module]) -> Module:
        """Load a module on rank 0 only (e.g. root agents)."""
        module = factory(self.brokers[0])
        self.brokers[0].load_module(module)
        return module

    def unload_module_everywhere(self, name: str) -> None:
        for broker in self.brokers:
            if name in broker.modules:
                broker.unload_module(name)

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------
    def submit(
        self, spec: Jobspec, depends_on: Optional[List[int]] = None
    ) -> JobRecord:
        """Submit a job (optionally dependent on earlier jobids)."""
        return self.jobmanager.submit(spec, depends_on=depends_on)

    def submit_at(self, spec: Jobspec, when: float) -> None:
        """Schedule a submission at a future simulated time."""
        self.sim.schedule_at(when, lambda: self.jobmanager.submit(spec))

    def _execute(self, record: JobRecord, done: Callable[[int], None]) -> None:
        if record.spec.app == "flux-instance":
            # A nested (user-level) Flux instance occupies this
            # allocation; it finishes when the owner closes it (see
            # repro.flux.user_instance.UserInstance.close).
            self._nested_done[record.jobid] = done
            return
        profile = get_profile(record.spec.app)
        nodes = [self.nodes[r] for r in record.ranks]
        work_scale = float(record.spec.params.get("work_scale", 1.0))
        jitter = self.jitter_model.runtime_factor(
            self.platform, record.spec.app, record.spec.nnodes
        )
        fail_at = record.spec.params.get("fail_at_s")
        run = AppRun(
            self.sim,
            record,
            nodes,
            profile,
            work_scale=work_scale,
            jitter_factor=jitter,
            overhead_fn=self._telemetry_overhead,
            on_done=done,
            on_fail=self.jobmanager.job_failed,
            fail_at_progress_s=float(fail_at) if fail_at is not None else None,
            dt=self.app_dt,
        )
        self.app_runs[record.jobid] = run

    def _telemetry_overhead(self, node: Node) -> float:
        """Sum of overhead fractions imposed by modules on this node's broker."""
        rank = self._rank_of_node[id(node)]
        total = 0.0
        for module in self.brokers[rank].modules.values():
            total += float(getattr(module, "node_overhead_fraction", 0.0))
        return total

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_for(self, duration: float) -> float:
        """Advance the simulation by ``duration`` seconds."""
        return self.sim.run(until=self.sim.now + duration)

    def run_until_complete(
        self, timeout_s: float = 1e7, max_events: int = 100_000_000
    ) -> float:
        """Run until every submitted job reaches a terminal state.

        Periodic modules (telemetry sampling) keep the event heap
        non-empty forever, so this steps the engine while polling the
        job manager rather than draining the heap.
        """
        deadline = self.sim.now + timeout_s
        count = 0
        while not self.jobmanager.all_complete():
            if not self.sim.step():
                raise RuntimeError("event heap drained with jobs still active")
            count += 1
            if count > max_events:
                raise RuntimeError("run_until_complete exceeded max_events")
            if self.sim.now > deadline:
                raise RuntimeError(
                    f"jobs still active at t={self.sim.now:.0f}s (timeout)"
                )
        return self.sim.now

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def node_for_rank(self, rank: int) -> Node:
        return self.nodes[rank]

    def broker_for_rank(self, rank: int) -> Broker:
        return self.brokers[rank]

    def job_run(self, jobid: int) -> AppRun:
        return self.app_runs[jobid]

    def finish_nested(self, jobid: int) -> None:
        """Complete a ``flux-instance`` pseudo-job (nested instance exit)."""
        done = self._nested_done.pop(jobid, None)
        if done is None:
            raise KeyError(f"job {jobid} is not a running nested instance")
        done(jobid)
