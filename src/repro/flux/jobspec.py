"""Jobspecs and job records.

A :class:`Jobspec` is what a user submits: which application, how many
nodes, application parameters, and whether it is launched as an MPI
program or a non-MPI framework (Charm++, a Python workflow, ...). The
framework treats both identically — the paper's point is that telemetry
and power management apply to *anything launched under a Flux job*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class JobState(enum.Enum):
    """Job lifecycle states (subset of Flux's RFC 21 state machine)."""

    SUBMITTED = "submitted"
    SCHEDULED = "scheduled"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"

    @property
    def active(self) -> bool:
        return self in (JobState.SUBMITTED, JobState.SCHEDULED, JobState.RUNNING)


@dataclass(frozen=True)
class Jobspec:
    """A job request.

    Attributes
    ----------
    app:
        Registered application name (see :mod:`repro.apps.registry`).
    nnodes:
        Whole nodes requested (Flux jobs in the paper are node-exclusive).
    params:
        Application parameters (problem size factors, iteration counts).
    tasks_per_node:
        MPI ranks (or Charm++ PEs) per node; defaults to one per GPU,
        or per core group for CPU-only apps.
    launcher:
        ``"mpi"`` or ``"non-mpi"``; informational — the framework's
        telemetry/capping path is identical for both.
    user:
        Submitting user (user-level instances can apply their own
        policies).
    project:
        Chargeable project for the tenancy tier (see
        :mod:`repro.tenancy`); ``None`` — the default everywhere the
        tenant model is not in play — resolves through the tenant
        directory by ``user``, falling back to the unaffiliated
        project.
    """

    app: str
    nnodes: int
    params: Dict[str, Any] = field(default_factory=dict)
    tasks_per_node: Optional[int] = None
    launcher: str = "mpi"
    user: str = "user0"
    name: Optional[str] = None
    project: Optional[str] = None

    def __post_init__(self) -> None:
        if self.nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {self.nnodes}")
        if self.launcher not in ("mpi", "non-mpi"):
            raise ValueError(f"unknown launcher {self.launcher!r}")

    @property
    def label(self) -> str:
        return self.name or f"{self.app}-{self.nnodes}n"


@dataclass
class JobRecord:
    """Mutable lifecycle record kept by the job manager (and in KVS)."""

    jobid: int
    spec: Jobspec
    state: JobState = JobState.SUBMITTED
    ranks: List[int] = field(default_factory=list)
    t_submit: float = 0.0
    t_start: Optional[float] = None
    t_end: Optional[float] = None

    @property
    def runtime_s(self) -> Optional[float]:
        if self.t_start is None or self.t_end is None:
            return None
        return self.t_end - self.t_start

    def to_kvs(self) -> Dict[str, Any]:
        """JSON-compatible record for the KVS (what clients read)."""
        d = {
            "jobid": self.jobid,
            "app": self.spec.app,
            "name": self.spec.label,
            "nnodes": self.spec.nnodes,
            "user": self.spec.user,
            "launcher": self.spec.launcher,
            "state": self.state.value,
            "ranks": list(self.ranks),
            "t_submit": self.t_submit,
            "t_start": self.t_start,
            "t_end": self.t_end,
        }
        # Only present when set: anonymous records keep their exact
        # historical key set (KVS contents feed golden fixtures).
        if self.spec.project is not None:
            d["project"] = self.spec.project
        return d
