"""User-level (nested) Flux instances.

Section II-B: "A system-level Flux instance manages all the resources,
users, and high-level policies ... When a user requests a job, they are
allocated their own user-level Flux instance, allowing them to
customize the scheduling policy within their instance." Section I adds
that *power* policies are equally customisable per user.

:func:`spawn_user_instance` submits a ``flux-instance`` pseudo-job to a
system instance; once the allocation is granted, it bootstraps a fresh
broker tree over exactly the allocated hardware nodes, sharing the
parent's simulator. The user then loads their own monitor/manager
modules (with their own policy) and submits inner jobs. Closing the
user instance releases the allocation back to the system instance.
"""

from __future__ import annotations

from repro.flux.instance import FluxInstance
from repro.flux.jobspec import JobRecord, Jobspec, JobState


class UserInstance(FluxInstance):
    """A nested Flux instance over a parent allocation.

    Created through :func:`spawn_user_instance`, not directly. Inner
    broker ranks 0..N-1 map onto the parent's allocated nodes in rank
    order; the first allocated node hosts the inner TBON root.
    """

    def __init__(
        self,
        parent: FluxInstance,
        allocation: JobRecord,
        seed: int = 0,
        fanout: int = 2,
        backfill: bool = False,
    ) -> None:
        if allocation.state is not JobState.RUNNING:
            raise RuntimeError(
                f"allocation job {allocation.jobid} is {allocation.state.value}; "
                "a user instance needs a running allocation"
            )
        if allocation.spec.app != "flux-instance":
            raise ValueError("allocation must be a flux-instance pseudo-job")
        nodes = [parent.nodes[r] for r in allocation.ranks]
        super().__init__(
            platform=parent.platform,
            seed=seed,
            fanout=fanout,
            backfill=backfill,
            nodes=nodes,
            sim=parent.sim,
        )
        self.parent = parent
        self.allocation = allocation
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Exit the user instance: release the parent allocation.

        Refuses while inner jobs are still active — a real instance
        drains before the enclosing job completes.
        """
        if self._closed:
            return
        if not self.jobmanager.all_complete():
            raise RuntimeError("user instance still has active jobs")
        self._closed = True
        self.parent.finish_nested(self.allocation.jobid)

    def submit(self, spec: Jobspec, depends_on=None) -> JobRecord:
        if self._closed:
            raise RuntimeError("user instance is closed")
        return super().submit(spec, depends_on=depends_on)


def spawn_user_instance(
    parent: FluxInstance,
    nnodes: int,
    user: str = "user0",
    seed: int = 0,
    fanout: int = 2,
    backfill: bool = False,
    timeout_s: float = 1e6,
) -> UserInstance:
    """Request an allocation from ``parent`` and bootstrap an instance.

    Blocks (drives the shared simulator) until the allocation is
    granted — like ``flux alloc`` from a login node.
    """
    record = parent.submit(
        Jobspec(app="flux-instance", nnodes=nnodes, user=user, launcher="non-mpi")
    )
    deadline = parent.sim.now + timeout_s
    while record.state is not JobState.RUNNING:
        if not parent.sim.step():
            raise RuntimeError("simulation drained before allocation was granted")
        if parent.sim.now > deadline:
            raise TimeoutError(f"allocation for {nnodes} nodes not granted in time")
    return UserInstance(
        parent, record, seed=seed, fanout=fanout, backfill=backfill
    )
