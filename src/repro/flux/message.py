"""Flux message protocol (RFC 3 analogue).

Three message classes are modelled: *requests* (routed to a service on
a destination rank), *responses* (routed back to the requester, matched
by matchtag) and *events* (sequenced at rank 0 and broadcast to all
brokers). Payloads are JSON-compatible dicts.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_matchtag_counter = itertools.count(1)


class CachedSizeDict(dict):
    """A payload dict that memoises its own wire-size estimate.

    For write-once payloads that are retained and re-priced many times
    — telemetry samples sit in a node agent's ring buffer and get
    re-walked by :func:`estimate_payload_bytes` at every aggregation
    that ships them. The cache lives *on the object*, so its lifetime
    is exactly the dict's and no global registry can go stale. Only
    use for dicts that are never mutated after their first estimate;
    the first walk is identical to a plain dict's, so the cache can
    never change an estimate, only skip recomputing it.
    """

    __slots__ = ("_size_cache",)


def estimate_payload_bytes(payload: Any) -> int:
    """Cheap wire-size estimate of a JSON-compatible payload.

    Counts container overhead plus per-leaf costs without serialising;
    accurate to tens of percent against real JSON, which is all the
    bandwidth model needs. Cost is O(leaves) — dominated by the same
    telemetry responses whose transfer time it prices — except that
    :class:`CachedSizeDict` payloads (telemetry samples) are walked
    once and memoised, so an aggregate response re-prices each sample
    at O(1) instead of re-walking it at every tree level.
    """
    if payload is None or isinstance(payload, bool):
        return 4
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, str):
        return len(payload) + 2
    if isinstance(payload, dict):
        size = getattr(payload, "_size_cache", None)
        if size is not None:
            return size
        size = 2 + sum(
            len(str(k)) + 3 + estimate_payload_bytes(v) for k, v in payload.items()
        )
        if isinstance(payload, CachedSizeDict):
            payload._size_cache = size
        return size
    if isinstance(payload, (list, tuple)):
        return 2 + sum(estimate_payload_bytes(v) for v in payload)
    return 16  # unknown scalar


class MessageType(enum.Enum):
    REQUEST = "request"
    RESPONSE = "response"
    EVENT = "event"


class FluxRPCError(RuntimeError):
    """An RPC returned a nonzero ``errnum``.

    Attributes
    ----------
    errnum:
        POSIX-style error number set by the responding service.
    topic:
        The request topic that failed.
    """

    def __init__(self, topic: str, errnum: int, errmsg: str = "") -> None:
        super().__init__(f"rpc {topic!r} failed: errnum={errnum} {errmsg}".strip())
        self.topic = topic
        self.errnum = errnum
        self.errmsg = errmsg


class RPCTimeoutError(FluxRPCError):
    """An RPC ran out of retry attempts without ever seeing a response.

    Raised locally by :meth:`repro.flux.module.Module.rpc_with_retry`
    (there is no response message to carry an errnum); uses POSIX
    ``ETIMEDOUT`` (110) so callers can treat it like any RPC failure.
    """

    def __init__(self, topic: str, dst_rank: int, attempts: int) -> None:
        super().__init__(
            topic,
            110,
            f"no response from rank {dst_rank} after {attempts} attempt(s)",
        )
        self.dst_rank = dst_rank
        self.attempts = attempts


@dataclass
class Message:
    """One message on the overlay network."""

    msg_type: MessageType
    topic: str
    payload: Dict[str, Any] = field(default_factory=dict)
    src_rank: int = 0
    dst_rank: Optional[int] = None  # None for events (broadcast)
    matchtag: int = 0
    errnum: int = 0
    errmsg: str = ""
    #: Event sequence number, assigned by rank 0 when sequencing events.
    seq: Optional[int] = None
    #: Cached :meth:`size_bytes` result; payloads are write-once after
    #: the message is transmitted, so the estimate never changes.
    _size_cache: Optional[int] = field(default=None, repr=False, compare=False)

    def size_bytes(self) -> int:
        """Estimated wire size (headers + payload)."""
        size = self._size_cache
        if size is None:
            size = 64 + estimate_payload_bytes(self.payload)
            self._size_cache = size
        return size

    @staticmethod
    def new_matchtag() -> int:
        """Allocate a process-unique matchtag for request/response pairing."""
        return next(_matchtag_counter)

    def make_response(
        self,
        payload: Optional[Dict[str, Any]] = None,
        errnum: int = 0,
        errmsg: str = "",
    ) -> "Message":
        """Build the response message for this request."""
        if self.msg_type is not MessageType.REQUEST:
            raise ValueError("can only respond to a request")
        return Message(
            msg_type=MessageType.RESPONSE,
            topic=self.topic,
            payload=payload or {},
            src_rank=self.dst_rank if self.dst_rank is not None else 0,
            dst_rank=self.src_rank,
            matchtag=self.matchtag,
            errnum=errnum,
            errmsg=errmsg,
        )
