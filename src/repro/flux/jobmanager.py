"""Job lifecycle management.

The :class:`JobManager` module runs on rank 0. It accepts jobspecs,
drives them through the state machine (submitted → scheduled → running
→ completed), publishes ``job-state.*`` events over the TBON (the hook
the *state-aware* power manager subscribes to), records job metadata in
the KVS (the hook the *stateless* power monitor's client uses), and
invokes an *executor* to actually run the application on the allocated
nodes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.flux.broker import Broker
from repro.flux.jobspec import JobRecord, Jobspec, JobState
from repro.flux.kvs import KVSModule
from repro.flux.message import Message
from repro.flux.module import Module
from repro.flux.scheduler import Scheduler

#: An executor launches the application for a job on its allocated
#: ranks and must call ``done(jobid)`` exactly once when it finishes.
Executor = Callable[[JobRecord, Callable[[int], None]], None]


class JobManager(Module):
    """Rank-0 job manager with FCFS scheduling and job-state events."""

    name = "job-manager"

    def __init__(
        self,
        broker: Broker,
        scheduler: Scheduler,
        executor: Executor,
        kvs: Optional[KVSModule] = None,
    ) -> None:
        if broker.rank != 0:
            raise ValueError("job manager runs on rank 0 only")
        super().__init__(broker)
        self.scheduler = scheduler
        self.executor = executor
        self.kvs = kvs
        self.jobs: Dict[int, JobRecord] = {}
        self._queue: List[int] = []
        self._deps: Dict[int, List[int]] = {}
        self._next_jobid = 1

    def on_load(self) -> None:
        self.register_service("job-manager.submit", self._handle_submit)
        self.register_service("job-manager.list", self._handle_list)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, spec: Jobspec, depends_on: Optional[List[int]] = None) -> JobRecord:
        """Submit a jobspec; returns its (live) record.

        ``depends_on`` lists jobids that must COMPLETE before this job
        becomes eligible to schedule — the workflow (DAG) hook. A
        cancelled or failed dependency cancels the dependent job.
        """
        if spec.nnodes > self.scheduler.size:
            raise ValueError(
                f"job wants {spec.nnodes} nodes; instance has {self.scheduler.size}"
            )
        deps = list(depends_on or [])
        for dep in deps:
            if dep not in self.jobs:
                raise ValueError(f"dependency {dep} is not a known job")
        record = JobRecord(
            jobid=self._next_jobid,
            spec=spec,
            t_submit=self.sim.now,
        )
        self._next_jobid += 1
        self.jobs[record.jobid] = record
        self._deps[record.jobid] = deps
        self._queue.append(record.jobid)
        self._publish_state(record)
        self._sync_kvs(record)
        # Scheduling runs as a follow-up event so that several
        # same-time submissions enqueue in submission order first.
        self.sim.schedule(0.0, self._try_schedule)
        return record

    def _deps_state(self, jobid: int) -> str:
        """'ready', 'waiting' or 'broken' for a job's dependency set."""
        states = [self.jobs[d].state for d in self._deps.get(jobid, [])]
        if any(s in (JobState.CANCELLED, JobState.FAILED) for s in states):
            return "broken"
        if all(s is JobState.COMPLETED for s in states):
            return "ready"
        return "waiting"

    def cancel(self, jobid: int) -> None:
        """Cancel a queued (not yet running) job."""
        record = self.jobs[jobid]
        if record.state is not JobState.SUBMITTED:
            raise RuntimeError(f"job {jobid} is {record.state.value}; cannot cancel")
        self._queue.remove(jobid)
        record.state = JobState.CANCELLED
        record.t_end = self.sim.now
        self._publish_state(record)
        self._sync_kvs(record)
        # Dependents of a cancelled job are cancelled on the next pass.
        self.sim.schedule(0.0, self._try_schedule)

    # ------------------------------------------------------------------
    # Scheduling loop
    # ------------------------------------------------------------------
    def _try_schedule(self) -> None:
        while True:
            # Broken dependency chains cancel their dependents first.
            for jobid in list(self._queue):
                if self._deps_state(jobid) == "broken":
                    self._queue.remove(jobid)
                    record = self.jobs[jobid]
                    record.state = JobState.CANCELLED
                    record.t_end = self.sim.now
                    self._publish_state(record)
                    self._sync_kvs(record)
            eligible = [j for j in self._queue if self._deps_state(j) == "ready"]
            requests = {j: self.jobs[j].spec.nnodes for j in eligible}
            jobid = self.scheduler.pick_next(eligible, requests)
            if jobid is None:
                return
            self._queue.remove(jobid)
            record = self.jobs[jobid]
            record.ranks = self.scheduler.allocate(record.spec.nnodes)
            record.state = JobState.SCHEDULED
            self._publish_state(record)
            self._start(record)

    def _start(self, record: JobRecord) -> None:
        record.state = JobState.RUNNING
        record.t_start = self.sim.now
        self._publish_state(record)
        self._sync_kvs(record)
        self.executor(record, self._job_done)

    def _job_done(self, jobid: int) -> None:
        self._finish(jobid, JobState.COMPLETED)

    def job_failed(self, jobid: int) -> None:
        """Terminal failure (application crash): release resources.

        Dependents of a failed job are cancelled, like a broken
        dependency chain.
        """
        self._finish(jobid, JobState.FAILED)

    def _finish(self, jobid: int, state: JobState) -> None:
        record = self.jobs[jobid]
        if record.state is not JobState.RUNNING:
            raise RuntimeError(f"job {jobid} finished twice?")
        record.state = state
        record.t_end = self.sim.now
        self.scheduler.release(record.ranks)
        self._publish_state(record)
        self._sync_kvs(record)
        self.sim.schedule(0.0, self._try_schedule)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def active_jobs(self) -> List[JobRecord]:
        return [r for r in self.jobs.values() if r.state.active]

    def running_jobs(self) -> List[JobRecord]:
        return [r for r in self.jobs.values() if r.state is JobState.RUNNING]

    def all_complete(self) -> bool:
        return all(not r.state.active for r in self.jobs.values())

    def makespan_s(self) -> Optional[float]:
        """End of last job minus submit of first (the paper's metric)."""
        done = [r for r in self.jobs.values() if r.t_end is not None]
        if not done or not self.jobs:
            return None
        first_submit = min(r.t_submit for r in self.jobs.values())
        last_end = max(r.t_end for r in done)
        return last_end - first_submit

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _publish_state(self, record: JobRecord) -> None:
        self.broker.publish(
            f"job-state.{record.state.value}",
            {
                "jobid": record.jobid,
                "app": record.spec.app,
                "nnodes": record.spec.nnodes,
                "ranks": list(record.ranks),
                "user": record.spec.user,
                "t": self.sim.now,
            },
        )
        self._append_eventlog(record)

    def _append_eventlog(self, record: JobRecord) -> None:
        """RFC 21-style per-job eventlog in the KVS."""
        if self.kvs is None:
            return
        key = f"jobs.{record.jobid}.eventlog"
        log = self.kvs.get(key, default=[])
        log.append({"t": self.sim.now, "event": record.state.value})
        self.kvs.put(key, log)

    def eventlog(self, jobid: int) -> List[dict]:
        """The job's state-transition history (timestamped)."""
        if self.kvs is None:
            return []
        return list(self.kvs.get(f"jobs.{jobid}.eventlog", default=[]))

    def _sync_kvs(self, record: JobRecord) -> None:
        if self.kvs is not None:
            self.kvs.put(f"jobs.{record.jobid}", record.to_kvs())

    # ------------------------------------------------------------------
    # RPC services
    # ------------------------------------------------------------------
    def _handle_submit(self, broker: Broker, msg: Message) -> None:
        try:
            spec = Jobspec(
                app=msg.payload["app"],
                nnodes=int(msg.payload["nnodes"]),
                params=msg.payload.get("params", {}),
                launcher=msg.payload.get("launcher", "mpi"),
                user=msg.payload.get("user", "user0"),
            )
        except (KeyError, ValueError, TypeError) as exc:
            broker.respond(msg, errnum=22, errmsg=str(exc))
            return
        try:
            record = self.submit(
                spec, depends_on=msg.payload.get("depends_on")
            )
        except ValueError as exc:
            broker.respond(msg, errnum=22, errmsg=str(exc))
            return
        broker.respond(msg, {"jobid": record.jobid})

    def _handle_list(self, broker: Broker, msg: Message) -> None:
        broker.respond(
            msg, {"jobs": [r.to_kvs() for r in self.jobs.values()]}
        )
