"""A minimal key-value store module.

Flux's KVS holds job records (R, eventlog) that external clients read.
Here it backs the telemetry client's job lookup: the job manager writes
``jobs.<id>`` records (nodes, start/end times) and the power-monitor
client reads them via RPC to rank 0.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.flux.broker import Broker
from repro.flux.message import Message
from repro.flux.module import Module


class KVSModule(Module):
    """Rank-0 key-value store with ``kvs.put`` / ``kvs.get`` services."""

    name = "kvs"

    def __init__(self, broker: Broker) -> None:
        if broker.rank != 0:
            raise ValueError("KVS module runs on rank 0 only")
        super().__init__(broker)
        self._store: Dict[str, Any] = {}

    def on_load(self) -> None:
        self.register_service("kvs.put", self._handle_put)
        self.register_service("kvs.get", self._handle_get)

    # -- direct (same-rank) access --------------------------------------
    def put(self, key: str, value: Any) -> None:
        self._store[key] = value

    def get(self, key: str, default: Any = None) -> Any:
        return self._store.get(key, default)

    def keys(self):  # noqa: D102 - trivial
        return list(self._store.keys())

    # -- RPC services ----------------------------------------------------
    def _handle_put(self, broker: Broker, msg: Message) -> None:
        key = msg.payload.get("key")
        if not isinstance(key, str):
            broker.respond(msg, errnum=22, errmsg="missing or invalid 'key'")
            return
        self._store[key] = msg.payload.get("value")
        broker.respond(msg, {"key": key})

    def _handle_get(self, broker: Broker, msg: Message) -> None:
        key = msg.payload.get("key")
        if not isinstance(key, str):
            broker.respond(msg, errnum=22, errmsg="missing or invalid 'key'")
            return
        if key not in self._store:
            broker.respond(msg, errnum=2, errmsg=f"no such key {key!r}")
            return
        broker.respond(msg, {"key": key, "value": self._store[key]})
