"""Tree-Based Overlay Network (TBON) topology and routing.

Flux brokers form a k-ary tree rooted at rank 0; messages travel
hop-by-hop along tree edges (up to the lowest common ancestor, then
down). The topology is also materialised as a :mod:`networkx` graph for
validation and for the TBON ablation benchmarks (depth/fan-out versus
aggregation latency).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import networkx as nx
import numpy as np


class TBON:
    """A k-ary tree over broker ranks ``0..size-1``.

    Parameters
    ----------
    size:
        Number of brokers (= nodes in the instance).
    fanout:
        Tree arity ``k`` (Flux default topology is k=2 unless
        configured otherwise).
    hop_latency_s:
        Mean one-hop message latency. Real TBON hops are tens of
        microseconds on InfiniBand; the default is deliberately
        conservative (100 µs).
    latency_jitter:
        Fractional jitter applied per hop when an RNG is supplied.
    """

    #: Per-hop link bandwidth: 100 Gb/s EDR InfiniBand (Lassen's fabric)
    #: at ~theoretical payload rate.
    DEFAULT_BANDWIDTH_BPS = 12.5e9

    def __init__(
        self,
        size: int,
        fanout: int = 2,
        hop_latency_s: float = 100e-6,
        latency_jitter: float = 0.1,
        rng: Optional[np.random.Generator] = None,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    ) -> None:
        if size < 1:
            raise ValueError(f"TBON size must be >= 1, got {size}")
        if fanout < 1:
            raise ValueError(f"TBON fanout must be >= 1, got {fanout}")
        self.size = int(size)
        self.fanout = int(fanout)
        self.hop_latency_s = float(hop_latency_s)
        self.latency_jitter = float(latency_jitter)
        self.bandwidth_bps = float(bandwidth_bps)
        self._rng = rng
        # The topology is immutable, so routes, child lists, depths and
        # subtree spans are computed once; every transmit prices its
        # hop count, the fault layer walks the route, and the tree
        # aggregation strategy walks subtrees per query — all of which
        # made topology reconstruction a per-message cost.
        self._route_cache: Dict[Tuple[int, int], List[int]] = {}
        self._children_cache: Dict[int, List[int]] = {}
        self._depth_cache: Dict[int, int] = {}
        self._subtree_cache: Dict[int, frozenset] = {}

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def parent(self, rank: int) -> Optional[int]:
        """Parent rank in the tree, or None for the root."""
        self._check(rank)
        if rank == 0:
            return None
        return (rank - 1) // self.fanout

    def children(self, rank: int) -> List[int]:
        """Child ranks of ``rank``, in increasing order (cached;
        callers must not mutate the returned list)."""
        cached = self._children_cache.get(rank)
        if cached is not None:
            return cached
        self._check(rank)
        first = rank * self.fanout + 1
        kids = [r for r in range(first, first + self.fanout) if r < self.size]
        self._children_cache[rank] = kids
        return kids

    def depth(self, rank: int) -> int:
        """Number of hops from ``rank`` up to the root (cached)."""
        cached = self._depth_cache.get(rank)
        if cached is not None:
            return cached
        d = 0
        r = rank
        while r != 0:
            r = self.parent(r)  # type: ignore[assignment]
            d += 1
        self._depth_cache[rank] = d
        return d

    def subtree_ranks(self, root: int) -> frozenset:
        """All ranks in the subtree rooted at ``root``, inclusive (cached)."""
        cached = self._subtree_cache.get(root)
        if cached is not None:
            return cached
        out = set()
        stack = [root]
        while stack:
            r = stack.pop()
            out.add(r)
            stack.extend(self.children(r))
        span = frozenset(out)
        self._subtree_cache[root] = span
        return span

    def max_depth(self) -> int:
        """Tree height (depth of the deepest rank)."""
        return self.depth(self.size - 1) if self.size > 1 else 0

    def ancestors(self, rank: int) -> Iterator[int]:
        """Yield ``rank`` and then each ancestor up to and including 0."""
        r = rank
        yield r
        while r != 0:
            r = self.parent(r)  # type: ignore[assignment]
            yield r

    def route(self, src: int, dst: int) -> List[int]:
        """Hop-by-hop path from ``src`` to ``dst`` (inclusive of both).

        Tree routing: ascend from both endpoints to their lowest common
        ancestor, then descend. Cached per (src, dst); callers must not
        mutate the returned list.
        """
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return cached
        self._check(src)
        self._check(dst)
        up_src = list(self.ancestors(src))
        up_dst = list(self.ancestors(dst))
        set_src = {r: i for i, r in enumerate(up_src)}
        # First ancestor of dst that also lies on src's ancestor chain
        # is the LCA.
        for j, r in enumerate(up_dst):
            if r in set_src:
                i = set_src[r]
                path = up_src[: i + 1] + list(reversed(up_dst[:j]))
                self._route_cache[(src, dst)] = path
                return path
        raise AssertionError("tree has a single root; LCA must exist")

    def graph(self) -> nx.Graph:
        """The topology as an undirected networkx graph."""
        g = nx.Graph()
        g.add_nodes_from(range(self.size))
        for r in range(1, self.size):
            g.add_edge(r, self.parent(r))
        return g

    # ------------------------------------------------------------------
    # Latency
    # ------------------------------------------------------------------
    def hop_delay(self) -> float:
        """Latency of one hop, with seeded jitter when configured."""
        base = self.hop_latency_s
        if self._rng is None or self.latency_jitter <= 0:
            return base
        factor = 1.0 + self.latency_jitter * float(self._rng.standard_normal())
        return max(base * 0.1, base * factor)

    def hop_count(self, src: int, dst: int) -> int:
        """Number of tree edges a message from ``src`` to ``dst`` crosses.

        Pure topology (no RNG draw) — usable by telemetry accounting
        without perturbing the seeded latency stream that
        :meth:`path_delay` consumes.
        """
        return len(self.route(src, dst)) - 1

    def path_delay(self, src: int, dst: int, size_bytes: int = 0) -> float:
        """Total latency for a message from ``src`` to ``dst``.

        ``size_bytes`` adds store-and-forward serialisation time per
        hop — negligible for control RPCs, dominant for whole-machine
        telemetry payloads.
        """
        hops = self.hop_count(src, dst)
        serialise = (
            size_bytes * 8.0 / self.bandwidth_bps if size_bytes > 0 else 0.0
        )
        base = self.hop_latency_s
        total = 0.0
        if self._rng is None or self.latency_jitter <= 0:
            # Repeated addition (not hops * term) to stay bit-identical
            # to the historical per-hop accumulation.
            for _ in range(hops):
                total += base + serialise
            return total
        # One vectorised draw consumes the generator stream exactly as
        # ``hops`` scalar standard_normal() calls did (pinned by
        # tests/test_sampling_equivalence.py); the sum stays
        # left-to-right so jittered runs are byte-identical too.
        draws = self._rng.standard_normal(hops)
        jitter = self.latency_jitter
        floor = base * 0.1
        for i in range(hops):
            delay = base * (1.0 + jitter * float(draws[i]))
            if delay < floor:
                delay = floor
            total += delay + serialise
        return total

    def _check(self, rank: int) -> None:
        if not (0 <= rank < self.size):
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
