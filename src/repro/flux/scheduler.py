"""Node allocation: first-come-first-served whole-node scheduling.

The paper's queue experiment (Section IV-E) notes "Flux schedules these
jobs as any regular resource manager would"; FCFS with an optional
conservative backfill is sufficient and keeps makespans deterministic.
"""

from __future__ import annotations

from typing import List, Optional, Set


class Scheduler:
    """Tracks free broker ranks and allocates them to jobs.

    Parameters
    ----------
    size:
        Total node (rank) count.
    backfill:
        When True, a job later in the queue may start ahead of a blocked
        head-of-queue job if enough nodes are free (conservative
        skip-ahead; used by an ablation bench, off by default to match
        plain FCFS).
    """

    def __init__(self, size: int, backfill: bool = False) -> None:
        if size < 1:
            raise ValueError("scheduler needs at least one node")
        self.size = size
        self.backfill = backfill
        self._free: Set[int] = set(range(size))

    @property
    def free_count(self) -> int:
        return len(self._free)

    def can_allocate(self, nnodes: int) -> bool:
        return nnodes <= len(self._free)

    def allocate(self, nnodes: int) -> List[int]:
        """Allocate the ``nnodes`` lowest free ranks (deterministic)."""
        if nnodes > len(self._free):
            raise RuntimeError(
                f"cannot allocate {nnodes} nodes; only {len(self._free)} free"
            )
        if nnodes < 1:
            raise ValueError("must allocate at least one node")
        ranks = sorted(self._free)[:nnodes]
        self._free.difference_update(ranks)
        return ranks

    def release(self, ranks: List[int]) -> None:
        """Return ranks to the free pool."""
        for r in ranks:
            if r in self._free:
                raise RuntimeError(f"rank {r} released twice")
            if not (0 <= r < self.size):
                raise ValueError(f"rank {r} out of range")
        self._free.update(ranks)

    def pick_next(self, queue: List[int], requests: dict) -> Optional[int]:
        """Choose which queued jobid (if any) can start now.

        ``queue`` is jobids in submission order; ``requests`` maps jobid
        to node count. Plain FCFS only considers the head; backfill
        scans forward for the first job that fits.
        """
        if not queue:
            return None
        if self.can_allocate(requests[queue[0]]):
            return queue[0]
        if self.backfill:
            for jobid in queue[1:]:
                if self.can_allocate(requests[jobid]):
                    return jobid
        return None
