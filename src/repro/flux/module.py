"""Broker modules (RFC 5 analogue).

A module is a dynamically loadable broker plugin: it has its own
control flow (timers / processes on the shared simulator) and interacts
with the rest of Flux exclusively through messages. The base class
tracks every service, subscription and timer a module creates so that
unloading tears all of it down — the monitor-overhead experiments load
and unload modules repeatedly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.flux.broker import Broker, ServiceHandler
from repro.flux.message import Message
from repro.simkernel import PeriodicTimer, Process, SimEvent


class Module:
    """Base class for broker modules.

    Subclasses override :meth:`on_load` (register services, start
    timers) and optionally :meth:`on_unload`. Use the provided
    ``register_service`` / ``subscribe`` / ``add_timer`` / ``spawn``
    helpers rather than going to the broker directly, so teardown is
    automatic.
    """

    #: Subclasses set this; it is the `flux module load` name.
    name: str = "module"

    def __init__(self, broker: Broker) -> None:
        self.broker = broker
        self.sim = broker.sim
        self._topics: List[str] = []
        self._subs: List[Tuple[str, Callable[[Message], None]]] = []
        self._timers: List[PeriodicTimer] = []
        self._procs: List[Process] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_load(self) -> None:
        """Called when the broker loads the module."""

    def on_unload(self) -> None:
        """Called just before teardown on unload."""

    def teardown(self) -> None:
        """Tear down everything this module created (idempotent)."""
        for topic in self._topics:
            self.broker.unregister_service(topic)
        self._topics.clear()
        for prefix, cb in self._subs:
            self.broker.unsubscribe(prefix, cb)
        self._subs.clear()
        for t in self._timers:
            t.stop()
        self._timers.clear()
        for p in self._procs:
            p.kill()
        self._procs.clear()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def register_service(self, topic: str, handler: ServiceHandler) -> None:
        self.broker.register_service(topic, handler)
        self._topics.append(topic)

    def subscribe(self, prefix: str, callback: Callable[[Message], None]) -> None:
        self.broker.subscribe(prefix, callback)
        self._subs.append((prefix, callback))

    def add_timer(
        self,
        period: float,
        callback: Callable[[PeriodicTimer], Any],
        start_delay: Optional[float] = None,
    ) -> PeriodicTimer:
        timer = PeriodicTimer(self.sim, period, callback, start_delay=start_delay)
        self._timers.append(timer)
        return timer

    def spawn(self, gen, name: Optional[str] = None) -> Process:
        proc = Process(self.sim, gen, name=name or f"{self.name}@{self.broker.rank}")
        self._procs.append(proc)
        return proc

    def rpc(
        self, dst_rank: int, topic: str, payload: Optional[Dict[str, Any]] = None
    ) -> SimEvent:
        return self.broker.rpc(dst_rank, topic, payload)
