"""Broker modules (RFC 5 analogue).

A module is a dynamically loadable broker plugin: it has its own
control flow (timers / processes on the shared simulator) and interacts
with the rest of Flux exclusively through messages. The base class
tracks every service, subscription and timer a module creates so that
unloading tears all of it down — the monitor-overhead experiments load
and unload modules repeatedly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.flux.broker import Broker, ServiceHandler
from repro.flux.message import Message, RPCTimeoutError
from repro.simkernel import AnyOf, PeriodicTimer, Process, SimEvent, Timeout


@dataclass(frozen=True)
class RetryConfig:
    """Per-RPC timeout and bounded retry/backoff policy.

    Production TBON peers can die or hang silently — a request then
    simply never gets a response. Any module fanning out RPCs uses this
    policy (via :meth:`Module.rpc_with_retry`) to bound how long it
    waits per node and how hard it retries before degrading to a
    per-node error instead of stalling or failing the whole operation.

    Attributes
    ----------
    timeout_s:
        How long to wait for the first attempt's response.
    retries:
        Additional attempts after the first (0 disables retrying).
    backoff:
        Multiplier on the timeout between attempts (exponential).
    """

    timeout_s: float = 5.0
    retries: int = 2
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {self.timeout_s}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {self.backoff}")


class Module:
    """Base class for broker modules.

    Subclasses override :meth:`on_load` (register services, start
    timers) and optionally :meth:`on_unload`. Use the provided
    ``register_service`` / ``subscribe`` / ``add_timer`` / ``spawn``
    helpers rather than going to the broker directly, so teardown is
    automatic.
    """

    #: Subclasses set this; it is the `flux module load` name.
    name: str = "module"

    def __init__(self, broker: Broker) -> None:
        self.broker = broker
        self.sim = broker.sim
        self._topics: List[str] = []
        self._subs: List[Tuple[str, Callable[[Message], None]]] = []
        self._timers: List[PeriodicTimer] = []
        self._procs: List[Process] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_load(self) -> None:
        """Called when the broker loads the module."""

    def on_unload(self) -> None:
        """Called just before teardown on unload."""

    def teardown(self) -> None:
        """Tear down everything this module created (idempotent)."""
        for topic in self._topics:
            self.broker.unregister_service(topic)
        self._topics.clear()
        for prefix, cb in self._subs:
            self.broker.unsubscribe(prefix, cb)
        self._subs.clear()
        for t in self._timers:
            t.stop()
        self._timers.clear()
        for p in self._procs:
            p.kill()
        self._procs.clear()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def register_service(self, topic: str, handler: ServiceHandler) -> None:
        self.broker.register_service(topic, handler)
        self._topics.append(topic)

    def subscribe(self, prefix: str, callback: Callable[[Message], None]) -> None:
        self.broker.subscribe(prefix, callback)
        self._subs.append((prefix, callback))

    def add_timer(
        self,
        period: float,
        callback: Callable[[PeriodicTimer], Any],
        start_delay: Optional[float] = None,
    ) -> PeriodicTimer:
        timer = PeriodicTimer(self.sim, period, callback, start_delay=start_delay)
        self._timers.append(timer)
        return timer

    def spawn(self, gen, name: Optional[str] = None) -> Process:
        proc = Process(self.sim, gen, name=name or f"{self.name}@{self.broker.rank}")
        self._procs.append(proc)
        return proc

    def rpc(
        self, dst_rank: int, topic: str, payload: Optional[Dict[str, Any]] = None
    ) -> SimEvent:
        return self.broker.rpc(dst_rank, topic, payload)

    def rpc_with_retry(
        self,
        dst_rank: int,
        topic: str,
        payload: Optional[Dict[str, Any]] = None,
        retry: Optional[RetryConfig] = None,
        first_future: Optional[SimEvent] = None,
    ):
        """Generator: RPC with per-attempt timeout and bounded retries.

        Yield from inside a spawned process::

            res = yield from self.rpc_with_retry(rank, topic, payload)

        Returns the response payload; raises
        :class:`~repro.flux.message.RPCTimeoutError` once every attempt
        has timed out, or :class:`~repro.flux.message.FluxRPCError` if
        the service answered with an errnum (error responses are not
        retried — the peer is alive, it just refused).

        ``first_future`` lets a caller that already sent the request
        (to keep a fan-out's send order deterministic) hand over the
        pending future; retries re-send ``payload`` themselves. Each
        timeout/resend is counted (``rpc_timeouts_total`` /
        ``rpc_retries_total``); a late response to an abandoned attempt
        is delivered to its orphaned future and ignored.
        """
        cfg = retry if retry is not None else RetryConfig()
        metrics = self.broker.telemetry.metrics
        future = (
            first_future
            if first_future is not None
            else self.rpc(dst_rank, topic, payload)
        )
        timeout_s = cfg.timeout_s
        for attempt in range(cfg.retries + 1):
            idx, res = yield AnyOf(self.sim, [future, Timeout(timeout_s)])
            if idx == 0:
                return res
            metrics.counter(
                "rpc_timeouts_total",
                labels={"topic": topic},
                help="RPC attempts abandoned after their per-attempt timeout",
            ).inc()
            if attempt < cfg.retries:
                metrics.counter(
                    "rpc_retries_total",
                    labels={"topic": topic},
                    help="RPC requests re-sent after a timed-out attempt",
                ).inc()
                timeout_s *= cfg.backoff
                future = self.rpc(dst_rank, topic, payload)
        raise RPCTimeoutError(topic, dst_rank, cfg.retries + 1)
