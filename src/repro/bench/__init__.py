"""Performance benchmark harness (``repro bench``).

Times the simulation hot paths — the discrete-event engine, the
792-node scalability query, and a Table-IV policy run — and writes
``BENCH_<name>.json`` artifacts so every PR has a perf trajectory to
compare against. See docs/performance.md for how to run and read it.
"""

from repro.bench.compare import (
    BenchDelta,
    CompareResult,
    compare_report_files,
    compare_reports,
    load_report_lenient,
    parse_max_regress,
)
from repro.bench.harness import (
    BENCH_SCHEMA_VERSION,
    BenchReport,
    BenchResult,
    load_report,
    run_suite,
    validate_report,
    write_report,
)
from repro.bench.suites import BENCHMARKS, default_suite

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BENCHMARKS",
    "BenchDelta",
    "BenchReport",
    "BenchResult",
    "CompareResult",
    "compare_report_files",
    "compare_reports",
    "default_suite",
    "load_report",
    "load_report_lenient",
    "parse_max_regress",
    "run_suite",
    "validate_report",
    "write_report",
]
