"""Perf-regression comparison of two bench artifacts.

``repro bench --compare BENCH_a.json BENCH_b.json --max-regress 10%``
matches results by ``(benchmark, metric)``, computes the regression of
the *new* report against the *base* report, and fails when any gated
metric regresses past the threshold.

Direction is inferred from the metric name: ``*_per_s`` metrics are
throughputs (higher is better); ``wall_s`` and other ``*_s``/``*_ms``
metrics are durations (lower is better).  Anything else is shown but
never gated.

The loader here is deliberately lenient where ``load_report`` is
strict: artifacts from older harness versions may carry a missing or
zero ``created_unix`` and a different ``repeats`` policy — both are
comparison *warnings*, not crashes, because the whole point of the
trajectory is to diff artifacts written by different revisions of the
harness.  A ``quick`` mismatch additionally drops duration metrics
from gating (a 96-node quick run and a 792-node full run have nothing
comparable about their absolute wall times, while their throughputs
remain roughly commensurable).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.harness import BENCH_SCHEMA_VERSION


def parse_max_regress(text: str) -> float:
    """``"10%"`` → 0.10; ``"0.1"`` → 0.1. Raises ValueError otherwise."""
    raw = text.strip()
    try:
        if raw.endswith("%"):
            frac = float(raw[:-1]) / 100.0
        else:
            frac = float(raw)
    except ValueError:
        raise ValueError(f"cannot parse --max-regress value: {text!r}")
    if frac < 0:
        raise ValueError(f"--max-regress must be >= 0, got {text!r}")
    return frac


def load_report_lenient(path: str) -> Dict[str, Any]:
    """Load a bench artifact with schema-only validation.

    Unlike :func:`repro.bench.harness.load_report` this accepts
    artifacts with missing/zero ``created_unix`` or absent ``repeats``
    — those become comparison warnings instead of load failures.
    """
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise ValueError(f"{path}: bench report must be a JSON object")
    if data.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(f"{path}: unknown bench schema {data.get('schema')!r}")
    if not isinstance(data.get("results"), list) or not data["results"]:
        raise ValueError(f"{path}: bench report has no results")
    return data


def _direction(metric: str) -> Optional[str]:
    """``"higher"`` / ``"lower"`` is better, or None (not gated)."""
    if metric.endswith("_per_s"):
        return "higher"
    if metric == "wall_s" or metric.endswith("_s") or metric.endswith("_ms"):
        return "lower"
    return None


@dataclass
class BenchDelta:
    """One (benchmark, metric) pair present in both reports."""

    benchmark: str
    metric: str
    base: float
    new: float
    #: Fractional regression of *new* vs *base* (positive = worse),
    #: or None when the metric direction is unknown / gating is
    #: suppressed (quick mismatch on a duration metric).
    regress: Optional[float]

    @property
    def speedup(self) -> float:
        """new/base for throughputs, base/new for durations (>1 = better)."""
        if self.base <= 0 or self.new <= 0:
            return float("nan")
        if _direction(self.metric) == "lower":
            return self.base / self.new
        return self.new / self.base


@dataclass
class CompareResult:
    base_name: str
    new_name: str
    max_regress: float
    deltas: List[BenchDelta] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    only_base: List[str] = field(default_factory=list)
    only_new: List[str] = field(default_factory=list)

    def regressions(self) -> List[BenchDelta]:
        return [
            d
            for d in self.deltas
            if d.regress is not None and d.regress > self.max_regress
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions()

    def table_rows(self) -> List[str]:
        lines = [
            f"{'benchmark':<28} {'metric':<18} {'base':>14} {'new':>14} "
            f"{'speedup':>8}  verdict"
        ]
        for d in self.deltas:
            if d.regress is None:
                verdict = "(not gated)"
            elif d.regress > self.max_regress:
                verdict = f"REGRESS {d.regress * 100:+.1f}%"
            elif d.regress > 0:
                verdict = f"ok {d.regress * 100:+.1f}%"
            else:
                verdict = f"ok {d.regress * 100:+.1f}%"
            lines.append(
                f"{d.benchmark:<28} {d.metric:<18} {d.base:>14.2f} "
                f"{d.new:>14.2f} {d.speedup:>7.2f}x  {verdict}"
            )
        for name in self.only_base:
            lines.append(f"{name:<28} only in {self.base_name} (skipped)")
        for name in self.only_new:
            lines.append(f"{name:<28} only in {self.new_name} (new)")
        return lines

    def summary(self) -> str:
        bad = self.regressions()
        if bad:
            worst = max(bad, key=lambda d: d.regress or 0.0)
            return (
                f"FAIL: {len(bad)} metric(s) regressed past "
                f"{self.max_regress * 100:.0f}% (worst: {worst.benchmark} "
                f"{worst.metric} {worst.regress * 100:+.1f}%)"
            )
        return (
            f"OK: no regression past {self.max_regress * 100:.0f}% across "
            f"{len(self.deltas)} compared metric(s)"
        )


def _usable_timestamp(value: Any) -> bool:
    """A real positive number. Excludes bool (``True`` is an ``int``
    to ``isinstance`` but is not a timestamp) and strings, which older
    hand-edited artifacts have carried — both must warn, not crash."""
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and value > 0
    )


def _repeats_key(value: Any) -> Any:
    """Numeric repeats compare by value (3 == 3.0, no spurious warning);
    anything non-numeric compares as-is."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return value


def _meta_warnings(base: Dict[str, Any], new: Dict[str, Any]) -> List[str]:
    warnings: List[str] = []
    for label, report in (("base", base), ("new", new)):
        if not _usable_timestamp(report.get("created_unix", 0)):
            warnings.append(
                f"{label} report {report.get('name', '?')!r} has no usable "
                "created_unix timestamp (older harness?); ordering not checked"
            )
    b_created = base.get("created_unix", 0)
    n_created = new.get("created_unix", 0)
    if (
        _usable_timestamp(b_created)
        and _usable_timestamp(n_created)
        and n_created < b_created
    ):
        warnings.append(
            "new report predates base report (created_unix ordering reversed)"
        )
    b_rep = base.get("repeats", 1)
    n_rep = new.get("repeats", 1)
    if _repeats_key(b_rep) != _repeats_key(n_rep):
        warnings.append(
            f"repeats differ (base best-of-{b_rep}, new best-of-{n_rep}); "
            "best-of-N noise floors are not identical"
        )
    b_plat = base.get("platform", {}) or {}
    n_plat = new.get("platform", {}) or {}
    for key in ("python", "machine", "numpy"):
        if b_plat.get(key) != n_plat.get(key):
            warnings.append(
                f"platform.{key} differs "
                f"({b_plat.get(key)!r} vs {n_plat.get(key)!r})"
            )
    return warnings


def compare_reports(
    base: Dict[str, Any], new: Dict[str, Any], max_regress: float
) -> CompareResult:
    """Match results by (benchmark, metric) and compute regressions."""
    result = CompareResult(
        base_name=str(base.get("name", "base")),
        new_name=str(new.get("name", "new")),
        max_regress=max_regress,
    )
    result.warnings.extend(_meta_warnings(base, new))

    quick_mismatch = bool(base.get("quick")) != bool(new.get("quick"))
    if quick_mismatch:
        result.warnings.append(
            "quick flags differ: duration metrics are shown but not gated "
            "(absolute wall times at different problem sizes are not "
            "comparable)"
        )

    def _index(report: Dict[str, Any]) -> Dict[Tuple[str, str], Dict[str, Any]]:
        out: Dict[Tuple[str, str], Dict[str, Any]] = {}
        for entry in report.get("results", []):
            out[(str(entry["benchmark"]), str(entry["metric"]))] = entry
        return out

    base_idx = _index(base)
    new_idx = _index(new)
    for key, b_entry in base_idx.items():
        n_entry = new_idx.get(key)
        if n_entry is None:
            result.only_base.append(f"{key[0]} ({key[1]})")
            continue
        bench, metric = key
        b_val = float(b_entry["value"])
        n_val = float(n_entry["value"])
        direction = _direction(metric)
        regress: Optional[float]
        if direction is None or b_val <= 0:
            regress = None
        elif direction == "lower" and quick_mismatch:
            regress = None
        elif direction == "higher":
            regress = (b_val - n_val) / b_val
        else:
            regress = (n_val - b_val) / b_val
        result.deltas.append(
            BenchDelta(
                benchmark=bench, metric=metric, base=b_val, new=n_val,
                regress=regress,
            )
        )
    for key in new_idx:
        if key not in base_idx:
            result.only_new.append(f"{key[0]} ({key[1]})")
    result.deltas.sort(key=lambda d: (d.benchmark, d.metric))
    return result


def compare_report_files(
    base_path: str, new_path: str, max_regress: float
) -> CompareResult:
    return compare_reports(
        load_report_lenient(base_path),
        load_report_lenient(new_path),
        max_regress,
    )
