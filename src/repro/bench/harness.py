"""Benchmark report plumbing: result records, JSON schema, validation.

A benchmark is a callable ``fn(quick: bool) -> list[BenchResult]``.
``run_suite`` executes a list of them and collects a ``BenchReport``
that serialises to the ``repro-bench/1`` JSON schema::

    {
      "schema": "repro-bench/1",
      "name": "baseline",
      "quick": false,
      "created_unix": 1754459000,
      "platform": {"python": "3.11.7", "machine": "x86_64", "numpy": "2.4.6"},
      "results": [
        {"benchmark": "engine_prescheduled", "metric": "events_per_s",
         "value": 812345.6, "wall_s": 0.62, "params": {"n_events": 500000}}
      ]
    }

Artifacts are named ``BENCH_<name>.json`` and live at the repo root so
the trajectory is visible in plain ``git log --stat``.
"""

from __future__ import annotations

import json
import platform as _platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

BENCH_SCHEMA_VERSION = "repro-bench/1"

_RESULT_KEYS = {"benchmark", "metric", "value", "wall_s", "params"}


def _numpy_version() -> Optional[str]:
    """numpy's version, or None on a checkout/venv without it.

    The columnar hot paths are numpy-vectorised, so the exact numpy
    build is as much a part of a measurement's provenance as the
    Python version; ``--compare`` warns when two artifacts disagree.
    """
    try:
        import numpy

        return str(numpy.__version__)
    except ImportError:  # pragma: no cover - numpy ships in the image
        return None


@dataclass
class BenchResult:
    """One measured quantity from one benchmark."""

    benchmark: str
    metric: str
    value: float
    wall_s: float
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "metric": self.metric,
            "value": round(float(self.value), 6),
            "wall_s": round(float(self.wall_s), 6),
            "params": dict(self.params),
        }


@dataclass
class BenchReport:
    """A named collection of benchmark results."""

    name: str
    quick: bool
    results: List[BenchResult] = field(default_factory=list)
    created_unix: int = 0
    repeats: int = 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA_VERSION,
            "name": self.name,
            "quick": self.quick,
            "repeats": self.repeats,
            "created_unix": self.created_unix,
            "platform": {
                "python": _platform.python_version(),
                "machine": _platform.machine(),
                "numpy": _numpy_version(),
            },
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def result(self, benchmark: str, metric: Optional[str] = None) -> BenchResult:
        for r in self.results:
            if r.benchmark == benchmark and (metric is None or r.metric == metric):
                return r
        raise KeyError((benchmark, metric))

    def table_rows(self) -> List[str]:
        lines = [f"{'benchmark':<28} {'metric':<16} {'value':>14} {'wall s':>9}"]
        for r in self.results:
            lines.append(
                f"{r.benchmark:<28} {r.metric:<16} {r.value:>14.2f} {r.wall_s:>9.3f}"
            )
        return lines


def run_suite(
    benchmarks: Iterable[Callable[[bool], List[BenchResult]]],
    name: str,
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    repeats: int = 1,
) -> BenchReport:
    """Run each benchmark callable and collect the report.

    With ``repeats > 1`` each benchmark runs that many times and the
    run with the smallest total wall time is kept (whole run, so
    derived results like a sweep total stay internally consistent).
    Scheduler/VM noise is strictly additive, so best-of-N estimates
    the true cost; the same policy must be applied to any baseline
    being compared against.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    report = BenchReport(
        name=name, quick=quick, created_unix=int(time.time()), repeats=repeats
    )
    for fn in benchmarks:
        label = getattr(fn, "__name__", str(fn))
        best: Optional[List[BenchResult]] = None
        for rep in range(repeats):
            if progress is not None:
                suffix = f" ({rep + 1}/{repeats})" if repeats > 1 else ""
                progress(f"running {label}{suffix} ...")
            results = fn(quick)
            if best is None or sum(r.wall_s for r in results) < sum(
                r.wall_s for r in best
            ):
                best = results
        report.results.extend(best or [])
    return report


def write_report(report: BenchReport, path: str) -> str:
    with open(path, "w") as fh:
        fh.write(report.to_json())
    return path


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as fh:
        data = json.load(fh)
    validate_report(data)
    return data


def validate_report(data: Any) -> None:
    """Raise ``ValueError`` unless ``data`` is a valid bench report."""
    if not isinstance(data, dict):
        raise ValueError("bench report must be a JSON object")
    if data.get("schema") != BENCH_SCHEMA_VERSION:
        raise ValueError(f"unknown bench schema: {data.get('schema')!r}")
    for key in ("name", "quick", "created_unix", "results"):
        if key not in data:
            raise ValueError(f"bench report missing key: {key}")
    if not isinstance(data["name"], str) or not data["name"]:
        raise ValueError("bench report name must be a non-empty string")
    if not isinstance(data["quick"], bool):
        raise ValueError("bench report quick must be a bool")
    if not isinstance(data["results"], list) or not data["results"]:
        raise ValueError("bench report results must be a non-empty list")
    for entry in data["results"]:
        if not isinstance(entry, dict):
            raise ValueError("bench result must be an object")
        missing = _RESULT_KEYS - set(entry)
        if missing:
            raise ValueError(f"bench result missing keys: {sorted(missing)}")
        if not isinstance(entry["benchmark"], str) or not entry["benchmark"]:
            raise ValueError("bench result benchmark must be a non-empty string")
        if not isinstance(entry["metric"], str) or not entry["metric"]:
            raise ValueError("bench result metric must be a non-empty string")
        for num_key in ("value", "wall_s"):
            if not isinstance(entry[num_key], (int, float)) or isinstance(
                entry[num_key], bool
            ):
                raise ValueError(f"bench result {num_key} must be a number")
            if entry[num_key] < 0:
                raise ValueError(f"bench result {num_key} must be >= 0")
        if not isinstance(entry["params"], dict):
            raise ValueError("bench result params must be an object")
