"""El Capitan-scale telemetry sweeps: the 10k/100k-node benchmarks.

The original ``scalability_query`` benchmark stops at Lassen's 792
nodes.  These two sweeps are the exascale follow-on: a long sampling
window over 10,000 (respectively 100,000) simulated nodes with
periodic whole-machine ``GET_JOB_POWER`` queries — the workload the
columnar store (:mod:`repro.columnar`) exists for.

Both benchmarks use only public APIs and feature-detect everything
that post-dates the columnar work (the ``columnar=`` keyword of
``attach_monitor``, the El Capitan platform model), so this very file
can be dropped onto a pre-columnar checkout to produce the *baseline*
side of a ``repro bench --compare`` pair.  The fallbacks are recorded
in each result's ``params`` (``platform`` and ``columnar``) so a
comparison across the feature boundary is visible in the artifact.

The reported value is end-to-end sweep throughput::

    node_samples_per_s = samples generated in the window / total wall

with total wall covering instance build + sampling window + queries;
``wall_s`` carries the same total so ``--compare`` can gate on either.
"""

from __future__ import annotations

import inspect
import time
from typing import Any, Dict, List

from repro.bench.harness import BenchResult


def _sweep_platform() -> str:
    """El Capitan-class nodes when the model exists, else Lassen."""
    try:
        from repro.hardware.platforms import PLATFORM_FACTORIES

        if "elcapitan" in PLATFORM_FACTORIES:
            return "elcapitan"
    except ImportError:  # pragma: no cover - ancient checkouts
        pass
    return "lassen"


def _attach_best_available(instance, **kwargs):
    """``attach_monitor`` with every keyword the checkout understands.

    On a pre-columnar tree the ``columnar=True`` request silently
    degrades to the scalar per-agent path — which is exactly the
    baseline measurement the comparison needs.
    """
    from repro.monitor.module import attach_monitor

    allowed = inspect.signature(attach_monitor).parameters
    return attach_monitor(
        instance, **{k: v for k, v in kwargs.items() if k in allowed}
    )


def _run_sweep(
    name: str,
    n_nodes: int,
    window_s: float,
    query_every_s: float,
    query_window_s: float,
    query_ranks: int,
    buffer_capacity: int,
    sample_interval_s: float = 1.0,
    fanout: int = 32,
    seed: int = 7,
) -> List[BenchResult]:
    from repro.flux.instance import FluxInstance
    from repro.monitor.root_agent import GET_JOB_POWER_TOPIC

    platform = _sweep_platform()
    t0 = time.perf_counter()
    inst = FluxInstance(
        platform=platform, n_nodes=n_nodes, seed=seed, fanout=fanout
    )
    monitor = _attach_best_available(
        inst,
        sample_interval_s=sample_interval_s,
        buffer_capacity=buffer_capacity,
        columnar=True,
    )
    build_s = time.perf_counter() - t0

    samples_returned = 0
    query_latency_s = 0.0
    n_queries = 0
    next_query = 0.0
    t1 = time.perf_counter()
    while next_query < window_s - 1e-9:
        next_query = min(next_query + query_every_s, window_s)
        inst.run_for(max(0.0, next_query - inst.sim.now))
        fut = inst.brokers[0].rpc(
            0,
            GET_JOB_POWER_TOPIC,
            {
                "ranks": list(range(min(query_ranks, n_nodes))),
                "t_start": max(0.0, next_query - query_window_s),
                "t_end": next_query,
            },
        )
        q0 = inst.sim.now
        while not fut.triggered:
            if not inst.sim.step():
                raise RuntimeError("simulation drained before query completed")
        query_latency_s += inst.sim.now - q0
        n_queries += 1
        samples_returned += sum(len(n["samples"]) for n in fut.value["nodes"])
    sweep_s = time.perf_counter() - t1

    total_wall = build_s + sweep_s
    # One sample per node per interval tick, including the t=0 tick.
    generated = n_nodes * (int(window_s / sample_interval_s) + 1)
    params: Dict[str, Any] = {
        "n_nodes": n_nodes,
        "platform": platform,
        "columnar": bool(getattr(monitor, "columnar", False)),
        "window_s": window_s,
        "sample_interval_s": sample_interval_s,
        "buffer_capacity": buffer_capacity,
        "n_queries": n_queries,
        "query_ranks": min(query_ranks, n_nodes),
        "query_window_s": query_window_s,
        "samples_generated": generated,
        "samples_returned": samples_returned,
        "query_latency_ms": round(query_latency_s * 1e3, 3),
        "build_s": round(build_s, 3),
    }
    return [
        BenchResult(
            benchmark=name,
            metric="node_samples_per_s",
            value=generated / total_wall,
            wall_s=total_wall,
            params=params,
        )
    ]


def sweep_10k(quick: bool) -> List[BenchResult]:
    """10,000-node sampling sweep with whole-machine queries.

    A 1200 s window at 1 Hz (12M node samples) with a whole-machine
    job-power query every 600 s over the trailing 30 s — the ISSUE-8
    headline number (≥10x over the scalar path).
    """
    if quick:
        return _run_sweep(
            "sweep_10k",
            n_nodes=1_000,
            window_s=120.0,
            query_every_s=60.0,
            query_window_s=15.0,
            query_ranks=1_000,
            buffer_capacity=32,
        )
    return _run_sweep(
        "sweep_10k",
        n_nodes=10_000,
        window_s=1200.0,
        query_every_s=600.0,
        query_window_s=30.0,
        query_ranks=10_000,
        buffer_capacity=64,
    )


def sweep_100k(quick: bool) -> List[BenchResult]:
    """100,000-node sampling sweep, querying a 10k-rank slice.

    At this size the whole-machine query payload would dwarf the
    sampling work being measured, so the periodic query covers a
    10,000-rank subset — big enough to exercise the fan-out path,
    small enough that vectorised sampling stays the subject.
    """
    if quick:
        return _run_sweep(
            "sweep_100k",
            n_nodes=4_000,
            window_s=60.0,
            query_every_s=60.0,
            query_window_s=10.0,
            query_ranks=2_000,
            buffer_capacity=8,
        )
    return _run_sweep(
        "sweep_100k",
        n_nodes=100_000,
        window_s=120.0,
        query_every_s=120.0,
        query_window_s=15.0,
        query_ranks=10_000,
        buffer_capacity=16,
    )
