"""The benchmark suite: engine micros plus scalability/policy macros.

Each benchmark is a plain callable ``fn(quick) -> list[BenchResult]``
using only public APIs, so the same suite runs unchanged before and
after hot-path work — that is what makes the ``BENCH_*.json``
trajectory comparable across PRs.
"""

from __future__ import annotations

import gc
import time
from typing import Callable, Dict, List

from repro.bench.harness import BenchResult
from repro.bench.sweeps import sweep_10k, sweep_100k


def _quiesce() -> None:
    """Collect leftover garbage so one benchmark's dead object graphs
    (instances, buffers, process frames) don't inflate the next timed
    region through generational GC pressure. Standard bench hygiene —
    applied identically to every measurement, including baselines.
    """
    gc.collect()

# ---------------------------------------------------------------------------
# engine micro-benchmarks
# ---------------------------------------------------------------------------


def engine_prescheduled(quick: bool) -> List[BenchResult]:
    """Heap push/pop throughput: schedule N one-shot events, drain them."""
    from repro.simkernel.engine import Simulator

    n = 50_000 if quick else 500_000
    sim = Simulator()
    sink = [0]

    def cb() -> None:
        sink[0] += 1

    _quiesce()
    t0 = time.perf_counter()
    for i in range(n):
        # Deterministic scattered times so the heap actually reorders.
        sim.schedule((i * 37 % 1009) / 1000.0, cb)
    sim.run()
    wall = time.perf_counter() - t0
    assert sink[0] == n
    return [
        BenchResult(
            benchmark="engine_prescheduled",
            metric="events_per_s",
            value=n / wall,
            wall_s=wall,
            params={"n_events": n},
        )
    ]


def engine_periodic(quick: bool) -> List[BenchResult]:
    """Periodic-timer tick throughput (the monitor's sampling shape)."""
    from repro.simkernel.engine import Simulator
    from repro.simkernel.timers import PeriodicTimer

    n_timers = 64 if quick else 256
    horizon = 200.0 if quick else 1000.0
    sim = Simulator()
    ticks = [0]

    def cb(_timer: PeriodicTimer) -> None:
        ticks[0] += 1

    timers = [
        PeriodicTimer(sim, period=1.0, callback=cb, start_delay=0.0)
        for _ in range(n_timers)
    ]
    _quiesce()
    t0 = time.perf_counter()
    sim.run(until=horizon)
    wall = time.perf_counter() - t0
    for timer in timers:
        timer.stop()
    return [
        BenchResult(
            benchmark="engine_periodic",
            metric="events_per_s",
            value=ticks[0] / wall,
            wall_s=wall,
            params={"n_timers": n_timers, "horizon_s": horizon, "ticks": ticks[0]},
        )
    ]


def engine_cancel_churn(quick: bool) -> List[BenchResult]:
    """Schedule/cancel churn: half the events are cancelled before firing.

    Exercises ``cancel()``, the O(1) ``pending()`` counter and heap
    compaction; ops/s counts scheduled + cancelled + fired operations.
    """
    from repro.simkernel.engine import Simulator

    n = 40_000 if quick else 400_000
    sim = Simulator()
    fired = [0]

    def cb() -> None:
        fired[0] += 1

    _quiesce()
    t0 = time.perf_counter()
    handles = [sim.schedule((i % 997) / 100.0, cb) for i in range(n)]
    for handle in handles[::2]:
        handle.cancel()
    live = sim.pending()
    sim.run()
    wall = time.perf_counter() - t0
    assert fired[0] == live == n - len(handles[::2])
    ops = n + n // 2 + fired[0]
    return [
        BenchResult(
            benchmark="engine_cancel_churn",
            metric="ops_per_s",
            value=ops / wall,
            wall_s=wall,
            params={"n_events": n, "n_cancelled": n // 2},
        )
    ]


# ---------------------------------------------------------------------------
# macro benchmarks (paper-scale paths)
# ---------------------------------------------------------------------------


def scalability_query(quick: bool) -> List[BenchResult]:
    """The 792-node whole-machine power query (both strategies).

    This is the ISSUE-3 headline target: wall-clock of simulating a
    60 s sampling window on Lassen's full 792 nodes plus one
    GET_JOB_POWER query over every rank.
    """
    from repro.experiments.scalability import measure_scale_point

    n_nodes = 96 if quick else 792
    results: List[BenchResult] = []
    total = 0.0
    for strategy in ("fanout", "tree"):
        _quiesce()
        t0 = time.perf_counter()
        cell = measure_scale_point(n_nodes, strategy)
        wall = time.perf_counter() - t0
        total += wall
        results.append(
            BenchResult(
                benchmark=f"scalability_{strategy}",
                metric="wall_s",
                value=wall,
                wall_s=wall,
                params={
                    "n_nodes": n_nodes,
                    "window_s": 60.0,
                    "samples_returned": cell.samples_returned,
                    "query_latency_ms": round(cell.query_latency_s * 1e3, 3),
                },
            )
        )
    results.append(
        BenchResult(
            benchmark="scalability_sweep",
            metric="wall_s",
            value=total,
            wall_s=total,
            params={"n_nodes": n_nodes, "strategies": ["fanout", "tree"]},
        )
    )
    return results


def table4_policy(quick: bool) -> List[BenchResult]:
    """One Table-IV policy scenario end to end (manager + FPP + jobs)."""
    from repro.experiments.table4_policies import run_policy_scenario

    _quiesce()
    t0 = time.perf_counter()
    scenario = run_policy_scenario("proportional", seed=1)
    wall = time.perf_counter() - t0
    jobs = getattr(scenario, "jobs", None)
    n_jobs = len(jobs) if jobs is not None else 0
    return [
        BenchResult(
            benchmark="table4_policy",
            metric="wall_s",
            value=wall,
            wall_s=wall,
            params={"policy": "proportional", "seed": 1, "n_jobs": n_jobs},
        )
    ]


BENCHMARKS: Dict[str, Callable[[bool], List[BenchResult]]] = {
    "engine_prescheduled": engine_prescheduled,
    "engine_periodic": engine_periodic,
    "engine_cancel_churn": engine_cancel_churn,
    "scalability_query": scalability_query,
    "table4_policy": table4_policy,
    "sweep_10k": sweep_10k,
    "sweep_100k": sweep_100k,
}


def default_suite(only: str = "") -> List[Callable[[bool], List[BenchResult]]]:
    """All benchmarks, optionally filtered by a name substring."""
    return [fn for name, fn in BENCHMARKS.items() if only in name]
