"""Run one federated scenario under site- and cluster-tier checkers.

Builds a :class:`~repro.federation.FederatedSite` from a
:class:`~repro.simtest.federation.scenario.FederatedScenario`, schedules
every cluster's job arrivals, the site budget schedule and per-cluster
fault campaigns, then interleaves a periodic check tick exactly like the
single-cluster harness (:mod:`repro.simtest.harness`):

* the **site checkers** (``site_budget``, ``floor_ceiling``) see a
  :class:`FederatedSimtestContext` with the whole site;
* the existing **cluster checkers** run unchanged, one fresh set per
  member cluster, each over a per-cluster view — the federation tier
  must not break any single-cluster property;
* engine/counter checkers run once (the engine and the telemetry hub
  are shared across the site).

The result digest follows the same canonical-JSON/SHA-256 contract, now
also covering the site's rebalance timeline, so ``repro federate
--expect-digest`` pins cross-cluster behaviour byte for byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.federation import ClusterSpec, FederatedSite, SiteConfig
from repro.flux.jobspec import Jobspec
from repro.monitor.client import JobPowerData
from repro.simtest.harness import (
    DEFAULT_CHECK_INTERVAL_S,
    DEFAULT_MAX_EVENTS,
    DEFAULT_TIMEOUT_S,
    DIGEST_COUNTERS,
    _canonical,
)
from repro.simtest.invariants import (
    BudgetChecker,
    BufferChecker,
    CapRangeChecker,
    EngineChecker,
    InvariantChecker,
    LifecycleChecker,
    MonotonicCountersChecker,
    OrphanShareChecker,
    ShareSplitChecker,
    TelemetryRowsChecker,
    Violation,
    site_checkers,
)
from repro.simtest.federation.scenario import FederatedScenario

#: Federation counters folded into the digest alongside the
#: single-cluster :data:`~repro.simtest.harness.DIGEST_COUNTERS`.
FEDERATION_DIGEST_COUNTERS = (
    "federation_rebalances_total",
    "federation_cluster_outages_total",
    "federation_cluster_recoveries_total",
    "federation_site_retunes_total",
)


class ClusterView:
    """Per-cluster adapter exposing the single-cluster checker surface
    (``cluster`` / ``sim`` / ``tick_index`` / ``job_telemetry``)."""

    def __init__(self, parent: "FederatedSimtestContext", name: str) -> None:
        self._parent = parent
        self.name = name
        self.cluster = parent.site.clusters[name]
        self.job_telemetry: Dict[int, JobPowerData] = {}

    @property
    def sim(self):
        return self._parent.site.sim

    @property
    def tick_index(self) -> int:
        return self._parent.tick_index


class FederatedSimtestContext:
    """What the site checkers see: the site plus harness bookkeeping."""

    def __init__(self, site: FederatedSite, scenario: FederatedScenario) -> None:
        self.site = site
        self.scenario = scenario
        self.tick_index = 0
        self.views: Dict[str, ClusterView] = {
            name: ClusterView(self, name) for name in sorted(site.clusters)
        }

    @property
    def sim(self):
        return self.site.sim


@dataclass
class FederatedSimtestResult:
    """Outcome of one federated scenario run."""

    scenario: FederatedScenario
    violations: List[Violation] = field(default_factory=list)
    digest: str = ""
    makespan_s: Optional[float] = None
    n_ticks: int = 0
    events_processed: int = 0
    n_rebalances: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return (
                f"OK   {self.scenario.describe()} "
                f"digest={self.digest[:12]} ticks={self.n_ticks} "
                f"rebalances={self.n_rebalances}"
            )
        v = self.violations[0]
        return (
            f"FAIL {self.scenario.describe()} "
            f"[{v.invariant}] t={v.t:.3f}: {v.message}"
            + (f" (+{len(self.violations) - 1} more)" if len(self.violations) > 1 else "")
        )


def _cluster_checkers() -> List[InvariantChecker]:
    """A fresh per-cluster checker set (engine/counter checkers are
    site-wide — the engine and metrics registry are shared — so they
    are attached once by the harness, not per cluster)."""
    return [
        ShareSplitChecker(),
        BudgetChecker(),
        CapRangeChecker(),
        BufferChecker(),
        OrphanShareChecker(),
        LifecycleChecker(),
        TelemetryRowsChecker(),
    ]


def _site_config(scenario: FederatedScenario) -> SiteConfig:
    return SiteConfig(
        site_budget_w=scenario.site_budget_w,
        rebalance_epoch_s=scenario.rebalance_epoch_s,
        clusters=tuple(
            ClusterSpec(
                name=c.name,
                platform=c.platform,
                n_nodes=c.n_nodes,
                fanout=c.fanout,
                monitor_strategy=c.monitor_strategy,
                policy=c.policy,
                static_node_cap_w=c.static_node_cap_w,
                node_peak_w=c.node_peak_w,
                min_share_w=c.min_share_w,
                max_share_w=c.max_share_w,
            )
            for c in scenario.clusters
        ),
    )


def _run_sharded_twin(scenario: FederatedScenario) -> str:
    """Run ``scenario`` on the sharded inline engine; return its digest.

    The twin gets the identical config, seed and workload as the
    single-engine run the harness just finished — byte-equal site
    digests are the sharding determinism contract
    (:mod:`repro.federation.sharded`), so any divergence the fuzzer
    finds here is a real finding, not noise.
    """
    from repro.federation import ShardedFederatedSite

    site = ShardedFederatedSite(_site_config(scenario), seed=scenario.seed)
    for c in scenario.clusters:
        for entry in c.jobs:
            spec = Jobspec(
                app=entry.app,
                nnodes=min(entry.nnodes, c.n_nodes),
                params={"work_scale": entry.work_scale},
            )
            if entry.submit_t <= 0.0:
                site.submit(c.name, spec)
            else:
                site.submit_at(c.name, spec, entry.submit_t)
    for t, w in scenario.site_budget_schedule:
        site.schedule_retune(t, w)
    site.run_until_complete(timeout_s=DEFAULT_TIMEOUT_S)
    site.run_for(scenario.drain_s)
    return site.site_digest()


def run_federated_scenario(
    scenario: FederatedScenario,
    checkers: Optional[List[InvariantChecker]] = None,
    check_interval_s: float = DEFAULT_CHECK_INTERVAL_S,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    max_events: int = DEFAULT_MAX_EVENTS,
    setup=None,
) -> FederatedSimtestResult:
    """Execute ``scenario`` under site + per-cluster invariant checkers.

    ``checkers`` overrides the *site-tier* set only; the per-cluster and
    shared engine/counter checkers always run. ``setup(site, sim)``,
    when given, runs before the first event (the crash-recovery fuzz
    schedules its snapshot → wipe → restore cycle through it).
    """
    if checkers is None:
        checkers = site_checkers()

    site = FederatedSite(
        _site_config(scenario),
        seed=scenario.seed,
        fault_plans={
            c.name: plan
            for c in scenario.clusters
            if (plan := c.fault_plan()) is not None
        },
    )
    ctx = FederatedSimtestContext(site, scenario)
    result = FederatedSimtestResult(scenario=scenario)
    sim = site.sim
    if setup is not None:
        setup(site, sim)

    # Job arrivals -------------------------------------------------------
    for c in scenario.clusters:
        for entry in c.jobs:
            spec = Jobspec(
                app=entry.app,
                nnodes=min(entry.nnodes, c.n_nodes),
                params={"work_scale": entry.work_scale},
            )
            if entry.submit_t <= 0.0:
                site.submit(c.name, spec)
            else:
                site.submit_at(c.name, spec, entry.submit_t)

    # Site budget schedule -----------------------------------------------
    for t, w in scenario.site_budget_schedule:
        site.schedule_retune(t, w)

    # Invariant tick -----------------------------------------------------
    per_cluster = {name: _cluster_checkers() for name in sorted(site.clusters)}
    shared = [MonotonicCountersChecker(), EngineChecker()]

    def _tick() -> None:
        for checker in checkers:
            result.violations.extend(checker.check(ctx))
        for name, cluster_set in per_cluster.items():
            view = ctx.views[name]
            for checker in cluster_set:
                result.violations.extend(checker.check(view))
        first_view = next(iter(ctx.views.values()))
        for checker in shared:
            result.violations.extend(checker.check(first_view))
        ctx.tick_index += 1
        result.n_ticks += 1

    tick_event = sim.schedule_periodic(check_interval_s, _tick, start_delay=0.0)

    # Run ----------------------------------------------------------------
    deadline = sim.now + timeout_s
    count = 0
    timed_out = False
    while not site.all_complete():
        if not sim.step():
            result.violations.append(
                Violation(
                    invariant="engine", t=sim.now,
                    message="event heap drained with jobs still active",
                )
            )
            timed_out = True
            break
        count += 1
        if count > max_events or sim.now > deadline:
            result.violations.append(
                Violation(
                    invariant="liveness", t=sim.now,
                    message=(
                        f"jobs still active after {count} events / "
                        f"t={sim.now:.0f}s"
                    ),
                    details={"events": count},
                )
            )
            timed_out = True
            break
    if not timed_out:
        site.run_for(scenario.drain_s)
    tick_event.cancel()

    # Sharded cross-check ------------------------------------------------
    # The site digest folds in t_end (sim.now), which the end-of-run
    # telemetry fetches below advance — capture it first.
    if scenario.sharded and not timed_out:
        unsharded_digest = site.site_digest()
        try:
            sharded_digest = _run_sharded_twin(scenario)
        except Exception as exc:  # noqa: BLE001 - a crashed twin IS a finding
            result.violations.append(
                Violation(
                    invariant="sharded_digest", t=sim.now,
                    message=f"sharded twin run failed: {exc}",
                    details={"error": str(exc)},
                )
            )
        else:
            if sharded_digest != unsharded_digest:
                result.violations.append(
                    Violation(
                        invariant="sharded_digest", t=sim.now,
                        message=(
                            "sharded site digest diverged from the "
                            "single-engine run"
                        ),
                        details={
                            "unsharded": unsharded_digest,
                            "sharded": sharded_digest,
                        },
                    )
                )

    # End-of-run checks --------------------------------------------------
    if not timed_out:
        for name, view in ctx.views.items():
            cluster = view.cluster
            for jobid, run in cluster.instance.app_runs.items():
                if not run.finished:
                    continue
                try:
                    view.job_telemetry[jobid] = cluster.telemetry(jobid)
                except Exception as exc:  # noqa: BLE001 - a failed fetch IS a finding
                    result.violations.append(
                        Violation(
                            invariant="telemetry_fetch", t=sim.now,
                            message=(
                                f"telemetry fetch for {name} job {jobid} "
                                f"failed: {exc}"
                            ),
                            details={"cluster": name, "jobid": jobid,
                                     "error": str(exc)},
                        )
                    )
        for checker in checkers:
            result.violations.extend(checker.check(ctx))
            result.violations.extend(checker.at_end(ctx))
        for name, cluster_set in per_cluster.items():
            view = ctx.views[name]
            for checker in cluster_set:
                result.violations.extend(checker.check(view))
                result.violations.extend(checker.at_end(view))

    # Digest -------------------------------------------------------------
    makespans = [
        site.clusters[name].makespan_s() for name in sorted(site.clusters)
    ]
    known = [m for m in makespans if m is not None]
    result.makespan_s = max(known) if known else None
    result.events_processed = sim.events_processed
    result.n_rebalances = len(site.budget_log)
    summary: Dict[str, Any] = {
        "seed": scenario.seed,
        "scenario": scenario.to_dict(),
        "makespan_s": result.makespan_s,
        "t_end": sim.now,
        "clusters": {},
        "rebalances": [
            {"t": t, "reason": reason, "shares": shares, "live": list(live)}
            for t, reason, shares, live in site.budget_log
        ],
        "counters": {},
        "violations": [v.to_dict() for v in result.violations],
    }
    for name in sorted(site.clusters):
        cluster = site.clusters[name]
        jobs: Dict[str, Any] = {}
        for jobid, m in sorted(cluster.all_metrics().items()):
            jobs[str(jobid)] = {
                "runtime_s": m.runtime_s,
                "avg_node_power_w": m.avg_node_power_w,
                "avg_node_energy_kj": m.avg_node_energy_kj,
            }
        summary["clusters"][name] = {
            "jobs": jobs,
            "faults": list(cluster.faults.injected),
        }
    metrics = site.telemetry.metrics
    for counter in DIGEST_COUNTERS + FEDERATION_DIGEST_COUNTERS:
        total = sum(s.value for s in metrics.series_for(counter))
        summary["counters"][counter] = total
    blob = json.dumps(_canonical(summary), sort_keys=True).encode()
    result.digest = hashlib.sha256(blob).hexdigest()
    return result
