"""repro.simtest.federation — the site-tier simulation-test harness.

Extends :mod:`repro.simtest` one level up the hierarchy: seeded
federated scenarios (2–4 clusters, mixed platforms, per-cluster fault
campaigns and whole-cluster outages), the harness running them under
both the new site-level checkers (``site_budget``, ``floor_ceiling``)
and one fresh set of every single-cluster checker per member cluster,
and the ``repro federate`` batch driver. See docs/federation.md.
"""

from __future__ import annotations

from repro.simtest.federation.scenario import (
    ClusterScenario,
    FederatedGeneratorConfig,
    FederatedScenario,
    generate_federated_scenario,
)
from repro.simtest.federation.harness import (
    FederatedSimtestContext,
    FederatedSimtestResult,
    run_federated_scenario,
)
from repro.simtest.federation.fuzzer import (
    FederatedBatchReport,
    load_federated_reproducer,
    replay_federated_scenario,
    run_federated_batch,
    run_federated_seed,
)

__all__ = [
    "ClusterScenario",
    "FederatedGeneratorConfig",
    "FederatedScenario",
    "generate_federated_scenario",
    "FederatedSimtestContext",
    "FederatedSimtestResult",
    "run_federated_scenario",
    "FederatedBatchReport",
    "run_federated_batch",
    "run_federated_seed",
    "replay_federated_scenario",
    "load_federated_reproducer",
]
