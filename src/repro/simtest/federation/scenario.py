"""Seeded federated (multi-cluster) scenario model and generator.

A :class:`FederatedScenario` is the site-tier analogue of
:class:`~repro.simtest.scenario.Scenario`: pure, JSON-round-trippable
data describing a whole :class:`~repro.federation.FederatedSite` run —
2–4 clusters of mixed platforms, per-cluster job mixes and fault
campaigns, per-cluster share floors/ceilings, a site budget schedule,
and optional whole-cluster outage windows.

All randomness pulls from ``simtest/federation/*`` substreams rooted at
one integer seed, so federated seeds are stable against changes to the
single-cluster generator (and vice versa).

Outages are stored as ``(t, duration_s)`` windows per cluster and
materialised by :meth:`ClusterScenario.fault_plan` into simultaneous
crash events for every crashable rank (1..n-1) — rank 0 hosts the root
services and cannot crash, so "all crashable ranks down" is exactly the
whole-cluster-outage condition the site manager detects. A cluster
draws either outages or rank-level faults, never both, so restart
storms cannot double-crash a rank.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultEvent, FaultPlan
from repro.simkernel.rng import RandomStreams
from repro.simtest.scenario import (
    BUDGET_PER_NODE_RANGE_W,
    LASSEN_ONLY_APPS,
    PORTABLE_APPS,
    JobEntry,
)

#: Fraction of the equal per-cluster budget slice a generated floor may
#: claim — keeps Σ floors well under the site budget by construction.
MAX_FLOOR_FRACTION = 0.5


@dataclass(frozen=True)
class ClusterScenario:
    """One member cluster of a federated scenario."""

    name: str
    platform: str = "lassen"
    n_nodes: int = 4
    fanout: int = 2
    monitor_strategy: str = "fanout"
    policy: str = "proportional"
    static_node_cap_w: Optional[float] = 1950.0
    node_peak_w: float = 3050.0
    min_share_w: float = 0.0
    max_share_w: Optional[float] = None
    jobs: Tuple[JobEntry, ...] = ()
    fault_events: Tuple[FaultEvent, ...] = ()
    #: Whole-cluster outage windows: ``(t, duration_s)``; every
    #: crashable rank crashes at ``t`` and restarts after ``duration_s``.
    outages: Tuple[Tuple[float, float], ...] = ()

    def fault_plan(self) -> Optional[FaultPlan]:
        """Rank faults plus materialised outage windows, or None."""
        events: List[FaultEvent] = list(self.fault_events)
        for t, duration_s in self.outages:
            for rank in range(1, self.n_nodes):
                events.append(
                    FaultEvent(
                        t=float(t), kind="crash", rank=rank,
                        duration_s=float(duration_s),
                    )
                )
        if not events:
            return None
        events.sort(key=lambda ev: (ev.t, ev.rank, ev.kind))
        return FaultPlan(events=events)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "platform": self.platform,
            "n_nodes": self.n_nodes,
            "fanout": self.fanout,
            "monitor_strategy": self.monitor_strategy,
            "policy": self.policy,
            "static_node_cap_w": self.static_node_cap_w,
            "node_peak_w": self.node_peak_w,
            "min_share_w": self.min_share_w,
            "max_share_w": self.max_share_w,
            "jobs": [j.to_dict() for j in self.jobs],
            "fault_events": [asdict(ev) for ev in self.fault_events],
            "outages": [[t, d] for t, d in self.outages],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ClusterScenario":
        return cls(
            name=str(d["name"]),
            platform=str(d["platform"]),
            n_nodes=int(d["n_nodes"]),
            fanout=int(d.get("fanout", 2)),
            monitor_strategy=str(d.get("monitor_strategy", "fanout")),
            policy=str(d.get("policy", "proportional")),
            static_node_cap_w=(
                None
                if d.get("static_node_cap_w") is None
                else float(d["static_node_cap_w"])
            ),
            node_peak_w=float(d.get("node_peak_w", 3050.0)),
            min_share_w=float(d.get("min_share_w", 0.0)),
            max_share_w=(
                None if d.get("max_share_w") is None else float(d["max_share_w"])
            ),
            jobs=tuple(JobEntry.from_dict(j) for j in d.get("jobs", [])),
            fault_events=tuple(
                FaultEvent(
                    t=float(ev["t"]),
                    kind=str(ev["kind"]),
                    rank=int(ev["rank"]),
                    duration_s=float(ev.get("duration_s", 0.0)),
                )
                for ev in d.get("fault_events", [])
            ),
            outages=tuple(
                (float(t), float(dur)) for t, dur in d.get("outages", [])
            ),
        )


@dataclass(frozen=True)
class FederatedScenario:
    """A complete, replayable site-tier simulation-test scenario."""

    seed: int
    site_budget_w: float
    rebalance_epoch_s: float = 10.0
    clusters: Tuple[ClusterScenario, ...] = ()
    #: (t, new_site_budget_w) retuning steps, sorted by t.
    site_budget_schedule: Tuple[Tuple[float, float], ...] = ()
    drain_s: float = 4.0
    #: Also run the sharded engine (:mod:`repro.federation.sharded`,
    #: inline backend) and require its site digest to equal the
    #: single-engine run's. The generator only sets this on fault-free
    #: scenarios at small N, where the no-collision contract holds by
    #: construction.
    sharded: bool = False

    def describe(self) -> str:
        parts = ", ".join(
            f"{c.name}={c.platform}x{c.n_nodes}"
            f"{'/out' if c.outages else ''}{'/flt' if c.fault_events else ''}"
            for c in self.clusters
        )
        return (
            f"seed={self.seed} site={self.site_budget_w:.0f}W "
            f"epoch={self.rebalance_epoch_s:g}s [{parts}] "
            f"retunes={len(self.site_budget_schedule)}"
            f"{' sharded' if self.sharded else ''}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "site_budget_w": self.site_budget_w,
            "rebalance_epoch_s": self.rebalance_epoch_s,
            "clusters": [c.to_dict() for c in self.clusters],
            "site_budget_schedule": [[t, w] for t, w in self.site_budget_schedule],
            "drain_s": self.drain_s,
            "sharded": self.sharded,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FederatedScenario":
        return cls(
            seed=int(d["seed"]),
            site_budget_w=float(d["site_budget_w"]),
            rebalance_epoch_s=float(d.get("rebalance_epoch_s", 10.0)),
            clusters=tuple(
                ClusterScenario.from_dict(c) for c in d.get("clusters", [])
            ),
            site_budget_schedule=tuple(
                (float(t), float(w)) for t, w in d.get("site_budget_schedule", [])
            ),
            drain_s=float(d.get("drain_s", 4.0)),
            sharded=bool(d.get("sharded", False)),
        )


@dataclass(frozen=True)
class FederatedGeneratorConfig:
    """Bounds for :func:`generate_federated_scenario`.

    Defaults keep a federated run a few times the cost of a
    single-cluster one, so ``repro federate --seeds 100`` stays an
    interactive command.
    """

    min_clusters: int = 2
    max_clusters: int = 4
    min_nodes: int = 3
    max_nodes: int = 8
    min_jobs: int = 1
    max_jobs: int = 3
    max_work_scale: float = 1.5
    max_submit_spread_s: float = 30.0
    platforms: Tuple[str, ...] = ("lassen", "tioga")
    policies: Tuple[str, ...] = ("proportional", "fpp")
    strategies: Tuple[str, ...] = ("fanout", "tree")
    fanouts: Tuple[int, ...] = (2, 3)
    epochs_s: Tuple[float, ...] = (5.0, 10.0, 20.0)
    #: Probability a cluster gets a non-zero share floor / a ceiling.
    p_floor: float = 0.3
    p_ceiling: float = 0.3
    #: Probability a cluster suffers a whole-cluster outage window.
    p_outage: float = 0.35
    #: Probability a cluster (without an outage) gets rank-level faults.
    p_faults: float = 0.4
    max_crashes: int = 2
    max_hangs: int = 1
    #: Probability of a mid-run site budget retune.
    p_site_retune: float = 0.4
    #: Probability a *fault-free* scenario also runs the sharded engine
    #: and cross-checks its site digest against the single-engine run.
    p_sharded: float = 0.3
    #: Sharded cross-check ceiling: total nodes across the site. The
    #: sharded run doubles the scenario's cost, so keep it to small N.
    max_sharded_total_nodes: int = 24


def generate_federated_scenario(
    seed: int, cfg: Optional[FederatedGeneratorConfig] = None
) -> FederatedScenario:
    """Draw one federated scenario from ``seed`` (pure).

    Substreams: ``simtest/federation/topology`` (cluster count, shapes),
    ``simtest/federation/jobs``, ``simtest/federation/budget`` (site
    budget, floors, ceilings, retunes), ``simtest/federation/faults``
    and ``simtest/federation/outages`` — each dimension isolated so new
    knobs never perturb the others.
    """
    cfg = cfg or FederatedGeneratorConfig()
    streams = RandomStreams(seed=seed)
    topo = streams.get("simtest/federation/topology")
    jobs_rng = streams.get("simtest/federation/jobs")
    budget_rng = streams.get("simtest/federation/budget")
    faults_rng = streams.get("simtest/federation/faults")
    outages_rng = streams.get("simtest/federation/outages")
    # Own substream, same stability contract as the other dimensions.
    sharded_rng = streams.get("simtest/federation/sharded")

    # Topology -----------------------------------------------------------
    n_clusters = int(topo.integers(cfg.min_clusters, cfg.max_clusters + 1))
    shapes = []
    total_nodes = 0
    for i in range(n_clusters):
        n_nodes = int(topo.integers(cfg.min_nodes, cfg.max_nodes + 1))
        platform = cfg.platforms[int(topo.integers(len(cfg.platforms)))]
        fanout = int(cfg.fanouts[int(topo.integers(len(cfg.fanouts)))])
        strategy = cfg.strategies[int(topo.integers(len(cfg.strategies)))]
        policy = cfg.policies[int(topo.integers(len(cfg.policies)))]
        shapes.append((f"c{i}", platform, n_nodes, fanout, strategy, policy))
        total_nodes += n_nodes
    epoch_s = float(cfg.epochs_s[int(topo.integers(len(cfg.epochs_s)))])

    # Site budget + per-cluster floors/ceilings --------------------------
    lo, hi = BUDGET_PER_NODE_RANGE_W
    per_node = lo + float(budget_rng.random()) * (hi - lo)
    site_budget_w = round(per_node * total_nodes, 1)
    slice_w = site_budget_w / n_clusters
    bounds: List[Tuple[float, Optional[float]]] = []
    for _ in range(n_clusters):
        floor = 0.0
        if float(budget_rng.random()) < cfg.p_floor:
            floor = round(
                float(budget_rng.random()) * MAX_FLOOR_FRACTION * slice_w, 1
            )
        ceiling: Optional[float] = None
        if float(budget_rng.random()) < cfg.p_ceiling:
            # Always above the floor and roomy enough not to bind every
            # cluster at once (Σ ceilings can still bind — that's the
            # case site_allocation_total_w covers).
            ceiling = round(floor + slice_w * (0.8 + float(budget_rng.random())), 1)
        bounds.append((floor, ceiling))

    # Site budget schedule: retunes stay above Σ floors by construction.
    total_floor = sum(f for f, _ in bounds)
    site_budget_schedule: Tuple[Tuple[float, float], ...] = ()
    if float(budget_rng.random()) < cfg.p_site_retune:
        steps = []
        for _ in range(int(budget_rng.integers(1, 3))):
            t = round(10.0 + float(budget_rng.random()) * 80.0, 3)
            per_node = lo + float(budget_rng.random()) * (hi - lo)
            new_w = max(round(per_node * total_nodes, 1), round(total_floor + 1.0, 1))
            steps.append((t, new_w))
        site_budget_schedule = tuple(sorted(steps))

    # Per-cluster job mixes and fault campaigns --------------------------
    clusters: List[ClusterScenario] = []
    for i, (name, platform, n_nodes, fanout, strategy, policy) in enumerate(shapes):
        apps = list(PORTABLE_APPS)
        if platform == "lassen":
            apps += list(LASSEN_ONLY_APPS)
        n_jobs = int(jobs_rng.integers(cfg.min_jobs, cfg.max_jobs + 1))
        jobs: List[JobEntry] = []
        for _ in range(n_jobs):
            app = apps[int(jobs_rng.integers(len(apps)))]
            nnodes = int(jobs_rng.integers(1, n_nodes + 1))
            work_scale = round(
                0.5 + float(jobs_rng.random()) * (cfg.max_work_scale - 0.5), 3
            )
            submit_t = round(float(jobs_rng.random()) * cfg.max_submit_spread_s, 3)
            jobs.append(
                JobEntry(
                    app=app, nnodes=nnodes,
                    work_scale=work_scale, submit_t=submit_t,
                )
            )
        jobs.sort(key=lambda j: (j.submit_t, j.app, j.nnodes))

        outages: Tuple[Tuple[float, float], ...] = ()
        fault_events: Tuple[FaultEvent, ...] = ()
        if n_nodes >= 2 and float(outages_rng.random()) < cfg.p_outage:
            t = round(10.0 + float(outages_rng.random()) * 60.0, 3)
            duration_s = round(15.0 + float(outages_rng.random()) * 30.0, 3)
            outages = ((t, duration_s),)
        elif n_nodes >= 2 and float(faults_rng.random()) < cfg.p_faults:
            plan = FaultPlan.generate(
                faults_rng,
                n_ranks=n_nodes,
                n_crashes=int(faults_rng.integers(0, cfg.max_crashes + 1)),
                n_hangs=int(faults_rng.integers(0, cfg.max_hangs + 1)),
                t_window=(10.0, 90.0),
                crash_duration_s=float(faults_rng.choice([0.0, 20.0, 40.0])),
                hang_duration_s=round(4.0 + float(faults_rng.random()) * 12.0, 3),
            )
            fault_events = tuple(plan.events)

        floor, ceiling = bounds[i]
        clusters.append(
            ClusterScenario(
                name=name,
                platform=platform,
                n_nodes=n_nodes,
                fanout=fanout,
                monitor_strategy=strategy,
                policy=policy,
                static_node_cap_w=1950.0 if platform == "lassen" else None,
                min_share_w=floor,
                max_share_w=ceiling,
                jobs=tuple(jobs),
                fault_events=fault_events,
                outages=outages,
            )
        )

    # Sharded cross-check: only fault-free scenarios at small N — the
    # sharded engine's no-collision contract covers transition-free
    # runs unconditionally, and the second run doubles the cost.
    want_sharded = float(sharded_rng.random()) < cfg.p_sharded
    sharded = (
        want_sharded
        and total_nodes <= cfg.max_sharded_total_nodes
        and not any(c.fault_events or c.outages for c in clusters)
    )

    return FederatedScenario(
        seed=seed,
        site_budget_w=site_budget_w,
        rebalance_epoch_s=epoch_s,
        clusters=tuple(clusters),
        site_budget_schedule=site_budget_schedule,
        sharded=sharded,
    )
