"""Batch driver for the federated simtest tier.

The engine behind ``repro federate --seeds N`` and the ``federation``
pytest marker. Seeds are fully independent (own scenario, own site, own
checker instances). A violating seed's scenario is written out verbatim
as a JSON reproducer artifact — federated scenarios are already small
(2–4 clusters), so replaying the artifact with
:func:`replay_federated_scenario` is cheap without a shrink pass.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.simtest.federation.harness import (
    FederatedSimtestResult,
    run_federated_scenario,
)
from repro.simtest.federation.scenario import (
    FederatedGeneratorConfig,
    FederatedScenario,
    generate_federated_scenario,
)
from repro.simtest.invariants import site_checkers


def run_federated_seed(
    seed: int,
    config: Optional[FederatedGeneratorConfig] = None,
) -> FederatedSimtestResult:
    """Generate and run the federated scenario for one seed."""
    scenario = generate_federated_scenario(seed, config)
    return run_federated_scenario(scenario, checkers=site_checkers())


@dataclass
class FederatedBatchReport:
    """Aggregate outcome of a federated fuzz batch."""

    seeds: List[int] = field(default_factory=list)
    results: List[FederatedSimtestResult] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[FederatedSimtestResult]:
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        n_fail = len(self.failures)
        lines = [
            f"federate: {len(self.results)} scenario(s), "
            f"{len(self.results) - n_fail} ok, {n_fail} violating"
        ]
        for r in self.failures:
            lines.append("  " + r.summary())
        for path in self.artifacts:
            lines.append(f"  reproducer: {path}")
        return "\n".join(lines)


def run_federated_batch(
    seeds: Sequence[int],
    config: Optional[FederatedGeneratorConfig] = None,
    artifact_dir: Optional[str] = None,
    progress: Optional[Callable[[FederatedSimtestResult], None]] = None,
) -> FederatedBatchReport:
    """Run every seed; write scenario reproducers for failures."""
    report = FederatedBatchReport()
    for seed in seeds:
        scenario = generate_federated_scenario(seed, config)
        result = run_federated_scenario(scenario, checkers=site_checkers())
        report.seeds.append(seed)
        report.results.append(result)
        if progress is not None:
            progress(result)
        if result.ok:
            continue
        if artifact_dir is not None:
            os.makedirs(artifact_dir, exist_ok=True)
            path = os.path.join(
                artifact_dir,
                f"federate-seed{seed}-{result.violations[0].invariant}.json",
            )
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(
                    {
                        "scenario": scenario.to_dict(),
                        "violations": [v.to_dict() for v in result.violations],
                        "digest": result.digest,
                    },
                    fh,
                    indent=2,
                    sort_keys=True,
                )
            report.artifacts.append(path)
    return report


def replay_federated_scenario(scenario: FederatedScenario) -> FederatedSimtestResult:
    """Re-run a reproducer scenario with the default site checkers."""
    return run_federated_scenario(scenario, checkers=site_checkers())


def load_federated_reproducer(path: str) -> FederatedScenario:
    """Load the scenario out of a reproducer artifact written by
    :func:`run_federated_batch`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    return FederatedScenario.from_dict(payload["scenario"])
