"""repro.simtest — deterministic simulation testing.

The paper claims the framework is *production-grade*: it must survive
arbitrary job mixes, budget changes and node failures, not just the
hand-written scenarios the rest of the suite pins. This package
explores that state space automatically, in the style of the
FoundationDB / TigerBeetle simulation-testing harnesses:

* :mod:`~repro.simtest.scenario` — a seeded **scenario generator**
  composing random topologies, job arrival mixes from the application
  registry, budget schedules, policy assignments and fault plans. All
  randomness comes from ``simkernel.rng`` substreams, so one integer
  seed replays the whole scenario byte for byte.
* :mod:`~repro.simtest.invariants` — pluggable **invariant checkers**
  evaluated on a periodic in-simulation tick and at end of run: the
  paper's implicit safety properties (budget never exceeded, equal
  split exact, caps inside the device range, ring-buffer timestamps
  monotonic, no orphaned shares after node death, telemetry counters
  never decreasing) as machine-checked predicates.
* :mod:`~repro.simtest.harness` — runs one scenario under the checkers
  and produces a :class:`~repro.simtest.harness.SimtestResult` with a
  replayable digest.
* :mod:`~repro.simtest.shrink` — on violation, bisects the scenario
  (fewer jobs → fewer faults → smaller cluster → shorter horizon) to a
  minimal reproducer and emits it as a runnable JSON artifact.
* :mod:`~repro.simtest.fuzzer` — the ``repro simtest --seeds N`` batch
  driver; also behind the ``simtest`` pytest marker.

See docs/testing.md for the workflow (including how to replay a seed).
"""

from __future__ import annotations

from repro.simtest.scenario import (
    GeneratorConfig,
    JobEntry,
    Scenario,
    generate_scenario,
)
from repro.simtest.invariants import (
    InvariantChecker,
    Violation,
    default_checkers,
    site_checkers,
)
from repro.simtest.harness import SimtestResult, run_scenario
from repro.simtest.shrink import (
    load_reproducer,
    shrink_scenario,
    write_reproducer,
)
from repro.simtest.fuzzer import BatchReport, run_batch

__all__ = [
    "Scenario",
    "JobEntry",
    "GeneratorConfig",
    "generate_scenario",
    "InvariantChecker",
    "Violation",
    "default_checkers",
    "SimtestResult",
    "run_scenario",
    "shrink_scenario",
    "write_reproducer",
    "load_reproducer",
    "BatchReport",
    "run_batch",
    "site_checkers",
]
