"""Runtime invariant checkers.

Each checker is a pure observer over a running
:class:`~repro.cluster.PowerManagedCluster`: it reads manager / monitor
/ telemetry state on every harness tick (and once at end of run) and
reports :class:`Violation` records. Checkers never mutate model state,
draw randomness or send messages, so attaching them cannot change what
the simulation does — only whether we notice it misbehaving.

The invariants encode the paper's implicit safety properties
(PAPER.md §III-B / §IV):

* ``budget``      — Σ job power limits never exceeds the cluster budget;
* ``share_split`` — a job's equal split is exact: node_limit × n_ranks
  == job_limit, and no share is negative;
* ``cap_range``   — every installed device cap lies inside the
  platform's capping range (e.g. the 100–300 W GPU window);
* ``buffer``      — ring-buffer timestamps are monotonic and occupancy
  bookkeeping is consistent;
* ``orphan_share``— a dead node's share does not survive ``node_died``
  (checked with a persistence grace, since the ``broker.down`` event
  takes one broadcast latency to reach the manager);
* ``lifecycle``   — power only flows to lifecycle-``available`` nodes:
  no job books a rank in ``maintenance``/``retired`` (exact — the
  drain is synchronous with the transition), and retired ranks' node
  managers release their limit within one settle tick;
* ``counters``    — telemetry counters never decrease;
* ``serving_view``— when a serving campaign is attached, the API's
  paginated job listing agrees exactly with the job-manager books and
  the manager-internal share split (no phantom, missing or duplicated
  jobs; limits match);
* ``engine``      — simulated time is monotonic and the event heap's
  live count stays sane;
* ``tenant_conservation`` — with a tenant mix attached, installed job
  limits equal the weighted water-fill recomputed independently from
  the coordinator's weights (and conserve the budget);
* ``tenant_no_starvation`` — every active job holds at least its
  fairshare floor ``min(peak·n, budget·wn·n/W)``; no tenant with
  demand is starved below entitlement;
* ``tenant_admission`` — the coordinator's admission log replays
  exactly through the pure ``decide()`` (same inputs → same decision),
  and at end of run the queue is drained and the admitted jobids are
  precisely the job-manager books;
* ``telemetry_rows`` (end of run) — client CSV rows are well-formed:
  component powers are non-negative and sum to at most the node power,
  and per-host timestamps are sorted and inside the job window.

Two additional checkers cover the federation (site) tier and run over a
:class:`~repro.simtest.federation.harness.FederatedSimtestContext`:

* ``site_budget``   — Σ budgets installed in live clusters never
  exceeds the site budget, and each rebalance conserves it exactly
  (to the binding ceiling total);
* ``floor_ceiling`` — no live cluster is ever capped below its min
  share floor or granted above its max ceiling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, TYPE_CHECKING

from repro.lifecycle.machine import MAINTENANCE, RETIRED

if TYPE_CHECKING:  # pragma: no cover
    from repro.simtest.harness import SimtestContext
    from repro.simtest.federation.harness import FederatedSimtestContext

#: Relative tolerance for float share arithmetic.
REL_EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant breach observed during a run."""

    invariant: str
    t: float
    message: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "t": self.t,
            "message": self.message,
            "details": self.details,
        }


class InvariantChecker:
    """Base class: override :meth:`check` (per tick) and/or :meth:`at_end`."""

    #: Stable identifier; violations carry it and the shrinker matches on it.
    name = "invariant"

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        return []

    def at_end(self, ctx: "SimtestContext") -> List[Violation]:
        return []

    # Helper ------------------------------------------------------------
    def violation(self, ctx: "SimtestContext", message: str, **details: Any) -> Violation:
        return Violation(
            invariant=self.name, t=ctx.sim.now, message=message, details=details
        )


class ShareSplitChecker(InvariantChecker):
    """Equal split is exact and shares are never negative."""

    name = "share_split"

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        out: List[Violation] = []
        manager = ctx.cluster.manager
        if manager is None:
            return out
        for jobid, state in manager.cluster.job_level.jobs.items():
            limit = state.job_limit_w
            if limit is None:
                continue
            if limit < 0:
                out.append(
                    self.violation(
                        ctx, f"job {jobid} has negative power limit {limit}",
                        jobid=jobid, job_limit_w=limit,
                    )
                )
                continue
            node_limit = state.node_limit_w
            if node_limit is None or node_limit < 0:
                out.append(
                    self.violation(
                        ctx, f"job {jobid} has negative node share {node_limit}",
                        jobid=jobid, node_limit_w=node_limit,
                    )
                )
                continue
            recombined = node_limit * len(state.ranks)
            if abs(recombined - limit) > REL_EPS * max(1.0, abs(limit)):
                out.append(
                    self.violation(
                        ctx,
                        f"job {jobid}: node share x ranks = {recombined:.6f} W "
                        f"!= job limit {limit:.6f} W",
                        jobid=jobid,
                        n_ranks=len(state.ranks),
                        node_limit_w=node_limit,
                        job_limit_w=limit,
                    )
                )
        return out


class BudgetChecker(InvariantChecker):
    """Σ job limits ≤ cluster budget (minus any idle-node reserve)."""

    name = "budget"

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        manager = ctx.cluster.manager
        if manager is None:
            return []
        root = manager.cluster
        cfg = root.config
        if cfg.global_cap_w is None or cfg.policy == "static":
            return []
        total = 0.0
        any_limit = False
        for state in root.job_level.jobs.values():
            if state.job_limit_w is not None:
                any_limit = True
                total += state.job_limit_w
        if not any_limit:
            return []
        budget = cfg.global_cap_w
        if cfg.account_idle_nodes:
            idle = max(0, root.broker.overlay.size - root.job_level.active_node_count())
            budget = max(0.0, budget - idle * cfg.idle_node_w)
        if total > budget * (1.0 + REL_EPS) + REL_EPS:
            return [
                self.violation(
                    ctx,
                    f"sum of job limits {total:.3f} W exceeds budget {budget:.3f} W",
                    sum_job_limits_w=total,
                    budget_w=budget,
                    global_cap_w=cfg.global_cap_w,
                    jobs={
                        str(j): s.job_limit_w for j, s in root.job_level.jobs.items()
                    },
                )
            ]
        return []


class CapRangeChecker(InvariantChecker):
    """Installed device caps stay inside the platform capping range."""

    name = "cap_range"

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        out: List[Violation] = []
        manager = ctx.cluster.manager
        if manager is None:
            return out
        for nm in manager.node_managers:
            broker = nm.broker
            if nm.name not in broker.modules or broker.modules[nm.name] is not nm:
                continue  # crashed / replaced manager: nothing installed
            lo, hi = nm.gpu_cap_range
            for i, cap in enumerate(nm._last_gpu_caps):
                if cap is None:
                    continue
                if cap < lo - REL_EPS or cap > hi + REL_EPS:
                    out.append(
                        self.violation(
                            ctx,
                            f"rank {broker.rank} gpu{i} cap {cap:.2f} W outside "
                            f"[{lo:.0f}, {hi:.0f}] W",
                            rank=broker.rank, gpu=i, cap_w=cap, lo_w=lo, hi_w=hi,
                        )
                    )
            slo, shi = nm.socket_cap_range
            for i, cap in enumerate(nm._last_socket_caps):
                if cap is None:
                    continue
                if cap < slo - REL_EPS or cap > shi + REL_EPS:
                    out.append(
                        self.violation(
                            ctx,
                            f"rank {broker.rank} socket{i} cap {cap:.2f} W outside "
                            f"[{slo:.0f}, {shi:.0f}] W",
                            rank=broker.rank, socket=i, cap_w=cap, lo_w=slo, hi_w=shi,
                        )
                    )
            if nm.node_limit_w is not None and nm.node_limit_w <= 0:
                out.append(
                    self.violation(
                        ctx,
                        f"rank {broker.rank} holds non-positive node limit "
                        f"{nm.node_limit_w}",
                        rank=broker.rank, node_limit_w=nm.node_limit_w,
                    )
                )
        return out


class BufferChecker(InvariantChecker):
    """Ring buffers: monotonic timestamps, consistent occupancy math."""

    name = "buffer"

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        out: List[Violation] = []
        monitor = ctx.cluster.monitor
        if monitor is None:
            return out
        for agent in monitor.node_agents:
            broker = agent.broker
            if agent.name not in broker.modules or broker.modules[agent.name] is not agent:
                continue
            buf = agent.buffer
            n = len(buf)
            if n > buf.capacity:
                out.append(
                    self.violation(
                        ctx,
                        f"rank {broker.rank} buffer holds {n} > capacity "
                        f"{buf.capacity}",
                        rank=broker.rank, len=n, capacity=buf.capacity,
                    )
                )
            if buf.total_appended < n or buf.dropped < 0:
                out.append(
                    self.violation(
                        ctx,
                        f"rank {broker.rank} buffer accounting inconsistent "
                        f"(appended={buf.total_appended}, retained={n})",
                        rank=broker.rank, appended=buf.total_appended, retained=n,
                    )
                )
            last = -math.inf
            for ts, _sample in buf.snapshot():
                if ts < last:
                    out.append(
                        self.violation(
                            ctx,
                            f"rank {broker.rank} buffer timestamps not "
                            f"monotonic ({ts} after {last})",
                            rank=broker.rank, ts=ts, prev=last,
                        )
                    )
                    break
                last = ts
        return out


class OrphanShareChecker(InvariantChecker):
    """Dead ranks must leave every job's share within one settle tick.

    The crash → ``broker.down`` event → ``node_died`` chain crosses the
    TBON (milliseconds of simulated latency), so a dead rank may
    legitimately appear in job state for an instant. A rank that is
    still booked on the *second* consecutive tick has genuinely leaked.
    """

    name = "orphan_share"

    def __init__(self) -> None:
        self._suspect: Dict[int, int] = {}  # rank -> first-seen tick index

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        manager = ctx.cluster.manager
        if manager is None:
            return []
        down = ctx.cluster.instance.down_ranks
        booked: Dict[int, List[int]] = {}
        for jobid, state in manager.cluster.job_level.jobs.items():
            for rank in state.ranks:
                if rank in down:
                    booked.setdefault(rank, []).append(jobid)
        out: List[Violation] = []
        for rank, jobids in booked.items():
            first = self._suspect.setdefault(rank, ctx.tick_index)
            if ctx.tick_index > first:
                out.append(
                    self.violation(
                        ctx,
                        f"dead rank {rank} still holds a share in jobs "
                        f"{jobids} one settle tick after going down",
                        rank=rank, jobs=jobids,
                    )
                )
        for rank in list(self._suspect):
            if rank not in booked:
                del self._suspect[rank]
        return out


class LifecycleChecker(InvariantChecker):
    """Power shares only flow to lifecycle-``available`` nodes.

    The booking check is exact (no settle grace): the cluster manager
    transitions lifecycle state and drains the books in the *same*
    event, so a booked rank in ``maintenance``/``retired`` is a bug at
    the very tick it appears. The retired-cap check allows one settle
    tick, because the drain's departure RPC crosses the TBON before the
    node manager releases its limit. ``degraded`` is exempt from the
    booking check here; the orphan-share checker owns that transient.
    """

    name = "lifecycle"

    def __init__(self) -> None:
        self._capped: Dict[int, int] = {}  # retired rank -> first-seen tick

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        manager = ctx.cluster.manager
        if manager is None:
            return []
        lifecycle = getattr(manager.cluster, "lifecycle", None)
        if lifecycle is None:
            return []
        out: List[Violation] = []
        for jobid, state in manager.cluster.job_level.jobs.items():
            for rank in state.ranks:
                rank_state = lifecycle.state_of(rank)
                if rank_state in (MAINTENANCE, RETIRED):
                    out.append(
                        self.violation(
                            ctx,
                            f"job {jobid} books rank {rank} in lifecycle "
                            f"state {rank_state!r}",
                            jobid=jobid, rank=rank, state=rank_state,
                        )
                    )
        capped_now: set = set()
        for rank in lifecycle.in_state(RETIRED):
            broker = ctx.cluster.instance.brokers[rank]
            nm = broker.modules.get("power-manager")
            if nm is not None and getattr(nm, "node_limit_w", None) is not None:
                capped_now.add(rank)
                first = self._capped.setdefault(rank, ctx.tick_index)
                if ctx.tick_index > first:
                    out.append(
                        self.violation(
                            ctx,
                            f"retired rank {rank} still holds node limit "
                            f"{nm.node_limit_w} one settle tick after "
                            f"retirement",
                            rank=rank, node_limit_w=nm.node_limit_w,
                        )
                    )
        for rank in list(self._capped):
            if rank not in capped_now:
                del self._capped[rank]
        return out


class MonotonicCountersChecker(InvariantChecker):
    """Telemetry counters never decrease between ticks."""

    name = "counters"

    def __init__(self) -> None:
        self._last: Dict[Any, float] = {}

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        out: List[Violation] = []
        metrics = ctx.cluster.telemetry_hub.metrics
        for name in metrics.names():
            for series in metrics.series_for(name):
                if series.kind != "counter":
                    continue
                key = (name, tuple(sorted(series.labels.items())))
                value = series.value
                prev = self._last.get(key)
                if prev is not None and value < prev:
                    out.append(
                        self.violation(
                            ctx,
                            f"counter {name}{series.labels} decreased "
                            f"{prev} -> {value}",
                            counter=name, labels=series.labels,
                            prev=prev, value=value,
                        )
                    )
                self._last[key] = value
        return out


class EngineChecker(InvariantChecker):
    """Simulated time is monotonic; engine bookkeeping stays sane."""

    name = "engine"

    def __init__(self) -> None:
        self._last_now: Optional[float] = None
        self._last_processed = 0

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        out: List[Violation] = []
        sim = ctx.sim
        if self._last_now is not None and sim.now < self._last_now:
            out.append(
                self.violation(
                    ctx, f"time went backwards: {self._last_now} -> {sim.now}",
                    prev=self._last_now, now=sim.now,
                )
            )
        if sim.events_processed < self._last_processed:
            out.append(
                self.violation(
                    ctx, "events_processed decreased",
                    prev=self._last_processed, now=sim.events_processed,
                )
            )
        if sim.pending() < 0:
            out.append(
                self.violation(ctx, f"negative pending() = {sim.pending()}")
            )
        self._last_now = sim.now
        self._last_processed = sim.events_processed
        return out


class TelemetryRowsChecker(InvariantChecker):
    """End of run: fetched job CSVs are physically sensible."""

    name = "telemetry_rows"

    #: The variorum backends round every domain field to 3 decimals
    #: independently, so Σ components can exceed the rounded node power
    #: by a few mW. Real conservation bugs are watts, not milliwatts.
    QUANT_EPS_W = 0.05

    def at_end(self, ctx: "SimtestContext") -> List[Violation]:
        out: List[Violation] = []
        for jobid, data in ctx.job_telemetry.items():
            last_ts: Dict[str, float] = {}
            for row in data.rows:
                host = row["hostname"]
                comps = row["cpu_w"] + row["mem_w"] + row["gpu_w"]
                if min(row["cpu_w"], row["mem_w"], row["gpu_w"], row["node_w"]) < 0:
                    out.append(
                        self.violation(
                            ctx, f"job {jobid} {host}: negative power reading",
                            jobid=jobid, host=host, row=dict(row),
                        )
                    )
                elif comps > row["node_w"] * (1.0 + 1e-6) + self.QUANT_EPS_W:
                    out.append(
                        self.violation(
                            ctx,
                            f"job {jobid} {host}: components {comps:.3f} W exceed "
                            f"node power {row['node_w']:.3f} W",
                            jobid=jobid, host=host, components_w=comps,
                            node_w=row["node_w"],
                        )
                    )
                prev = last_ts.get(host, -math.inf)
                if row["timestamp"] < prev:
                    out.append(
                        self.violation(
                            ctx,
                            f"job {jobid} {host}: timestamps out of order",
                            jobid=jobid, host=host, ts=row["timestamp"], prev=prev,
                        )
                    )
                last_ts[host] = row["timestamp"]
        return out


class ServingViewChecker(InvariantChecker):
    """API job views agree with manager-internal books and shares.

    Active only when the harness attached a serving-tier
    :class:`~repro.serving.service.PowerService` to the context
    (``scenario.serving``); a no-op otherwise, so it can sit in the
    default set without cost. It pages through the detailed job listing
    with the scenario's ``page_limit`` and cross-checks every view
    against the job manager's books (id set, state, node counts, rank
    assignment) and the power manager's share split
    (``job_limit_w`` / ``node_limit_w``). Service reads never step the
    simulator, so the checker remains a pure observer.
    """

    name = "serving_view"

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        service = getattr(ctx, "service", None)
        if service is None:
            return []
        out: List[Violation] = []
        mix = getattr(ctx.scenario, "serving", None)
        limit = mix.page_limit if mix is not None else 100

        views: Dict[int, Dict[str, Any]] = {}
        offset = 0
        while True:
            resp = service.handle(
                "GET", "/v1/clusters/default/jobs",
                {"response_format": "detailed", "limit": limit,
                 "offset": offset},
            )
            if resp.status != 200:
                out.append(
                    self.violation(
                        ctx, f"job listing returned {resp.status}",
                        status=resp.status, body=resp.body,
                    )
                )
                return out
            for view in resp.body["jobs"]:
                jobid = view["jobid"]
                if jobid in views:
                    out.append(
                        self.violation(
                            ctx, f"job {jobid} appears on two pages",
                            jobid=jobid, offset=offset,
                        )
                    )
                views[jobid] = view
            if resp.body["next_offset"] is None:
                break
            offset = resp.body["next_offset"]

        books = ctx.cluster.instance.jobmanager.jobs
        if set(views) != set(books):
            out.append(
                self.violation(
                    ctx, "API job listing disagrees with job-manager books",
                    api_only=sorted(set(views) - set(books)),
                    books_only=sorted(set(books) - set(views)),
                )
            )
        manager = ctx.cluster.manager
        shares = manager.cluster.job_level.jobs if manager is not None else {}
        for jobid, view in views.items():
            record = books.get(jobid)
            if record is None:
                continue
            if view["state"] != record.state.value:
                out.append(
                    self.violation(
                        ctx,
                        f"job {jobid} API state {view['state']!r} != "
                        f"books state {record.state.value!r}",
                        jobid=jobid, api=view["state"],
                        books=record.state.value,
                    )
                )
            if view["nnodes"] != record.spec.nnodes \
                    or view["ranks"] != list(record.ranks):
                out.append(
                    self.violation(
                        ctx,
                        f"job {jobid} API placement disagrees with books",
                        jobid=jobid, api_nnodes=view["nnodes"],
                        api_ranks=view["ranks"],
                        books_nnodes=record.spec.nnodes,
                        books_ranks=list(record.ranks),
                    )
                )
            share = shares.get(jobid)
            expect_job = share.job_limit_w if share is not None else None
            expect_node = share.node_limit_w if share is not None else None
            if view["job_limit_w"] != expect_job \
                    or view["node_limit_w"] != expect_node:
                out.append(
                    self.violation(
                        ctx,
                        f"job {jobid} API limits "
                        f"({view['job_limit_w']}, {view['node_limit_w']}) != "
                        f"manager shares ({expect_job}, {expect_node})",
                        jobid=jobid,
                        api_job_limit_w=view["job_limit_w"],
                        api_node_limit_w=view["node_limit_w"],
                        manager_job_limit_w=expect_job,
                        manager_node_limit_w=expect_node,
                    )
                )
        return out


class TenantConservationChecker(InvariantChecker):
    """Installed job limits match the weighted water-fill, recomputed.

    Active only when the cluster carries a tenancy coordinator with the
    fairshare splitter installed; a no-op otherwise. The checker reruns
    :func:`~repro.tenancy.fairshare.split_budget_weighted` over the
    manager's live books and the coordinator's cached weights — the
    same pure inputs the manager's ``_recompute`` used — so any drift
    (a buggy splitter, a stale weight cache, a missed recompute) shows
    up as a per-job mismatch or a conservation breach.
    """

    name = "tenant_conservation"

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        coord = getattr(ctx.cluster, "tenancy", None)
        manager = ctx.cluster.manager
        if coord is None or manager is None:
            return []
        root = manager.cluster
        if root.share_splitter is None or root.config.policy == "static":
            return []
        if root.config.global_cap_w is None:
            return []
        if root.per_node_share_w() is None:
            return []  # no active nodes: limits are legitimately None
        from repro.tenancy.fairshare import split_budget_weighted

        job_nodes = {
            jobid: len(state.ranks)
            for jobid, state in root.job_level.jobs.items()
        }
        if not job_nodes:
            return []
        budget = root.effective_budget_w()
        expected = split_budget_weighted(
            budget, job_nodes, root.config.node_peak_w,
            coord.job_weights(job_nodes),
        )
        out: List[Violation] = []
        total = 0.0
        for jobid, state in root.job_level.jobs.items():
            limit = state.job_limit_w
            if limit is None:
                out.append(
                    self.violation(
                        ctx,
                        f"job {jobid} has no power limit under the "
                        f"fairshare split",
                        jobid=jobid,
                    )
                )
                continue
            total += limit
            want = expected[jobid]
            if abs(limit - want) > REL_EPS * max(1.0, abs(want)):
                out.append(
                    self.violation(
                        ctx,
                        f"job {jobid} limit {limit:.6f} W != weighted "
                        f"water-fill {want:.6f} W",
                        jobid=jobid, installed_w=limit, expected_w=want,
                        weights=coord.job_weights(job_nodes),
                    )
                )
        cap = root.config.node_peak_w * sum(job_nodes.values())
        conserve = min(float(budget), cap)
        if total > conserve * (1.0 + REL_EPS) + REL_EPS:
            out.append(
                self.violation(
                    ctx,
                    f"weighted limits total {total:.6f} W exceeds "
                    f"min(budget, peak demand) {conserve:.6f} W",
                    total_w=total, conserve_w=conserve, budget_w=budget,
                )
            )
        return out


class TenantFloorChecker(InvariantChecker):
    """No-starvation: every active job holds at least its fairshare floor.

    The floor is the first-round weighted proportional rate capped at
    peak (:func:`~repro.tenancy.fairshare.fair_floor_w`); the water-fill
    provably never allocates below it, so a breach means a tenant is
    being starved below entitlement.
    """

    name = "tenant_no_starvation"

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        coord = getattr(ctx.cluster, "tenancy", None)
        manager = ctx.cluster.manager
        if coord is None or manager is None:
            return []
        root = manager.cluster
        if root.share_splitter is None or root.config.policy == "static":
            return []
        if root.config.global_cap_w is None or root.per_node_share_w() is None:
            return []
        from repro.tenancy.fairshare import fair_floor_w

        job_nodes = {
            jobid: len(state.ranks)
            for jobid, state in root.job_level.jobs.items()
        }
        if not job_nodes:
            return []
        floors = fair_floor_w(
            root.effective_budget_w(), job_nodes, root.config.node_peak_w,
            coord.job_weights(job_nodes),
        )
        out: List[Violation] = []
        for jobid, state in root.job_level.jobs.items():
            limit = state.job_limit_w
            if limit is None:
                continue  # conservation checker reports the miss
            floor = floors[jobid]
            if limit < floor * (1.0 - REL_EPS) - REL_EPS:
                project = coord.project_of_job(jobid)
                out.append(
                    self.violation(
                        ctx,
                        f"job {jobid} (project {project}) granted "
                        f"{limit:.6f} W below its fairshare floor "
                        f"{floor:.6f} W",
                        jobid=jobid, project=project,
                        granted_w=limit, floor_w=floor,
                    )
                )
        return out


class TenantAdmissionChecker(InvariantChecker):
    """Admission decisions are a pure function of their logged inputs.

    Replays every new :class:`~repro.tenancy.coordinator.AdmissionRecord`
    through :func:`~repro.tenancy.admission.decide` and demands the full
    decision (action, code, demand, committed, capacity) comes back
    identical. At end of run the queue must be drained and the admitted
    jobids must be exactly the job-manager's books — nothing snuck past
    the gate, nothing admitted got lost.
    """

    name = "tenant_admission"

    def __init__(self) -> None:
        self._replayed = 0

    def check(self, ctx: "SimtestContext") -> List[Violation]:
        coord = getattr(ctx.cluster, "tenancy", None)
        if coord is None or not coord.admission_enabled:
            return []
        from repro.tenancy.admission import decide

        admission = coord.config.admission
        out: List[Violation] = []
        for record in coord.decisions[self._replayed:]:
            expect = decide(
                admission, record.nnodes, record.committed_w,
                record.queue_depth, known_tenant=record.known_tenant,
            )
            if expect.to_dict() != record.decision.to_dict():
                out.append(
                    self.violation(
                        ctx,
                        f"admission decision at t={record.t:.3f} for "
                        f"{record.user!r} does not replay: logged "
                        f"{record.decision.action}/{record.decision.code}, "
                        f"replayed {expect.action}/{expect.code}",
                        logged=record.decision.to_dict(),
                        replayed=expect.to_dict(),
                        inputs=record.to_dict(),
                    )
                )
        self._replayed = len(coord.decisions)
        return out

    def at_end(self, ctx: "SimtestContext") -> List[Violation]:
        coord = getattr(ctx.cluster, "tenancy", None)
        if coord is None or not coord.admission_enabled:
            return []
        out: List[Violation] = []
        if not coord.drained():
            out.append(
                self.violation(
                    ctx,
                    f"admission queue still holds {coord.queue_len} "
                    f"spec(s) at end of run",
                    queue_len=coord.queue_len,
                )
            )
        admitted = {
            r.jobid for r in coord.decisions
            if r.decision.action == "admit" and r.jobid is not None
        }
        books = set(ctx.cluster.instance.jobmanager.jobs)
        if admitted != books:
            out.append(
                self.violation(
                    ctx,
                    "admitted jobids disagree with job-manager books",
                    admitted_only=sorted(admitted - books),
                    books_only=sorted(books - admitted),
                )
            )
        return out


class SiteBudgetChecker(InvariantChecker):
    """Site budget conservation (the federation tier's core safety).

    At every tick, the budgets *installed* in live clusters' managers
    must sum to at most the site budget; and the site manager's own
    rebalance snapshot must sum exactly (REL_EPS) to
    :func:`~repro.federation.rebalance.site_allocation_total_w` — the
    site budget, or the binding total of the live ceilings. Installed
    configs are read back from each cluster manager rather than trusted
    from the site's bookkeeping, so a drifted install is a finding.
    """

    name = "site_budget"

    def check(self, ctx: "FederatedSimtestContext") -> List[Violation]:
        out: List[Violation] = []
        site = ctx.site
        installed = 0.0
        for name in site.live_clusters:
            manager = site.clusters[name].manager
            if manager is None:
                continue
            cap = manager.cluster.config.global_cap_w
            if cap is not None:
                installed += cap
        budget = site.site_budget_w
        if installed > budget * (1.0 + REL_EPS) + REL_EPS:
            out.append(
                self.violation(
                    ctx,
                    f"installed cluster budgets {installed:.3f} W exceed "
                    f"site budget {budget:.3f} W",
                    installed_w=installed, site_budget_w=budget,
                    shares=dict(site.assigned_shares),
                )
            )
        assigned = sum(site.assigned_shares.values())
        expected = site.expected_total_w
        if abs(assigned - expected) > REL_EPS * max(1.0, abs(expected)):
            out.append(
                self.violation(
                    ctx,
                    f"rebalance at t={site.last_rebalance_t:.3f} assigned "
                    f"{assigned:.6f} W, expected exactly {expected:.6f} W",
                    assigned_w=assigned, expected_w=expected,
                    shares=dict(site.assigned_shares),
                )
            )
        return out


class ClusterFloorChecker(InvariantChecker):
    """Floor/ceiling respect: no live cluster outside ``[min, max]``.

    Reads the installed ``global_cap_w`` back from each live cluster's
    manager and compares against that cluster's spec. Down clusters are
    exempt (their share is reclaimed to zero by design).
    """

    name = "floor_ceiling"

    def check(self, ctx: "FederatedSimtestContext") -> List[Violation]:
        out: List[Violation] = []
        site = ctx.site
        for name in site.live_clusters:
            spec = site.specs[name]
            manager = site.clusters[name].manager
            if manager is None:
                continue
            cap = manager.cluster.config.global_cap_w
            if cap is None:
                continue  # first rebalance not yet applied
            lo = spec.min_share_w
            if cap < lo * (1.0 - REL_EPS) - REL_EPS:
                out.append(
                    self.violation(
                        ctx,
                        f"cluster {name} capped at {cap:.3f} W below its "
                        f"floor {lo:.3f} W",
                        cluster=name, cap_w=cap, floor_w=lo,
                    )
                )
            hi = spec.max_share_w
            if hi is not None and cap > hi * (1.0 + REL_EPS) + REL_EPS:
                out.append(
                    self.violation(
                        ctx,
                        f"cluster {name} granted {cap:.3f} W above its "
                        f"ceiling {hi:.3f} W",
                        cluster=name, cap_w=cap, ceiling_w=hi,
                    )
                )
        return out


def site_checkers() -> List[InvariantChecker]:
    """Fresh instances of the federation-tier (site-level) checkers."""
    return [SiteBudgetChecker(), ClusterFloorChecker()]


def default_checkers() -> List[InvariantChecker]:
    """A fresh set of every built-in checker (stateful ones included)."""
    return [
        ShareSplitChecker(),
        BudgetChecker(),
        CapRangeChecker(),
        BufferChecker(),
        OrphanShareChecker(),
        LifecycleChecker(),
        MonotonicCountersChecker(),
        ServingViewChecker(),
        TenantConservationChecker(),
        TenantFloorChecker(),
        TenantAdmissionChecker(),
        EngineChecker(),
        TelemetryRowsChecker(),
    ]
