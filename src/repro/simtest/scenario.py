"""Seeded scenario model and generator.

A :class:`Scenario` is pure, JSON-round-trippable data: everything the
harness needs to build a :class:`~repro.cluster.PowerManagedCluster`,
submit a job mix, walk a budget schedule and inject faults. Scenarios
come from two places:

* :func:`generate_scenario` draws one from ``simkernel.rng`` substreams
  (``simtest/topology``, ``simtest/jobs``, ``simtest/budget``,
  ``simtest/faults``, ``simtest/columnar``, ``simtest/serving``,
  ``simtest/tenancy``) rooted at a single integer seed — the same seed always yields the same
  scenario, on any platform;
* :func:`Scenario.from_dict` reloads a shrunken reproducer artifact
  (see :mod:`repro.simtest.shrink`).

Generated scenarios deliberately stay inside the framework's supported
envelope (platforms with cappable GPUs, apps that run on the chosen
platform, rank-0 never crashed) — the fuzzer's job is to find bugs in
power management logic, not to rediscover documented input validation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.faults.plan import FaultEvent, FaultPlan, LinkFaults
from repro.simkernel.rng import RandomStreams

#: Apps safe on every generated platform. ``sw4lite`` is CUDA-only (it
#: raises on Tioga by design — the paper's Section V porting story) so
#: it is only eligible on lassen.
PORTABLE_APPS: Tuple[str, ...] = (
    "gemm",
    "lammps",
    "laghos",
    "nqueens",
    "quicksilver",
    # Policy-zoo addition: the checkpointing proxy, so generated
    # scenarios exercise the checkpoint-aware policy's window logic.
    "hacc",
)
LASSEN_ONLY_APPS: Tuple[str, ...] = ("sw4lite",)

#: Per-node budget span (W) the generator draws the global cap from.
#: Wide enough to cover "uncapped in practice" down to "heavily
#: constrained" — Table III's static-cap sweep spans a similar range.
BUDGET_PER_NODE_RANGE_W = (900.0, 3200.0)


@dataclass(frozen=True)
class JobEntry:
    """One job of the scenario's arrival mix."""

    app: str
    nnodes: int
    work_scale: float = 1.0
    submit_t: float = 0.0
    #: Submitting user for tenancy scenarios; None — every scenario
    #: without a tenant mix — submits anonymously, exactly as before.
    user: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        # Only present when set: job dicts feed the run digest, so an
        # always-there key would shift every historical digest.
        if self.user is None:
            del d["user"]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobEntry":
        return cls(
            app=str(d["app"]),
            nnodes=int(d["nnodes"]),
            work_scale=float(d.get("work_scale", 1.0)),
            submit_t=float(d.get("submit_t", 0.0)),
            user=(None if d.get("user") is None else str(d["user"])),
        )


@dataclass(frozen=True)
class ServingMix:
    """A seeded client mix injected through the serving API each tick.

    The harness stands up a :class:`~repro.serving.service.PowerService`
    over the scenario's cluster and fires ``requests_per_tick``
    read-only requests from ``clients`` simulated clients at every
    invariant tick — the production query-storm shape riding on top of
    an arbitrary fuzzed scenario. Reads are pure by the serving tier's
    contract, so a scenario's digest must be identical with or without
    its mix (pinned by test).
    """

    clients: int = 8
    requests_per_tick: int = 4
    #: Page size the serving-view checker lists jobs with (small on
    #: purpose: pagination boundaries are where view bugs live).
    page_limit: int = 3

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ServingMix":
        return cls(
            clients=int(d.get("clients", 8)),
            requests_per_tick=int(d.get("requests_per_tick", 4)),
            page_limit=int(d.get("page_limit", 3)),
        )


@dataclass(frozen=True)
class TenantMix:
    """A tenant population riding on a fuzzed scenario.

    The harness builds a :class:`~repro.tenancy.TenantDirectory` from
    ``projects``/``users``, attaches a
    :class:`~repro.tenancy.TenancyConfig` to the cluster, and (when
    ``admission`` is set) an :class:`~repro.tenancy.AdmissionConfig`
    sized from the scenario's ``global_cap_w`` — so the fairshare
    water-fill, the decaying ledger and the admit/queue/reject gate all
    run under the invariant checkers on arbitrary scenarios.
    """

    #: (project name, fairshare weight) pairs, all under one account.
    projects: Tuple[Tuple[str, float], ...] = ()
    #: (user, project) memberships; job entries name these users.
    users: Tuple[Tuple[str, str], ...] = ()
    half_life_s: float = 600.0
    usage_norm_ws: float = 500_000.0
    accounting_interval_s: float = 10.0
    #: Gate submissions through admission control (needs a capped
    #: scenario: the admission budget is the scenario's global cap).
    admission: bool = False
    oversubscription: float = 1.0
    admit_node_w: float = 500.0
    max_queue_depth: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "projects": [[name, w] for name, w in self.projects],
            "users": [[u, p] for u, p in self.users],
            "half_life_s": self.half_life_s,
            "usage_norm_ws": self.usage_norm_ws,
            "accounting_interval_s": self.accounting_interval_s,
            "admission": self.admission,
            "oversubscription": self.oversubscription,
            "admit_node_w": self.admit_node_w,
            "max_queue_depth": self.max_queue_depth,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TenantMix":
        return cls(
            projects=tuple((str(n), float(w)) for n, w in d.get("projects", [])),
            users=tuple((str(u), str(p)) for u, p in d.get("users", [])),
            half_life_s=float(d.get("half_life_s", 600.0)),
            usage_norm_ws=float(d.get("usage_norm_ws", 500_000.0)),
            accounting_interval_s=float(d.get("accounting_interval_s", 10.0)),
            admission=bool(d.get("admission", False)),
            oversubscription=float(d.get("oversubscription", 1.0)),
            admit_node_w=float(d.get("admit_node_w", 500.0)),
            max_queue_depth=(
                None if d.get("max_queue_depth") is None
                else int(d["max_queue_depth"])
            ),
        )


@dataclass(frozen=True)
class Scenario:
    """A complete, replayable simulation-test scenario."""

    seed: int
    platform: str = "lassen"
    n_nodes: int = 8
    fanout: int = 2
    monitor_strategy: str = "fanout"
    policy: str = "proportional"
    #: Cluster budget at t=0; None models an unconstrained system.
    global_cap_w: Optional[float] = None
    static_node_cap_w: Optional[float] = 1950.0
    account_idle_nodes: bool = False
    jobs: Tuple[JobEntry, ...] = ()
    #: (t, new_global_cap_w) retuning steps, sorted by t.
    budget_schedule: Tuple[Tuple[float, float], ...] = ()
    fault_events: Tuple[FaultEvent, ...] = ()
    link_faults: Optional[LinkFaults] = None
    #: Simulated seconds to keep running after the last job completes
    #: (lets telemetry windows close and restarts land).
    drain_s: float = 4.0
    #: Keep per-rank samples in the columnar store (:mod:`repro.columnar`)
    #: — the exascale hot path, contractually equivalent to the scalar
    #: one, so the invariant checkers fuzz it too.
    columnar: bool = False
    #: Drive a seeded serving-API client mix against the cluster while
    #: it runs (None: no serving tier attached).
    serving: Optional[ServingMix] = None
    #: Tenant population + fairshare/admission knobs (None: the
    #: anonymous-job configuration every pre-tenancy scenario ran).
    tenancy: Optional[TenantMix] = None

    # ------------------------------------------------------------------
    # Derived
    # ------------------------------------------------------------------
    def fault_plan(self) -> Optional[FaultPlan]:
        if not self.fault_events and self.link_faults is None:
            return None
        return FaultPlan(events=list(self.fault_events), link=self.link_faults)

    def describe(self) -> str:
        cap = "uncapped" if self.global_cap_w is None else f"{self.global_cap_w:.0f}W"
        return (
            f"seed={self.seed} {self.platform}x{self.n_nodes} fanout={self.fanout} "
            f"{self.monitor_strategy}/{self.policy} cap={cap} "
            f"jobs={len(self.jobs)} faults={len(self.fault_events)}"
            f"{'+link' if self.link_faults else ''} "
            f"budget_steps={len(self.budget_schedule)}"
            f"{' columnar' if self.columnar else ''}"
            f"{' serving' if self.serving is not None else ''}"
            f"{self._describe_tenancy()}"
        )

    def _describe_tenancy(self) -> str:
        if self.tenancy is None:
            return ""
        suffix = f" tenants={len(self.tenancy.projects)}p/{len(self.tenancy.users)}u"
        if self.tenancy.admission:
            suffix += "+admission"
        return suffix

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "seed": self.seed,
            "platform": self.platform,
            "n_nodes": self.n_nodes,
            "fanout": self.fanout,
            "monitor_strategy": self.monitor_strategy,
            "policy": self.policy,
            "global_cap_w": self.global_cap_w,
            "static_node_cap_w": self.static_node_cap_w,
            "account_idle_nodes": self.account_idle_nodes,
            "jobs": [j.to_dict() for j in self.jobs],
            "budget_schedule": [[t, w] for t, w in self.budget_schedule],
            "fault_events": [asdict(ev) for ev in self.fault_events],
            "link_faults": None,
            "drain_s": self.drain_s,
            "columnar": self.columnar,
        }
        if self.link_faults is not None:
            lf = asdict(self.link_faults)
            lf["ranks"] = sorted(self.link_faults.ranks) if self.link_faults.ranks else None
            if lf["t_end"] == float("inf"):
                lf["t_end"] = None  # JSON has no Infinity
            d["link_faults"] = lf
        # Only present when set: scenario dicts feed the run digest, so
        # a new always-there key would shift every historical digest.
        if self.serving is not None:
            d["serving"] = self.serving.to_dict()
        if self.tenancy is not None:
            d["tenancy"] = self.tenancy.to_dict()
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Scenario":
        link = None
        if d.get("link_faults") is not None:
            lf = dict(d["link_faults"])
            if lf.get("t_end") is None:
                lf["t_end"] = float("inf")
            if lf.get("ranks") is not None:
                lf["ranks"] = set(int(r) for r in lf["ranks"])
            link = LinkFaults(**lf)
        return cls(
            seed=int(d["seed"]),
            platform=str(d["platform"]),
            n_nodes=int(d["n_nodes"]),
            fanout=int(d["fanout"]),
            monitor_strategy=str(d["monitor_strategy"]),
            policy=str(d["policy"]),
            global_cap_w=(
                None if d.get("global_cap_w") is None else float(d["global_cap_w"])
            ),
            static_node_cap_w=(
                None
                if d.get("static_node_cap_w") is None
                else float(d["static_node_cap_w"])
            ),
            account_idle_nodes=bool(d.get("account_idle_nodes", False)),
            jobs=tuple(JobEntry.from_dict(j) for j in d.get("jobs", [])),
            budget_schedule=tuple(
                (float(t), float(w)) for t, w in d.get("budget_schedule", [])
            ),
            fault_events=tuple(
                FaultEvent(
                    t=float(ev["t"]),
                    kind=str(ev["kind"]),
                    rank=int(ev["rank"]),
                    duration_s=float(ev.get("duration_s", 0.0)),
                )
                for ev in d.get("fault_events", [])
            ),
            link_faults=link,
            drain_s=float(d.get("drain_s", 4.0)),
            columnar=bool(d.get("columnar", False)),
            serving=(
                None if d.get("serving") is None
                else ServingMix.from_dict(d["serving"])
            ),
            tenancy=(
                None if d.get("tenancy") is None
                else TenantMix.from_dict(d["tenancy"])
            ),
        )


@dataclass(frozen=True)
class GeneratorConfig:
    """Bounds for :func:`generate_scenario`.

    Defaults keep single runs cheap enough that ``--seeds 100`` is an
    interactive command; raise ``max_nodes`` toward the paper's 792 for
    overnight campaigns (the generator itself has no upper limit).
    """

    min_nodes: int = 4
    max_nodes: int = 24
    min_jobs: int = 1
    max_jobs: int = 5
    max_work_scale: float = 2.0
    max_submit_spread_s: float = 30.0
    platforms: Tuple[str, ...] = ("lassen", "tioga")
    policies: Tuple[str, ...] = (
        "static",
        "proportional",
        "fpp",
        # The safety-wrapped policy zoo — fuzzing them under the
        # invariant checkers is how the wrapper's guarantees stay
        # honest (see docs/policies.md).
        "pi",
        "ecoshift",
        "checkpoint",
    )
    strategies: Tuple[str, ...] = ("fanout", "tree")
    fanouts: Tuple[int, ...] = (2, 3, 4)
    #: Probability the cluster gets a finite power budget at all.
    p_capped: float = 0.8
    #: Probability of a mid-run budget retune (given a capped cluster).
    p_budget_step: float = 0.5
    #: Probability the scenario carries crash/hang faults.
    p_faults: float = 0.5
    #: Probability of a probabilistic link-fault window on top.
    p_link_faults: float = 0.2
    max_crashes: int = 2
    max_hangs: int = 1
    #: Probability the monitor keeps samples in the columnar store —
    #: often enough that the 100-seed batch fuzzes the exascale path.
    p_columnar: float = 0.25
    #: Probability the scenario carries a serving-API client mix (the
    #: query-storm campaign mode; see :class:`ServingMix`).
    p_serving: float = 0.2
    #: Probability the scenario carries a tenant mix (fairshare weights
    #: + usage accounting; admission too when the scenario is capped).
    p_tenancy: float = 0.25
    #: Probability a *tenanted, capped* scenario also gates submissions
    #: through admission control.
    p_admission: float = 0.5


def generate_scenario(seed: int, cfg: Optional[GeneratorConfig] = None) -> Scenario:
    """Draw one scenario from ``seed`` (pure: same seed → same scenario).

    Every dimension pulls from its own named substream, so e.g. adding
    a new fault knob never perturbs the topologies or job mixes other
    seeds produce — the same stability contract the simulator's own
    RNG layer gives calibrated experiments.
    """
    cfg = cfg or GeneratorConfig()
    streams = RandomStreams(seed=seed)
    topo = streams.get("simtest/topology")
    jobs_rng = streams.get("simtest/jobs")
    budget_rng = streams.get("simtest/budget")
    faults_rng = streams.get("simtest/faults")
    # Own substream: turning the columnar knob on or off never perturbs
    # the topology/job/fault draws existing seeds produce.
    columnar_rng = streams.get("simtest/columnar")
    # Likewise for the serving campaign mode.
    serving_rng = streams.get("simtest/serving")
    # And the tenant mix: turning p_tenancy up or down leaves every
    # other dimension of existing seeds untouched.
    tenancy_rng = streams.get("simtest/tenancy")

    # Topology -----------------------------------------------------------
    n_nodes = int(topo.integers(cfg.min_nodes, cfg.max_nodes + 1))
    platform = cfg.platforms[int(topo.integers(len(cfg.platforms)))]
    fanout = int(cfg.fanouts[int(topo.integers(len(cfg.fanouts)))])
    strategy = cfg.strategies[int(topo.integers(len(cfg.strategies)))]
    policy = cfg.policies[int(topo.integers(len(cfg.policies)))]

    # Job mix ------------------------------------------------------------
    apps = list(PORTABLE_APPS)
    if platform == "lassen":
        apps += list(LASSEN_ONLY_APPS)
    n_jobs = int(jobs_rng.integers(cfg.min_jobs, cfg.max_jobs + 1))
    jobs: List[JobEntry] = []
    for _ in range(n_jobs):
        app = apps[int(jobs_rng.integers(len(apps)))]
        nnodes = int(jobs_rng.integers(1, n_nodes + 1))
        work_scale = round(
            0.5 + float(jobs_rng.random()) * (cfg.max_work_scale - 0.5), 3
        )
        submit_t = round(float(jobs_rng.random()) * cfg.max_submit_spread_s, 3)
        jobs.append(
            JobEntry(app=app, nnodes=nnodes, work_scale=work_scale, submit_t=submit_t)
        )
    jobs.sort(key=lambda j: (j.submit_t, j.app, j.nnodes))

    # Budget + schedule --------------------------------------------------
    global_cap_w: Optional[float] = None
    budget_schedule: Tuple[Tuple[float, float], ...] = ()
    if float(budget_rng.random()) < cfg.p_capped:
        lo, hi = BUDGET_PER_NODE_RANGE_W
        per_node = lo + float(budget_rng.random()) * (hi - lo)
        global_cap_w = round(per_node * n_nodes, 1)
        if policy != "static" and float(budget_rng.random()) < cfg.p_budget_step:
            steps = []
            for _ in range(int(budget_rng.integers(1, 3))):
                t = round(10.0 + float(budget_rng.random()) * 80.0, 3)
                per_node = lo + float(budget_rng.random()) * (hi - lo)
                steps.append((t, round(per_node * n_nodes, 1)))
            budget_schedule = tuple(sorted(steps))

    # Faults -------------------------------------------------------------
    fault_events: Tuple[FaultEvent, ...] = ()
    link: Optional[LinkFaults] = None
    if n_nodes >= 2 and float(faults_rng.random()) < cfg.p_faults:
        plan = FaultPlan.generate(
            faults_rng,
            n_ranks=n_nodes,
            n_crashes=int(faults_rng.integers(0, cfg.max_crashes + 1)),
            n_hangs=int(faults_rng.integers(0, cfg.max_hangs + 1)),
            t_window=(10.0, 90.0),
            crash_duration_s=float(faults_rng.choice([0.0, 20.0, 40.0])),
            hang_duration_s=round(4.0 + float(faults_rng.random()) * 12.0, 3),
        )
        fault_events = tuple(plan.events)
    if float(faults_rng.random()) < cfg.p_link_faults:
        link = LinkFaults(
            drop_prob=round(float(faults_rng.random()) * 0.05, 4),
            delay_prob=round(float(faults_rng.random()) * 0.2, 4),
            delay_s=round(0.05 + float(faults_rng.random()) * 0.5, 4),
            t_start=10.0,
            t_end=80.0,
        )

    serving: Optional[ServingMix] = None
    if float(serving_rng.random()) < cfg.p_serving:
        serving = ServingMix(
            clients=int(serving_rng.integers(4, 33)),
            requests_per_tick=int(serving_rng.integers(2, 9)),
            page_limit=int(serving_rng.integers(2, 6)),
        )

    # Tenant mix ---------------------------------------------------------
    tenancy: Optional[TenantMix] = None
    if float(tenancy_rng.random()) < cfg.p_tenancy:
        n_projects = int(tenancy_rng.integers(2, 5))
        projects = tuple(
            (f"proj{i}", float(tenancy_rng.choice([0.5, 1.0, 2.0, 4.0])))
            for i in range(n_projects)
        )
        users: List[Tuple[str, str]] = []
        for i in range(n_projects):
            for k in range(int(tenancy_rng.integers(1, 3))):
                users.append((f"u{i}_{k}", f"proj{i}"))
        admission = False
        oversubscription, admit_node_w = 1.0, 500.0
        max_queue_depth: Optional[int] = None
        if global_cap_w is not None and \
                float(tenancy_rng.random()) < cfg.p_admission:
            # Reservation sizes chosen so admission actually bites
            # against BUDGET_PER_NODE_RANGE_W draws (500 W rarely,
            # 3050 W often).
            admission = True
            admit_node_w = float(tenancy_rng.choice([500.0, 1500.0, 3050.0]))
            oversubscription = float(tenancy_rng.choice([1.0, 1.25]))
            max_queue_depth = (None, 2, 4)[int(tenancy_rng.integers(3))]
        tenancy = TenantMix(
            projects=projects,
            users=tuple(users),
            half_life_s=float(tenancy_rng.choice([120.0, 600.0])),
            accounting_interval_s=float(tenancy_rng.choice([5.0, 10.0])),
            admission=admission,
            oversubscription=oversubscription,
            admit_node_w=admit_node_w,
            max_queue_depth=max_queue_depth,
        )
        # Every job submits as one of the mix's users (drawn from the
        # tenancy substream, after the sort: the underlying job draws
        # are byte-identical to the tenancy-off generation).
        jobs = [
            replace(j, user=users[int(tenancy_rng.integers(len(users)))][0])
            for j in jobs
        ]

    return Scenario(
        seed=seed,
        platform=platform,
        n_nodes=n_nodes,
        fanout=fanout,
        monitor_strategy=strategy,
        policy=policy,
        global_cap_w=global_cap_w,
        static_node_cap_w=1950.0 if platform == "lassen" else None,
        jobs=tuple(jobs),
        budget_schedule=budget_schedule,
        fault_events=fault_events,
        link_faults=link,
        columnar=float(columnar_rng.random()) < cfg.p_columnar,
        serving=serving,
        tenancy=tenancy,
    )
