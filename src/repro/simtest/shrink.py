"""Failure shrinking: violation → minimal runnable reproducer.

When a fuzzed scenario violates an invariant, replaying the full thing
(dozens of nodes, five jobs, a fault campaign, budget retunes) is a
miserable debugging artifact. :func:`shrink_scenario` greedily bisects
the scenario while preserving *the same invariant violation*:

1. **fewer jobs** — drop jobs one at a time while the violation holds;
2. **fewer faults** — drop fault events, then the link-fault window,
   then budget retunes;
3. **smaller cluster** — halve ``n_nodes`` (clamping job widths and
   discarding faults aimed at amputated ranks) down to a floor;
4. **shorter horizon** — zero the submit spread, shrink work scales
   and the drain window;
5. **simpler tenancy** — drop the tenant mix entirely (and the job
   users with it), else just switch admission control off.

Passes repeat until a full sweep removes nothing (a fixpoint) or the
run budget is exhausted. The result is emitted as a JSON artifact that
``repro simtest --replay`` (or :func:`load_reproducer` +
:func:`~repro.simtest.harness.run_scenario`) turns back into the
failure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from repro.simtest.harness import SimtestResult, run_scenario
from repro.simtest.invariants import InvariantChecker, Violation, default_checkers
from repro.simtest.scenario import JobEntry, Scenario

ARTIFACT_VERSION = 1

#: Default cap on shrink-time scenario executions. Each candidate run
#: is stop-on-first, so failed candidates are cheap; this bounds the
#: pathological case where nothing ever reproduces.
DEFAULT_MAX_RUNS = 200

Oracle = Callable[[Scenario], Optional[Violation]]


def make_oracle(
    invariant: str,
    checkers_factory: Callable[[], List[InvariantChecker]] = default_checkers,
) -> Oracle:
    """Build the shrink predicate: does the scenario still break ``invariant``?

    A fresh checker set per run (checkers are stateful); the first
    violation of the *target* invariant counts — a shrink step that
    swaps one failure mode for a different one is rejected, so the
    reproducer stays faithful to the original finding.
    """

    def oracle(scenario: Scenario) -> Optional[Violation]:
        result = run_scenario(
            scenario, checkers=checkers_factory(), stop_on_first=True
        )
        for v in result.violations:
            if v.invariant == invariant:
                return v
        return None

    return oracle


@dataclass
class ShrinkReport:
    """What the shrinker did and where it ended."""

    original: Scenario
    minimal: Scenario
    violation: Violation
    runs: int
    passes: int

    def reduction(self) -> str:
        o, m = self.original, self.minimal
        return (
            f"jobs {len(o.jobs)}→{len(m.jobs)}, "
            f"faults {len(o.fault_events)}→{len(m.fault_events)}, "
            f"nodes {o.n_nodes}→{m.n_nodes}, "
            f"runs={self.runs}"
        )


def _clamp_to_cluster(scenario: Scenario, n_nodes: int) -> Scenario:
    """Shrink the cluster, keeping the scenario injectable/runnable."""
    jobs = tuple(
        replace(j, nnodes=min(j.nnodes, n_nodes)) for j in scenario.jobs
    )
    events = tuple(ev for ev in scenario.fault_events if ev.rank < n_nodes)
    link = scenario.link_faults
    if link is not None and link.ranks is not None:
        kept = {r for r in link.ranks if r < n_nodes}
        link = replace(link, ranks=kept) if kept else None
    return replace(
        scenario, n_nodes=n_nodes, jobs=jobs, fault_events=events, link_faults=link
    )


def shrink_scenario(
    scenario: Scenario,
    violation: Violation,
    oracle: Optional[Oracle] = None,
    max_runs: int = DEFAULT_MAX_RUNS,
    min_nodes: int = 2,
) -> ShrinkReport:
    """Greedy multi-pass shrink preserving ``violation.invariant``."""
    if oracle is None:
        oracle = make_oracle(violation.invariant)
    runs = 0
    passes = 0

    def still_fails(candidate: Scenario) -> Optional[Violation]:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        try:
            return oracle(candidate)
        except Exception:  # noqa: BLE001 - a crashing candidate is not a repro
            return None

    current = scenario
    best_violation = violation
    changed = True
    while changed and runs < max_runs:
        changed = False
        passes += 1

        # Pass 1: fewer jobs (keep at least one).
        i = 0
        while len(current.jobs) > 1 and i < len(current.jobs):
            candidate = replace(
                current, jobs=current.jobs[:i] + current.jobs[i + 1 :]
            )
            v = still_fails(candidate)
            if v is not None:
                current, best_violation, changed = candidate, v, True
            else:
                i += 1

        # Pass 2: fewer faults (events, then link window, then retunes).
        i = 0
        while i < len(current.fault_events):
            candidate = replace(
                current,
                fault_events=current.fault_events[:i]
                + current.fault_events[i + 1 :],
            )
            v = still_fails(candidate)
            if v is not None:
                current, best_violation, changed = candidate, v, True
            else:
                i += 1
        if current.link_faults is not None:
            candidate = replace(current, link_faults=None)
            v = still_fails(candidate)
            if v is not None:
                current, best_violation, changed = candidate, v, True
        i = 0
        while i < len(current.budget_schedule):
            candidate = replace(
                current,
                budget_schedule=current.budget_schedule[:i]
                + current.budget_schedule[i + 1 :],
            )
            v = still_fails(candidate)
            if v is not None:
                current, best_violation, changed = candidate, v, True
            else:
                i += 1

        # Pass 3: smaller cluster (halving, floor min_nodes).
        while current.n_nodes > min_nodes:
            target = max(min_nodes, current.n_nodes // 2)
            candidate = _clamp_to_cluster(current, target)
            v = still_fails(candidate)
            if v is None:
                break
            current, best_violation, changed = candidate, v, True

        # Pass 4: shorter horizon (arrivals at t=0, minimal work, short drain).
        for candidate in (
            replace(
                current,
                jobs=tuple(replace(j, submit_t=0.0) for j in current.jobs),
            ),
            replace(
                current,
                jobs=tuple(
                    replace(j, work_scale=min(j.work_scale, 0.5))
                    for j in current.jobs
                ),
            ),
            replace(current, drain_s=min(current.drain_s, 2.0)),
        ):
            if candidate == current:
                continue
            v = still_fails(candidate)
            if v is not None:
                current, best_violation, changed = candidate, v, True

        # Pass 5: simpler tenancy (drop the mix, else just admission).
        if current.tenancy is not None:
            candidate = replace(
                current,
                tenancy=None,
                jobs=tuple(replace(j, user=None) for j in current.jobs),
            )
            v = still_fails(candidate)
            if v is not None:
                current, best_violation, changed = candidate, v, True
            elif current.tenancy.admission:
                candidate = replace(
                    current, tenancy=replace(current.tenancy, admission=False)
                )
                v = still_fails(candidate)
                if v is not None:
                    current, best_violation, changed = candidate, v, True

    return ShrinkReport(
        original=scenario,
        minimal=current,
        violation=best_violation,
        runs=runs,
        passes=passes,
    )


# ----------------------------------------------------------------------
# Reproducer artifacts
# ----------------------------------------------------------------------
def reproducer_dict(
    report: ShrinkReport, result: Optional[SimtestResult] = None
) -> Dict[str, Any]:
    """JSON-safe reproducer payload (what ``--replay`` consumes)."""
    return {
        "simtest_reproducer": ARTIFACT_VERSION,
        "seed": report.original.seed,
        "invariant": report.violation.invariant,
        "violation": report.violation.to_dict(),
        "scenario": report.minimal.to_dict(),
        "original_scenario": report.original.to_dict(),
        "reduction": report.reduction(),
        "digest": result.digest if result is not None else None,
    }


def write_reproducer(
    path: str, report: ShrinkReport, result: Optional[SimtestResult] = None
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(reproducer_dict(report, result), fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_reproducer(path: str) -> Scenario:
    """Reload the minimal scenario from a reproducer artifact."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if "scenario" not in payload:
        raise ValueError(f"{path} is not a simtest reproducer artifact")
    return Scenario.from_dict(payload["scenario"])
