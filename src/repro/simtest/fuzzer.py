"""Batch driver: N seeds in, violations (shrunk to reproducers) out.

This is the engine behind ``repro simtest --seeds N`` and the
``simtest`` pytest marker. Each seed is fully independent — its own
scenario, its own cluster, its own checker instances — so a batch is
just a loop, and any seed from a batch can be replayed alone with
:func:`run_seed`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.simtest.harness import SimtestResult, run_scenario
from repro.simtest.invariants import default_checkers
from repro.simtest.scenario import GeneratorConfig, Scenario, generate_scenario
from repro.simtest.shrink import ShrinkReport, shrink_scenario, write_reproducer


def run_seed(
    seed: int,
    config: Optional[GeneratorConfig] = None,
) -> SimtestResult:
    """Generate and run the scenario for one seed."""
    scenario = generate_scenario(seed, config)
    return run_scenario(scenario, checkers=default_checkers())


@dataclass
class BatchReport:
    """Aggregate outcome of a fuzz batch."""

    seeds: List[int] = field(default_factory=list)
    results: List[SimtestResult] = field(default_factory=list)
    shrink_reports: List[ShrinkReport] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def failures(self) -> List[SimtestResult]:
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        n_fail = len(self.failures)
        lines = [
            f"simtest: {len(self.results)} scenario(s), "
            f"{len(self.results) - n_fail} ok, {n_fail} violating"
        ]
        for r in self.failures:
            lines.append("  " + r.summary())
        for path in self.artifacts:
            lines.append(f"  reproducer: {path}")
        return "\n".join(lines)


def run_batch(
    seeds: Sequence[int],
    config: Optional[GeneratorConfig] = None,
    shrink: bool = True,
    artifact_dir: Optional[str] = None,
    progress: Optional[Callable[[SimtestResult], None]] = None,
) -> BatchReport:
    """Run every seed; shrink failures and write reproducer artifacts.

    ``progress`` (if given) is called with each :class:`SimtestResult`
    as it completes — the CLI uses it for live per-seed output.
    """
    report = BatchReport()
    for seed in seeds:
        scenario = generate_scenario(seed, config)
        result = run_scenario(scenario, checkers=default_checkers())
        report.seeds.append(seed)
        report.results.append(result)
        if progress is not None:
            progress(result)
        if result.ok or not shrink:
            continue
        shrunk = shrink_scenario(scenario, result.violations[0])
        report.shrink_reports.append(shrunk)
        if artifact_dir is not None:
            os.makedirs(artifact_dir, exist_ok=True)
            path = os.path.join(
                artifact_dir,
                f"simtest-seed{seed}-{shrunk.violation.invariant}.json",
            )
            write_reproducer(path, shrunk, result)
            report.artifacts.append(path)
    return report


def replay_scenario(scenario: Scenario) -> SimtestResult:
    """Re-run a (possibly shrunk) scenario with the default checkers."""
    return run_scenario(scenario, checkers=default_checkers())
