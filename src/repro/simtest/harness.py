"""Run one scenario under the invariant checkers.

The harness builds a :class:`~repro.cluster.PowerManagedCluster` from a
:class:`~repro.simtest.scenario.Scenario`, schedules its job arrivals
and budget retunes, and interleaves a periodic *check tick* with the
simulation: every ``check_interval_s`` simulated seconds each checker
inspects the live cluster. After the last job completes (plus a drain
window) the per-job telemetry is fetched and the end-of-run checkers
get a final look.

The result carries a **digest**: a SHA-256 over a canonical summary of
the run (job timings, energy metrics, injected faults, headline
counters). Re-running the same seed must reproduce the digest byte for
byte — that is the replayability contract ``repro simtest`` verifies
with ``--replay-check`` and the tests pin.

Check ticks are scheduled as ordinary simulator events, but checkers
are pure observers (no messages, no RNG draws, no model mutation), so
they can only *observe* a divergence, never cause one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig
from repro.monitor.client import JobPowerData
from repro.simtest.invariants import InvariantChecker, Violation, default_checkers
from repro.simtest.scenario import Scenario, TenantMix

#: How often the invariant tick runs (simulated seconds). Matches the
#: monitor's default sampling period so every sampling epoch is seen.
DEFAULT_CHECK_INTERVAL_S = 2.0

#: Hard ceilings that turn a hung scenario into a reported violation
#: instead of an unbounded run.
DEFAULT_TIMEOUT_S = 500_000.0
DEFAULT_MAX_EVENTS = 5_000_000

#: Counters whose totals feed the digest (stable, deterministic ones).
DIGEST_COUNTERS = (
    "monitor_samples_total",
    "monitor_aggregations_total",
    "manager_share_recomputes_total",
    "manager_node_limit_updates_total",
    "faults_injected_total",
    "tbon_messages_dropped_total",
)


class SimtestContext:
    """What checkers see: the cluster plus harness bookkeeping."""

    def __init__(self, cluster: PowerManagedCluster, scenario: Scenario) -> None:
        self.cluster = cluster
        self.scenario = scenario
        self.tick_index = 0
        #: jobid -> fetched telemetry, populated before end-of-run checks.
        self.job_telemetry: Dict[int, JobPowerData] = {}
        #: Serving-tier API over this cluster, attached when the
        #: scenario carries a :class:`~repro.simtest.scenario.ServingMix`;
        #: None otherwise. Checkers must treat it as optional.
        self.service = None
        #: Requests injected by the serving campaign so far.
        self.serving_requests = 0

    @property
    def sim(self):
        return self.cluster.sim


@dataclass
class SimtestResult:
    """Outcome of one scenario run."""

    scenario: Scenario
    violations: List[Violation] = field(default_factory=list)
    digest: str = ""
    makespan_s: Optional[float] = None
    n_ticks: int = 0
    events_processed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    def summary(self) -> str:
        if self.ok:
            return (
                f"OK   {self.scenario.describe()} "
                f"digest={self.digest[:12]} ticks={self.n_ticks}"
            )
        v = self.violations[0]
        return (
            f"FAIL {self.scenario.describe()} "
            f"[{v.invariant}] t={v.t:.3f}: {v.message}"
            + (f" (+{len(self.violations) - 1} more)" if len(self.violations) > 1 else "")
        )


def _canonical(obj: Any) -> Any:
    """Round floats for a stable cross-run JSON digest."""
    if isinstance(obj, float):
        return round(obj, 9)
    if isinstance(obj, dict):
        return {k: _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def _tenancy_config(mix: TenantMix, global_cap_w: Optional[float]):
    """Build the cluster's :class:`~repro.tenancy.TenancyConfig` from a
    scenario's :class:`~repro.simtest.scenario.TenantMix`."""
    from repro.tenancy import AdmissionConfig, TenancyConfig, TenantDirectory

    directory = TenantDirectory.build(
        projects=list(mix.projects), users=list(mix.users)
    )
    admission = None
    if mix.admission and global_cap_w is not None:
        admission = AdmissionConfig(
            budget_w=global_cap_w,
            admit_node_w=mix.admit_node_w,
            oversubscription=mix.oversubscription,
            max_queue_depth=mix.max_queue_depth,
        )
    return TenancyConfig(
        directory=directory,
        half_life_s=mix.half_life_s,
        usage_norm_ws=mix.usage_norm_ws,
        accounting_interval_s=mix.accounting_interval_s,
        admission=admission,
    )


def run_scenario(
    scenario: Scenario,
    checkers: Optional[List[InvariantChecker]] = None,
    check_interval_s: float = DEFAULT_CHECK_INTERVAL_S,
    timeout_s: float = DEFAULT_TIMEOUT_S,
    max_events: int = DEFAULT_MAX_EVENTS,
    stop_on_first: bool = False,
    setup=None,
) -> SimtestResult:
    """Execute ``scenario`` under the invariant checkers.

    ``stop_on_first`` ends the run at the first violating tick — the
    shrinker uses it to keep reproduction cheap; batch runs keep going
    so one report shows every property the scenario breaks.

    ``setup(cluster, sim)``, when given, runs after the cluster is
    built but before the first event — the crash-recovery fuzz uses it
    to schedule a snapshot → wipe → restore cycle mid-run without the
    harness knowing anything about snapshots.
    """
    if checkers is None:
        checkers = default_checkers()

    manager_config = None
    if scenario.policy:
        manager_config = ManagerConfig(
            global_cap_w=scenario.global_cap_w,
            policy=scenario.policy,
            static_node_cap_w=scenario.static_node_cap_w,
            account_idle_nodes=scenario.account_idle_nodes,
        )
    tenancy_config = None
    if scenario.tenancy is not None:
        tenancy_config = _tenancy_config(scenario.tenancy, scenario.global_cap_w)
    cluster = PowerManagedCluster(
        platform=scenario.platform,
        n_nodes=scenario.n_nodes,
        seed=scenario.seed,
        fanout=scenario.fanout,
        manager_config=manager_config,
        monitor_strategy=scenario.monitor_strategy,
        fault_plan=scenario.fault_plan(),
        monitor_columnar=scenario.columnar,
        tenancy=tenancy_config,
    )
    ctx = SimtestContext(cluster, scenario)
    result = SimtestResult(scenario=scenario)
    sim = cluster.sim
    if setup is not None:
        setup(cluster, sim)

    # Serving campaign ---------------------------------------------------
    # When the scenario carries a ServingMix, stand up the API over the
    # cluster and replay a seeded read-only client mix at every tick.
    # Requests never step the simulator and the injection RNG is its own
    # substream, so the campaign cannot perturb the run — a 5xx from any
    # injected request is itself a violation.
    inject_serving = None
    if scenario.serving is not None:
        from repro.serving.registry import ClusterRegistry
        from repro.serving.service import PowerService
        from repro.simkernel.rng import RandomStreams

        ctx.service = PowerService(
            ClusterRegistry.from_cluster(cluster, name="default")
        )
        inject_rng = RandomStreams(seed=scenario.seed).get(
            "simtest/serving/inject"
        )
        mix = scenario.serving
        read_ops = (
            "cluster_power", "list_jobs", "get_job", "queue", "nodes",
            "health",
        )

        def inject_serving() -> None:
            books = cluster.instance.jobmanager.jobs
            for _ in range(mix.requests_per_tick):
                op = read_ops[int(inject_rng.integers(0, len(read_ops)))]
                method, path = "GET", "/v1/health"
                params: Dict[str, Any] = {}
                if op == "get_job" and not books:
                    op = "list_jobs"
                if op == "cluster_power":
                    path = "/v1/clusters/default/power"
                elif op == "queue":
                    path = "/v1/clusters/default/queue"
                elif op == "nodes":
                    path = "/v1/clusters/default/nodes"
                    params = {"limit": mix.page_limit}
                elif op == "list_jobs":
                    path = "/v1/clusters/default/jobs"
                    params = {"limit": mix.page_limit}
                    if int(inject_rng.integers(0, 2)):
                        params["response_format"] = "detailed"
                elif op == "get_job":
                    jobids = list(books)
                    jobid = jobids[int(inject_rng.integers(0, len(jobids)))]
                    path = f"/v1/clusters/default/jobs/{jobid}"
                resp = ctx.service.handle(method, path, params)
                ctx.serving_requests += 1
                if resp.status >= 500:
                    result.violations.append(
                        Violation(
                            invariant="serving", t=sim.now,
                            message=(
                                f"injected {op} request returned "
                                f"{resp.status}: {resp.body}"
                            ),
                            details={"op": op, "path": path,
                                     "status": resp.status},
                        )
                    )

    # Job arrivals -------------------------------------------------------
    for entry in scenario.jobs:
        spec = Jobspec(
            app=entry.app,
            nnodes=min(entry.nnodes, scenario.n_nodes),
            params={"work_scale": entry.work_scale},
            **({"user": entry.user} if entry.user is not None else {}),
        )
        if entry.submit_t <= 0.0:
            cluster.submit(spec)
        else:
            cluster.submit_at(spec, entry.submit_t)

    # Budget schedule ----------------------------------------------------
    def _retune(new_cap_w: float) -> None:
        root = cluster.manager.cluster
        root.config = replace(root.config, global_cap_w=new_cap_w)
        root._recompute()

    if scenario.budget_schedule and cluster.manager is not None:
        for t, cap in scenario.budget_schedule:
            sim.schedule_at(t, _retune, cap)

    # Invariant tick -----------------------------------------------------
    halted = False

    def _tick() -> None:
        nonlocal halted
        if inject_serving is not None:
            inject_serving()
        for checker in checkers:
            found = checker.check(ctx)
            if found:
                result.violations.extend(found)
                if stop_on_first:
                    halted = True
        ctx.tick_index += 1
        result.n_ticks += 1

    tick_event = sim.schedule_periodic(check_interval_s, _tick, start_delay=0.0)

    # Run ----------------------------------------------------------------
    deadline = sim.now + timeout_s
    count = 0
    jm = cluster.instance.jobmanager
    timed_out = False
    n_expected = len(scenario.jobs)

    # all_complete() is vacuously true before deferred submissions fire,
    # so also wait until every scenario job has actually been submitted.
    # With admission control some submissions are rejected (never reach
    # the job manager) or queued (reach it later), so count decisions at
    # the coordinator instead of records in the books.
    def _pending() -> bool:
        coord = cluster.tenancy
        if coord is not None and coord.admission_enabled:
            return (
                coord.submissions_total < n_expected
                or coord.queue_len > 0
                or not jm.all_complete()
            )
        return len(jm.jobs) < n_expected or not jm.all_complete()

    while _pending():
        if halted:
            break
        if not sim.step():
            result.violations.append(
                Violation(
                    invariant="engine", t=sim.now,
                    message="event heap drained with jobs still active",
                )
            )
            timed_out = True
            break
        count += 1
        if count > max_events or sim.now > deadline:
            result.violations.append(
                Violation(
                    invariant="liveness", t=sim.now,
                    message=(
                        f"jobs still active after "
                        f"{count} events / t={sim.now:.0f}s"
                    ),
                    details={"events": count},
                )
            )
            timed_out = True
            break
    if not halted and not timed_out:
        cluster.run_for(scenario.drain_s)
    tick_event.cancel()

    # End-of-run checks --------------------------------------------------
    if not halted and not timed_out:
        for jobid, run in cluster.instance.app_runs.items():
            if not run.finished:
                continue
            try:
                ctx.job_telemetry[jobid] = cluster.telemetry(jobid)
            except Exception as exc:  # noqa: BLE001 - a failed fetch IS a finding
                result.violations.append(
                    Violation(
                        invariant="telemetry_fetch", t=sim.now,
                        message=f"telemetry fetch for job {jobid} failed: {exc}",
                        details={"jobid": jobid, "error": str(exc)},
                    )
                )
        for checker in checkers:
            result.violations.extend(checker.check(ctx))
            result.violations.extend(checker.at_end(ctx))

    # Digest -------------------------------------------------------------
    result.makespan_s = cluster.makespan_s()
    result.events_processed = sim.events_processed
    summary: Dict[str, Any] = {
        "seed": scenario.seed,
        "scenario": scenario.to_dict(),
        "makespan_s": result.makespan_s,
        "t_end": sim.now,
        "jobs": {},
        "faults": list(cluster.faults.injected),
        "counters": {},
        "violations": [v.to_dict() for v in result.violations],
    }
    for jobid, m in sorted(cluster.all_metrics().items()):
        summary["jobs"][str(jobid)] = {
            "runtime_s": m.runtime_s,
            "avg_node_power_w": m.avg_node_power_w,
            "avg_node_energy_kj": m.avg_node_energy_kj,
        }
    metrics = cluster.telemetry_hub.metrics
    for name in DIGEST_COUNTERS:
        total = sum(s.value for s in metrics.series_for(name))
        summary["counters"][name] = total
    # Only present for tenanted scenarios: the key's absence keeps every
    # historical (anonymous) digest byte-identical.
    if scenario.tenancy is not None and cluster.tenancy is not None:
        summary["tenancy"] = cluster.tenancy.digest_summary()
    blob = json.dumps(_canonical(summary), sort_keys=True).encode()
    result.digest = hashlib.sha256(blob).hexdigest()
    return result
