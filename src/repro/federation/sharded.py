"""Sharded federation: one simulation engine per member cluster.

The classic :class:`~repro.federation.site.FederatedSite` runs every
cluster through one global event loop — simple and exact, but a site
of N large clusters serializes N clusters' events through one heap and
one Python thread. This module shards the site: each cluster gets a
private :class:`~repro.simkernel.Simulator` (its *shard*), shards run
independently between site-level synchronization points, and the site
manager becomes a coordinator that stitches them together at
**epoch-synchronized rebalance barriers**.

Determinism contract
--------------------
Each cluster's seed is derived exactly as in the single-engine site
(``RandomStreams(site_seed).fork("federation/<name>")``), so a shard's
private event stream is byte-identical to that cluster's restriction of
the single-engine run — *provided budget installs land at the same
position in the shard's event order*. Two mechanisms guarantee that:

* **Epoch markers.** Every shard schedules its own periodic marker with
  the same period, start delay and re-arm discipline as the site's
  single epoch event. When a marker fires the shard pauses; once every
  shard is paused the coordinator reads demands, splits the budget with
  the same :func:`~repro.federation.rebalance.split_site_budget`, and
  installs each share at the shard's paused position — the exact
  sequence-number slot the global epoch event occupies in the
  single-engine run (same creation order, same re-arm-before-callback
  timing).
* **Transition hand-off (inline backend).** Whole-cluster outage and
  recovery rebalances fire *inside* a ``broker.down``/``up`` delivery
  on the detecting shard. The coordinator advances every sibling shard
  to the delivery instant (``run(until=t)``) and rebalances
  synchronously, then the detecting shard's delivery continues. Sibling
  shards therefore see the install after their own events at that
  instant — identical to the global run whenever no sibling has an
  event at *exactly* the transition time (the *no-collision contract*;
  transition instants carry TBON transport-delay offsets, so grid-
  aligned traffic never collides with them).

The site digest (:mod:`repro.federation.digest`) is the stable
combination of per-shard digests, and equals the single-engine
``FederatedSite.site_digest()`` for the same config and seed —
``tests/test_sharded_federation.py`` pins this for fault-free,
retuned and faulted runs.

Backends
--------
``backend="inline"``
    All shards in this process, interleaved in global time order via
    :meth:`~repro.simkernel.Simulator.peek_time`. Full semantics
    (faults, dynamic submits, exact ``run_until_complete``).
``backend="process"``
    One :mod:`multiprocessing` worker per shard; between barriers each
    worker free-runs its own engine, so the site scales with cores.
    Cross-shard synchronization exists only at barriers, so cluster
    fault campaigns (which need mid-epoch hand-off) are rejected, and
    the workload (submits, scheduled retunes) must be declared before
    the first ``run_*`` call.

Site-tier ``federation_*`` metrics remain a single-engine feature —
each shard keeps its own telemetry hub, and the coordinator pins
behaviour through the budget log and the site digest instead.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import replace
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.cluster import PowerManagedCluster
from repro.faults import FaultPlan
from repro.federation.digest import (
    cluster_shard_summary,
    combine_site_digest,
    shard_digest,
)
from repro.federation.rebalance import (
    cluster_demand_w,
    site_allocation_total_w,
    split_site_budget,
    validate_floors,
)
from repro.federation.site import ClusterSpec, SiteConfig
from repro.flux.jobspec import JobRecord, Jobspec
from repro.manager.cluster_manager import ManagerConfig
from repro.simkernel import RandomStreams, Simulator


class _Shard:
    """One member cluster on its own engine, plus its site-tier hooks."""

    def __init__(
        self,
        spec: ClusterSpec,
        cluster_seed: int,
        fault_plan: Optional[FaultPlan],
        monitor_interval_s: float,
        telemetry_enabled: bool,
        columnar: bool,
    ) -> None:
        self.spec = spec
        self.sim = Simulator()
        self.cluster = PowerManagedCluster(
            platform=spec.platform,
            n_nodes=spec.n_nodes,
            seed=cluster_seed,
            fanout=spec.fanout,
            manager_config=ManagerConfig(
                global_cap_w=None,  # installed by the first rebalance
                policy=spec.policy,
                static_node_cap_w=spec.static_node_cap_w,
                node_peak_w=spec.node_peak_w,
            ),
            monitor_strategy=spec.monitor_strategy,
            monitor_interval_s=monitor_interval_s,
            monitor_columnar=columnar,
            fault_plan=fault_plan,
            telemetry_enabled=telemetry_enabled,
            sim=self.sim,
            hostname_prefix=spec.name,
        )
        self.down_ranks: Set[int] = set()
        self.is_down = False
        #: Barrier reason ("epoch" / "retune") while paused at a local
        #: marker; None while free-running.
        self.paused: Optional[str] = None
        self.expected_jobs = 0
        #: Inline coordinator hook: called synchronously from inside the
        #: broker event delivery when whole-cluster liveness flips.
        self.on_transition = None
        self.cluster.instance.brokers[0].subscribe(
            "broker.", self._on_broker_event
        )

    # -- liveness (same rule as FederatedSite._update_liveness) --------
    def _on_broker_event(self, msg) -> None:
        if msg.topic == "broker.down":
            self.down_ranks.add(int(msg.payload["rank"]))
        elif msg.topic == "broker.up":
            self.down_ranks.discard(int(msg.payload["rank"]))
        else:
            return
        n = self.spec.n_nodes
        down = n >= 2 and len(self.down_ranks) >= n - 1
        if down == self.is_down:
            return
        self.is_down = down
        if self.on_transition is not None:
            self.on_transition(self, "outage" if down else "recovery")

    # -- site-tier surface ---------------------------------------------
    def demand(self) -> float:
        manager = self.cluster.manager
        active = (
            manager.cluster.job_level.active_node_count()
            if manager is not None
            else 0
        )
        return cluster_demand_w(active, self.spec.node_peak_w)

    def install(self, share_w: float) -> None:
        manager = self.cluster.manager
        if manager is None:  # pragma: no cover - specs always load one
            return
        root = manager.cluster
        root.config = replace(root.config, global_cap_w=share_w)
        root._recompute()

    def start_markers(self, epoch_s: float) -> None:
        self.sim.schedule_periodic(
            epoch_s, self._pause, "epoch", start_delay=epoch_s
        )

    def schedule_retune_marker(self, when: float) -> None:
        self.sim.schedule_at(when, self._pause, "retune")

    def _pause(self, reason: str) -> None:
        self.paused = reason

    def all_complete(self) -> bool:
        jm = self.cluster.instance.jobmanager
        return len(jm.jobs) >= self.expected_jobs and jm.all_complete()

    def drive_local(self, until: float):
        """Free-run this shard alone until a marker pauses it or ``until``.

        Returns ``("paused", t, reason, demand)`` or
        ``("done", demand, all_complete)`` — the worker protocol's
        advance reply, also used by inline tests.
        """
        sim = self.sim
        while self.paused is None:
            t = sim.peek_time()
            if t is None or t > until:
                sim.run(until=until)
                return ("done", self.demand(), self.all_complete())
            sim.step()
        return ("paused", sim.now, self.paused, self.demand())

    def summary(self) -> dict:
        return cluster_shard_summary(self.cluster)


def _make_shard(payload: dict) -> _Shard:
    """Build a shard from the picklable worker payload."""
    shard = _Shard(
        spec=payload["spec"],
        cluster_seed=payload["cluster_seed"],
        fault_plan=None,
        monitor_interval_s=payload["monitor_interval_s"],
        telemetry_enabled=payload["telemetry_enabled"],
        columnar=payload["columnar"],
    )
    for spec, when in payload["jobs"]:
        shard.expected_jobs += 1
        if when <= 0.0:
            shard.cluster.submit(spec)
        else:
            shard.cluster.submit_at(spec, when)
    for when in payload["retune_times"]:
        shard.schedule_retune_marker(when)
    return shard


def _shard_worker(conn, payload: dict) -> None:
    """Process-backend worker: one shard driven by pipe commands."""
    try:
        shard = _make_shard(payload)
        conn.send(("demand", shard.demand()))
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "install":
                shard.install(cmd[1])
                conn.send(("ok",))
            elif op == "start_markers":
                shard.start_markers(cmd[1])
                conn.send(("ok",))
            elif op == "advance":
                conn.send(shard.drive_local(cmd[1]))
            elif op == "resume":
                shard.paused = None
                conn.send(("ok",))
            elif op == "summary":
                conn.send(("summary", shard.summary()))
            elif op == "exit":
                conn.send(("bye",))
                return
            else:  # pragma: no cover - protocol misuse
                conn.send(("error", f"unknown command {op!r}"))
    except Exception as exc:  # pragma: no cover - surfaced coordinator-side
        try:
            conn.send(("error", repr(exc)))
        except Exception:
            pass
    finally:
        conn.close()


class ShardedFederatedSite:
    """The :class:`~repro.federation.site.FederatedSite` API over shards.

    Parameters mirror the single-engine site; ``backend`` selects the
    inline (same-process, full-semantics) or process
    (:mod:`multiprocessing`, barrier-only) execution model. See the
    module docstring for the determinism contract.
    """

    def __init__(
        self,
        config: SiteConfig,
        seed: int = 0,
        fault_plans: Optional[Mapping[str, FaultPlan]] = None,
        backend: str = "inline",
        telemetry_enabled: bool = True,
        monitor_interval_s: float = 2.0,
        columnar: bool = False,
    ) -> None:
        config.validate()
        if backend not in ("inline", "process"):
            raise ValueError(f"unknown shard backend {backend!r}")
        fault_plans = dict(fault_plans or {})
        unknown = set(fault_plans) - {s.name for s in config.clusters}
        if unknown:
            raise ValueError(f"fault plans for unknown clusters: {sorted(unknown)}")
        if backend == "process" and any(
            plan is not None and not plan.is_empty()
            for plan in fault_plans.values()
        ):
            raise ValueError(
                "cluster fault campaigns need the inline backend: mid-epoch "
                "liveness rebalances require cross-shard hand-off a process "
                "barrier cannot replay"
            )
        self.config = config
        self.backend = backend
        self.seed = int(seed)
        self.site_budget_w = float(config.site_budget_w)
        self.specs: Dict[str, ClusterSpec] = {s.name: s for s in config.clusters}
        self._monitor_interval_s = monitor_interval_s
        self._telemetry_enabled = telemetry_enabled
        self._columnar = columnar
        self._now = 0.0

        streams = RandomStreams(seed=self.seed)
        self._cluster_seeds = {
            spec.name: streams.fork(f"federation/{spec.name}").seed
            for spec in config.clusters
        }

        self.assigned_shares: Dict[str, float] = {}
        self.expected_total_w: float = 0.0
        self.last_rebalance_t: float = 0.0
        self.budget_log: List[
            Tuple[float, str, Dict[str, float], Tuple[str, ...]]
        ] = []
        #: Scheduled (t, new_budget_w) retunes, consumed at barriers.
        self._pending_retunes: List[Tuple[float, float]] = []
        self._in_transition = False

        if backend == "inline":
            self._shards: List[_Shard] = [
                _Shard(
                    spec,
                    self._cluster_seeds[spec.name],
                    fault_plans.get(spec.name),
                    monitor_interval_s,
                    telemetry_enabled,
                    columnar,
                )
                for spec in config.clusters
            ]
            self._by_name = {sh.spec.name: sh for sh in self._shards}
            demands = {sh.spec.name: sh.demand() for sh in self._shards}
            self._apply_split("initial", demands)
            for sh in self._shards:
                sh.start_markers(config.rebalance_epoch_s)
                sh.on_transition = self._on_transition
        else:
            # Workers start lazily on the first run_* call so the whole
            # workload (submits, retunes) can be declared first.
            self._shards = []
            self._by_name = {}
            self._workers: List[mp.Process] = []
            self._conns: List = []
            self._started = False
            self._closed = False
            self._job_queue: Dict[str, List[Tuple[Jobspec, float]]] = {
                s.name: [] for s in config.clusters
            }
            self._last_demands: Dict[str, float] = {
                s.name: 0.0 for s in config.clusters
            }
            self._all_complete = False

    # ------------------------------------------------------------------
    # Budget split (shared by both backends)
    # ------------------------------------------------------------------
    def _down_names(self) -> Set[str]:
        if self.backend == "inline":
            return {sh.spec.name for sh in self._shards if sh.is_down}
        return set()  # process backend is fault-free by construction

    def _apply_split(self, reason: str, demands: Dict[str, float]) -> Dict[str, float]:
        """Run ``split_site_budget`` and record the site-tier books.

        Returns the per-cluster install map (0.0 for down clusters);
        the caller delivers the installs at each shard's paused
        position.
        """
        down = self._down_names()
        live = [n for n in sorted(self.specs) if n not in down]
        live_demands = {n: demands[n] for n in live}
        floors = {n: self.specs[n].min_share_w for n in live}
        ceilings = {n: self.specs[n].max_share_w for n in live}
        shares = split_site_budget(
            self.site_budget_w, live_demands, floors, ceilings
        )
        self.assigned_shares = {n: 0.0 for n in sorted(self.specs)}
        installs: Dict[str, float] = {}
        for name in live:
            self.assigned_shares[name] = shares[name]
            installs[name] = shares[name]
        for name in sorted(down):
            installs[name] = 0.0
        self.expected_total_w = site_allocation_total_w(
            self.site_budget_w, live_demands, ceilings
        )
        self.last_rebalance_t = self._now
        self.budget_log.append(
            (self._now, reason, dict(self.assigned_shares), tuple(live))
        )
        if self.backend == "inline":
            # Install order is per-shard-irrelevant (each shard only
            # sees its own install), but keep the single-engine site's
            # sorted order for the books.
            for name in sorted(installs):
                self._by_name[name].install(installs[name])
        return installs

    # ------------------------------------------------------------------
    # Inline backend: global-time-ordered interleave
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        if self.backend == "inline" and self._shards:
            return max(self._now, max(sh.sim.now for sh in self._shards))
        return self._now

    def _on_transition(self, shard: _Shard, kind: str) -> None:
        """Outage/recovery hand-off, called inside the delivery event."""
        if self._in_transition:
            raise RuntimeError(
                "nested liveness transitions at one instant violate the "
                "sharded no-collision contract"
            )
        self._in_transition = True
        try:
            t = shard.sim.now
            for sh in self._shards:
                if sh is shard:
                    continue
                sh.sim.run(until=t)
                if sh.paused is not None:
                    raise RuntimeError(
                        f"shard {sh.spec.name!r} hit a rebalance marker at "
                        f"the transition instant t={t}: no-collision "
                        "contract violated (move the fault off the epoch "
                        "grid)"
                    )
            self._now = t
            demands = {sh.spec.name: sh.demand() for sh in self._shards}
            self._apply_split(kind, demands)
        finally:
            self._in_transition = False

    def _resolve_barrier_inline(self) -> None:
        reasons = {sh.paused for sh in self._shards}
        times = {sh.sim.now for sh in self._shards}
        if len(reasons) != 1 or len(times) != 1:
            raise RuntimeError(
                f"shards paused at inconsistent barriers: reasons={reasons} "
                f"times={times}"
            )
        reason = next(iter(reasons))
        self._now = next(iter(times))
        if reason == "retune":
            self._consume_retune(self._now)
        demands = {sh.spec.name: sh.demand() for sh in self._shards}
        self._apply_split(reason, demands)
        for sh in self._shards:
            sh.paused = None

    def _consume_retune(self, t: float) -> None:
        for i, (when, budget_w) in enumerate(self._pending_retunes):
            if when == t:
                self.site_budget_w = float(budget_w)
                del self._pending_retunes[i]
                return
        raise RuntimeError(f"retune barrier at t={t} with no pending retune")

    def _drive_inline(self, until: float, stop_when_complete: bool = False) -> None:
        shards = self._shards
        while True:
            best = None
            for sh in shards:
                if sh.paused is not None:
                    continue
                t = sh.sim.peek_time()
                if t is None or t > until:
                    continue
                if best is None or t < best[0]:
                    best = (t, sh)
            if best is not None:
                best[1].sim.step()
                if stop_when_complete and self.all_complete():
                    self._now = best[1].sim.now
                    return
                continue
            if any(sh.paused is not None for sh in shards):
                self._resolve_barrier_inline()
                continue
            for sh in shards:
                sh.sim.run(until=until)
            self._now = until
            return

    # ------------------------------------------------------------------
    # Process backend: barrier-synchronized workers
    # ------------------------------------------------------------------
    def _start_workers(self) -> None:
        ctx = mp.get_context()
        for spec in self.config.clusters:
            parent, child = ctx.Pipe()
            payload = {
                "spec": spec,
                "cluster_seed": self._cluster_seeds[spec.name],
                "monitor_interval_s": self._monitor_interval_s,
                "telemetry_enabled": self._telemetry_enabled,
                "columnar": self._columnar,
                "jobs": list(self._job_queue[spec.name]),
                "retune_times": [t for t, _ in self._pending_retunes],
            }
            proc = ctx.Process(
                target=_shard_worker, args=(child, payload), daemon=True
            )
            proc.start()
            child.close()
            self._workers.append(proc)
            self._conns.append(parent)
        demands: Dict[str, float] = {}
        for spec, conn in zip(self.config.clusters, self._conns):
            demands[spec.name] = self._recv(conn, "demand")[1]
        installs = self._apply_split("initial", demands)
        for spec, conn in zip(self.config.clusters, self._conns):
            self._call(conn, ("install", installs[spec.name]))
            self._call(conn, ("start_markers", self.config.rebalance_epoch_s))
        self._started = True

    @staticmethod
    def _recv(conn, *expect: str):
        reply = conn.recv()
        if reply[0] == "error":
            raise RuntimeError(f"shard worker failed: {reply[1]}")
        if expect and reply[0] not in expect:
            raise RuntimeError(f"unexpected shard reply {reply!r}")
        return reply

    def _call(self, conn, cmd, *expect: str):
        conn.send(cmd)
        return self._recv(conn, *(expect or ("ok",)))

    def _drive_process(self, until: float) -> None:
        if not self._started:
            self._start_workers()
        names = [s.name for s in self.config.clusters]
        while True:
            for conn in self._conns:
                conn.send(("advance", until))
            replies = [
                self._recv(conn, "paused", "done") for conn in self._conns
            ]
            kinds = {r[0] for r in replies}
            if kinds == {"done"}:
                for name, r in zip(names, replies):
                    self._last_demands[name] = r[1]
                self._all_complete = all(r[2] for r in replies)
                self._now = until
                return
            if kinds != {"paused"}:
                raise RuntimeError(
                    f"shards desynchronized at barrier: {sorted(kinds)}"
                )
            times = {r[1] for r in replies}
            reasons = {r[2] for r in replies}
            if len(times) != 1 or len(reasons) != 1:
                raise RuntimeError(
                    f"shards paused at inconsistent barriers: times={times} "
                    f"reasons={reasons}"
                )
            self._now = next(iter(times))
            reason = next(iter(reasons))
            if reason == "retune":
                self._consume_retune(self._now)
            demands = {name: r[3] for name, r in zip(names, replies)}
            self._last_demands.update(demands)
            installs = self._apply_split(reason, demands)
            for name, conn in zip(names, self._conns):
                self._call(conn, ("install", installs[name]))
            for conn in self._conns:
                self._call(conn, ("resume",))

    def close(self) -> None:
        """Shut the process backend's workers down (idempotent)."""
        if self.backend != "process" or getattr(self, "_closed", True):
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("exit",))
                conn.recv()
            except Exception:
                pass
            finally:
                try:
                    conn.close()
                except Exception:
                    pass
        for proc in self._workers:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
        self._workers = []
        self._conns = []

    def __del__(self):  # pragma: no cover - GC-time best effort
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # FederatedSite API
    # ------------------------------------------------------------------
    def cluster(self, name: str) -> PowerManagedCluster:
        if self.backend != "inline":
            raise RuntimeError(
                "member clusters live in worker processes; the process "
                "backend exposes results through site_digest()/describe()"
            )
        return self._by_name[name].cluster

    @property
    def clusters(self) -> Dict[str, PowerManagedCluster]:
        if self.backend != "inline":
            raise RuntimeError("clusters are only reachable on the inline backend")
        return {name: sh.cluster for name, sh in sorted(self._by_name.items())}

    def submit(self, name: str, spec: Jobspec) -> Optional[JobRecord]:
        if self.backend == "inline":
            shard = self._by_name[name]
            shard.expected_jobs += 1
            return shard.cluster.submit(spec)
        self._require_not_started("submit")
        self._job_queue[name].append((spec, 0.0))
        return None

    def submit_at(self, name: str, spec: Jobspec, when: float) -> None:
        if self.backend == "inline":
            shard = self._by_name[name]
            shard.expected_jobs += 1
            shard.cluster.submit_at(spec, when)
            return
        self._require_not_started("submit_at")
        self._job_queue[name].append((spec, float(when)))

    def _require_not_started(self, what: str) -> None:
        if self._started:
            raise RuntimeError(
                f"{what} after the first run: the process backend needs the "
                "whole workload declared up front"
            )

    def retune_site_budget(self, new_budget_w: float) -> None:
        """Change the site budget and re-split at the current instant."""
        validate_floors(
            new_budget_w,
            {s.name: s.min_share_w for s in self.config.clusters},
            {s.name: s.max_share_w for s in self.config.clusters},
        )
        if self.backend != "inline":
            raise RuntimeError(
                "immediate retunes need the inline backend; use "
                "schedule_retune() before the first run instead"
            )
        self.site_budget_w = float(new_budget_w)
        self._now = self.now
        demands = {sh.spec.name: sh.demand() for sh in self._shards}
        self._apply_split("retune", demands)

    def schedule_retune(self, when: float, new_budget_w: float) -> None:
        validate_floors(
            new_budget_w,
            {s.name: s.min_share_w for s in self.config.clusters},
            {s.name: s.max_share_w for s in self.config.clusters},
        )
        if self.backend == "process":
            self._require_not_started("schedule_retune")
        else:
            for sh in self._shards:
                sh.schedule_retune_marker(when)
        self._pending_retunes.append((float(when), float(new_budget_w)))
        self._pending_retunes.sort()

    def all_complete(self) -> bool:
        if self.backend == "inline":
            return all(sh.all_complete() for sh in self._shards)
        return self._all_complete

    def run_for(self, duration_s: float) -> float:
        until = self.now + duration_s
        if self.backend == "inline":
            self._drive_inline(until)
        else:
            self._drive_process(until)
        return self._now

    def run_until_complete(
        self, timeout_s: float = 1e7, max_events: int = 100_000_000
    ) -> float:
        deadline = self.now + timeout_s
        if self.backend == "inline":
            while not self.all_complete():
                if self.now >= deadline:
                    raise RuntimeError(
                        f"jobs still active at t={self.now:.0f}s (timeout)"
                    )
                before = sum(sh.sim.events_processed for sh in self._shards)
                self._drive_inline(
                    min(deadline, self.now + self.config.rebalance_epoch_s),
                    stop_when_complete=True,
                )
                after = sum(sh.sim.events_processed for sh in self._shards)
                if after == before and not self.all_complete():
                    raise RuntimeError(
                        "event heaps drained with jobs still active"
                    )
            return self.now
        while not self.all_complete():
            if self._now >= deadline:
                raise RuntimeError(
                    f"jobs still active at t={self._now:.0f}s (timeout)"
                )
            self._drive_process(self._now + self.config.rebalance_epoch_s)
        return self._now

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def shard_digests(self) -> Dict[str, str]:
        """Per-cluster digests (the combination inputs of the site digest)."""
        if self.backend == "inline":
            return {
                name: shard_digest(sh.summary())
                for name, sh in sorted(self._by_name.items())
            }
        if not self._started:
            self._start_workers()
        digests: Dict[str, str] = {}
        for spec, conn in zip(self.config.clusters, self._conns):
            digests[spec.name] = shard_digest(
                self._call(conn, ("summary",), "summary")[1]
            )
        return digests

    def site_digest(self) -> str:
        """Stable combination of the per-shard digests + site timeline.

        Equal to the single-engine ``FederatedSite.site_digest()`` for
        the same config/seed/workload when both runs end at the same
        simulated time (e.g. the same ``run_for`` horizon).
        """
        return combine_site_digest(self.now, self.budget_log, self.shard_digests())

    @property
    def live_clusters(self) -> List[str]:
        down = self._down_names()
        return sorted(n for n in self.specs if n not in down)

    @property
    def down_clusters(self) -> List[str]:
        return sorted(self._down_names())

    def cluster_is_down(self, name: str) -> bool:
        return name in self._down_names()

    def describe(self) -> Dict[str, object]:
        if self.backend == "inline":
            demands = {n: sh.demand() for n, sh in self._by_name.items()}
        else:
            demands = dict(self._last_demands)
        return {
            "site_budget_w": self.site_budget_w,
            "rebalance_epoch_s": self.config.rebalance_epoch_s,
            "sharded": True,
            "backend": self.backend,
            "clusters": {
                name: {
                    "platform": self.specs[name].platform,
                    "n_nodes": self.specs[name].n_nodes,
                    "assigned_w": self.assigned_shares.get(name, 0.0),
                    "demand_w": demands.get(name, 0.0),
                    "down": name in self._down_names(),
                }
                for name in sorted(self.specs)
            },
        }


def create_site(
    config: SiteConfig,
    seed: int = 0,
    fault_plans: Optional[Mapping[str, FaultPlan]] = None,
    **kwargs,
):
    """Build the site the config asks for.

    ``SiteConfig(sharded=True)`` yields a :class:`ShardedFederatedSite`
    (extra ``kwargs`` like ``backend=`` pass through); otherwise the
    classic single-engine :class:`~repro.federation.site.FederatedSite`.
    """
    if config.sharded:
        return ShardedFederatedSite(config, seed, fault_plans, **kwargs)
    from repro.federation.site import FederatedSite

    return FederatedSite(config, seed, fault_plans, **kwargs)


__all__ = ["ShardedFederatedSite", "create_site"]
