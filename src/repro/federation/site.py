"""The center-level (site) power manager.

The paper's hierarchy — cluster manager → job manager → node manager —
is explicitly recursive, and this module adds the next tier up: one
**site manager** owning a site-wide power budget, federating several
independent :class:`~repro.cluster.PowerManagedCluster` instances
(possibly on different platforms/backends) that all run in one shared
simulation engine.

Budget flow mirrors the cluster manager one level down:

* every **rebalance epoch** the site reads each live cluster's demand
  (active nodes × node peak — exactly the numerator of the paper's
  ``P_n = P_G/(N_k + N_i)``) and divides the site budget across
  clusters with :func:`~repro.federation.rebalance.split_site_budget`,
  respecting per-cluster min floors and max ceilings. Under-consuming
  clusters carry less weight, so their headroom flows to busy ones.
* the assigned cluster budget is installed by retuning that cluster's
  own manager (``config.global_cap_w`` + recompute) — the cluster tier
  then enforces it through the existing job → node → device chain,
  unchanged.
* **whole-cluster outages** ride the existing ``broker.down``/``up``
  event path: the site subscribes on each cluster's rank-0 broker, and
  when every crashable rank of a cluster is down it declares the
  cluster dead and reclaims its entire share in one recompute (the
  same one-recompute contract the cluster manager gives a single dead
  node). Recovery restores the cluster to the next split.

Everything is deterministic: per-cluster seeds derive from the site
seed via :meth:`~repro.simkernel.rng.RandomStreams.fork`, rebalance
epochs are ordinary simulator events, and the shared telemetry hub
gains ``federation_*`` metrics (see docs/observability.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.cluster import PowerManagedCluster
from repro.faults import FaultPlan
from repro.flux.jobspec import JobRecord, Jobspec
from repro.flux.message import Message
from repro.lifecycle.machine import AVAILABLE, DEGRADED, LifecycleRegistry
from repro.manager.cluster_manager import ManagerConfig
from repro.federation.rebalance import (
    cluster_demand_w,
    site_allocation_total_w,
    split_site_budget,
    validate_floors,
)
from repro.simkernel import RandomStreams, Simulator
from repro.telemetry import telemetry_of

#: Simulated seconds of site-manager work charged per live cluster per
#: rebalance (the split is a handful of FLOPs plus one RPC-free config
#: install; far below the cluster tier's own recompute cost).
FEDERATION_REBALANCE_COST_PER_CLUSTER_S = 2e-6


@dataclass(frozen=True)
class ClusterSpec:
    """One federated cluster's deployment configuration.

    ``min_share_w`` is the floor the site may never allocate below
    while the cluster is live; ``max_share_w`` (None = unbounded) caps
    its share. ``static_node_cap_w``/``policy`` are handed to the
    cluster's own :class:`~repro.manager.cluster_manager.ManagerConfig`
    untouched.
    """

    name: str
    platform: str = "lassen"
    n_nodes: int = 8
    fanout: int = 2
    monitor_strategy: str = "fanout"
    policy: str = "proportional"
    static_node_cap_w: Optional[float] = None
    node_peak_w: float = 3050.0
    min_share_w: float = 0.0
    max_share_w: Optional[float] = None


@dataclass(frozen=True)
class SiteConfig:
    """Site deployment: the budget, the epoch, and the member clusters.

    ``sharded`` opts into the sharded engine
    (:class:`~repro.federation.sharded.ShardedFederatedSite`): one
    simulation engine per cluster with epoch-synchronized rebalance
    barriers, instead of every cluster sharing one global event loop.
    The flag is honoured by :func:`~repro.federation.create_site`;
    constructing :class:`FederatedSite` directly ignores it.
    """

    site_budget_w: float
    clusters: Tuple[ClusterSpec, ...]
    rebalance_epoch_s: float = 10.0
    sharded: bool = False

    def validate(self) -> None:
        if not self.clusters:
            raise ValueError("a site needs at least one cluster")
        names = [spec.name for spec in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster names: {sorted(names)}")
        if self.rebalance_epoch_s <= 0:
            raise ValueError("rebalance_epoch_s must be > 0")
        for spec in self.clusters:
            if spec.n_nodes < 1:
                raise ValueError(f"cluster {spec.name!r} needs >= 1 node")
        validate_floors(
            self.site_budget_w,
            {s.name: s.min_share_w for s in self.clusters},
            {s.name: s.max_share_w for s in self.clusters},
        )


class FederatedSite:
    """N power-managed clusters under one site budget, one engine.

    Parameters
    ----------
    config:
        The :class:`SiteConfig` (validated here).
    seed:
        Site root seed; each cluster gets an independent substream-
        derived seed, so adding a cluster never perturbs its siblings.
    fault_plans:
        Optional cluster-name → :class:`~repro.faults.FaultPlan` map —
        cluster-scoped fault campaigns, injected by each cluster's own
        injector exactly as on a standalone cluster.
    sim:
        Existing engine to build on; None creates one. All clusters
        share it (and hence the telemetry hub).
    """

    def __init__(
        self,
        config: SiteConfig,
        seed: int = 0,
        fault_plans: Optional[Mapping[str, FaultPlan]] = None,
        sim: Optional[Simulator] = None,
        telemetry_enabled: bool = True,
        monitor_interval_s: float = 2.0,
    ) -> None:
        config.validate()
        fault_plans = dict(fault_plans or {})
        unknown = set(fault_plans) - {s.name for s in config.clusters}
        if unknown:
            raise ValueError(f"fault plans for unknown clusters: {sorted(unknown)}")
        self.config = config
        self.seed = int(seed)
        self.site_budget_w = float(config.site_budget_w)
        self.sim = sim if sim is not None else Simulator()
        self.telemetry = telemetry_of(self.sim)
        if not telemetry_enabled:
            self.telemetry.enabled = False

        streams = RandomStreams(seed=self.seed)
        self.specs: Dict[str, ClusterSpec] = {s.name: s for s in config.clusters}
        self.clusters: Dict[str, PowerManagedCluster] = {}
        #: Ranks each cluster's broker.down events report as dead —
        #: maintained purely from the event stream (the same path the
        #: cluster manager reacts on), never by peeking injector state.
        self._event_down_ranks: Dict[str, Set[int]] = {}
        self._cluster_down: Dict[str, bool] = {}
        for spec in config.clusters:
            cluster_seed = streams.fork(f"federation/{spec.name}").seed
            self.clusters[spec.name] = PowerManagedCluster(
                platform=spec.platform,
                n_nodes=spec.n_nodes,
                seed=cluster_seed,
                fanout=spec.fanout,
                manager_config=ManagerConfig(
                    global_cap_w=None,  # installed by the first rebalance
                    policy=spec.policy,
                    static_node_cap_w=spec.static_node_cap_w,
                    node_peak_w=spec.node_peak_w,
                ),
                monitor_strategy=spec.monitor_strategy,
                monitor_interval_s=monitor_interval_s,
                fault_plan=fault_plans.get(spec.name),
                sim=self.sim,
                hostname_prefix=spec.name,
            )
            self._event_down_ranks[spec.name] = set()
            self._cluster_down[spec.name] = False
            self._watch_cluster(spec.name)

        #: Cluster-grain lifecycle, mirroring the node-grain registry
        #: inside each cluster manager (enroll → available here; a
        #: whole-cluster outage degrades, recovery restores).
        self.lifecycle = LifecycleRegistry(
            sorted(self.clusters), "cluster", self.telemetry
        )
        for name in self.lifecycle.entities():
            self.lifecycle.ensure(name, AVAILABLE, reason="enroll", t=self.sim.now)

        #: name → last share installed by a rebalance (0.0 while down).
        self.assigned_shares: Dict[str, float] = {}
        #: What the last split must sum to (budget, or the binding
        #: ceilings total) — the site_budget invariant's exactness ref.
        self.expected_total_w: float = 0.0
        self.last_rebalance_t: float = 0.0
        #: (t, reason, {name: share}, live-names) — the Fig-5-style
        #: site timeline every experiment/invariant reads.
        self.budget_log: List[Tuple[float, str, Dict[str, float], Tuple[str, ...]]] = []
        self._expected_jobs: Dict[str, int] = {n: 0 for n in self.clusters}

        self._rebalance("initial")
        self._epoch_event = self.sim.schedule_periodic(
            config.rebalance_epoch_s,
            self._rebalance,
            "epoch",
            start_delay=config.rebalance_epoch_s,
        )

    # ------------------------------------------------------------------
    # Outage tracking (broker.down / broker.up event path)
    # ------------------------------------------------------------------
    def _watch_cluster(self, name: str) -> None:
        broker0 = self.clusters[name].instance.brokers[0]

        def _on_broker_event(msg: Message, _name: str = name) -> None:
            if msg.topic == "broker.down":
                self._event_down_ranks[_name].add(int(msg.payload["rank"]))
            elif msg.topic == "broker.up":
                self._event_down_ranks[_name].discard(int(msg.payload["rank"]))
            else:
                return
            self._update_liveness(_name)

        broker0.subscribe("broker.", _on_broker_event)

    def _update_liveness(self, name: str) -> None:
        n = self.specs[name].n_nodes
        # Rank 0 hosts the root services and cannot crash, so "every
        # crashable rank down" is total management-plane loss.
        down = n >= 2 and len(self._event_down_ranks[name]) >= n - 1
        if down == self._cluster_down[name]:
            return
        self._cluster_down[name] = down
        tel = self.telemetry
        kind = "outage" if down else "recovery"
        self.lifecycle.transition(
            name, DEGRADED if down else AVAILABLE, reason=kind, t=self.sim.now
        )
        tel.metrics.counter(
            f"federation_cluster_{'outages' if down else 'recoveries'}_total",
            labels={"cluster": name},
            help=f"whole-cluster {kind} transitions seen by the site manager",
        ).inc()
        tel.tracer.instant(
            f"federation.cluster_{kind}", "federation", cluster=name,
        )
        # Reclaim (or restore) the cluster's share in one recompute.
        self._rebalance(kind)

    def cluster_is_down(self, name: str) -> bool:
        return self._cluster_down[name]

    @property
    def down_clusters(self) -> List[str]:
        return sorted(n for n, d in self._cluster_down.items() if d)

    @property
    def live_clusters(self) -> List[str]:
        return sorted(n for n, d in self._cluster_down.items() if not d)

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------
    def cluster_demand(self, name: str) -> float:
        """Live demand (W) of one cluster: active nodes × node peak."""
        cluster = self.clusters[name]
        manager = cluster.manager
        active = (
            manager.cluster.job_level.active_node_count()
            if manager is not None
            else 0
        )
        return cluster_demand_w(active, self.specs[name].node_peak_w)

    def _install_cluster_budget(self, name: str, share_w: float) -> None:
        manager = self.clusters[name].manager
        if manager is None:  # pragma: no cover - specs always load one
            return
        root = manager.cluster
        root.config = replace(root.config, global_cap_w=share_w)
        root._recompute()

    def _rebalance(self, reason: str = "epoch") -> None:
        live = [n for n in sorted(self.clusters) if not self._cluster_down[n]]
        demands = {n: self.cluster_demand(n) for n in live}
        floors = {n: self.specs[n].min_share_w for n in live}
        ceilings = {n: self.specs[n].max_share_w for n in live}
        shares = split_site_budget(self.site_budget_w, demands, floors, ceilings)
        self.assigned_shares = {n: 0.0 for n in sorted(self.clusters)}
        for name in live:
            self.assigned_shares[name] = shares[name]
            self._install_cluster_budget(name, shares[name])
        for name in sorted(self.clusters):
            if self._cluster_down[name]:
                # A dead cluster spends nothing; zeroing its installed
                # budget keeps any stale bookkeeping harmless.
                self._install_cluster_budget(name, 0.0)
        self.expected_total_w = site_allocation_total_w(
            self.site_budget_w, demands, ceilings
        )
        self.last_rebalance_t = self.sim.now
        self.budget_log.append(
            (self.sim.now, reason, dict(self.assigned_shares), tuple(live))
        )

        tel = self.telemetry
        tel.metrics.counter(
            "federation_rebalances_total",
            labels={"reason": reason},
            help="site-level budget rebalances, by trigger",
        ).inc()
        tel.metrics.gauge(
            "federation_site_budget_w",
            help="current site-wide power budget",
        ).set(self.site_budget_w)
        tel.metrics.gauge(
            "federation_live_clusters",
            help="clusters currently counted live by the site manager",
        ).set(len(live))
        for name in sorted(self.clusters):
            tel.metrics.gauge(
                "federation_cluster_budget_w",
                labels={"cluster": name},
                help="budget currently assigned to each cluster (0 while down)",
            ).set(self.assigned_shares[name])
            tel.metrics.gauge(
                "federation_cluster_demand_w",
                labels={"cluster": name},
                help="live demand (active nodes x node peak) per cluster",
            ).set(demands.get(name, 0.0))
        tel.tracer.instant(
            "federation.rebalance", "federation", reason=reason,
            live=len(live), total_w=sum(shares.values()),
        )
        tel.accountant.charge(
            "federation",
            FEDERATION_REBALANCE_COST_PER_CLUSTER_S * max(1, len(live)),
        )

    # ------------------------------------------------------------------
    # Site budget retuning
    # ------------------------------------------------------------------
    def retune_site_budget(self, new_budget_w: float) -> None:
        """Change the site budget and re-split immediately."""
        validate_floors(
            new_budget_w,
            {s.name: s.min_share_w for s in self.config.clusters},
            {s.name: s.max_share_w for s in self.config.clusters},
        )
        self.site_budget_w = float(new_budget_w)
        self.telemetry.metrics.counter(
            "federation_site_retunes_total",
            help="site-wide budget retunes applied",
        ).inc()
        self._rebalance("retune")

    def schedule_retune(self, when: float, new_budget_w: float) -> None:
        self.sim.schedule_at(when, self.retune_site_budget, new_budget_w)

    # ------------------------------------------------------------------
    # Jobs / running
    # ------------------------------------------------------------------
    def cluster(self, name: str) -> PowerManagedCluster:
        return self.clusters[name]

    def submit(self, name: str, spec: Jobspec) -> JobRecord:
        self._expected_jobs[name] += 1
        return self.clusters[name].submit(spec)

    def submit_at(self, name: str, spec: Jobspec, when: float) -> None:
        self._expected_jobs[name] += 1
        self.clusters[name].submit_at(spec, when)

    def all_complete(self) -> bool:
        """Every job submitted *through the site* reached a terminal state.

        Deferred :meth:`submit_at` arrivals count as incomplete until
        they materialise, so running to completion at t=0 with future
        arrivals pending doesn't return early.
        """
        for name, cluster in self.clusters.items():
            jm = cluster.instance.jobmanager
            if len(jm.jobs) < self._expected_jobs[name]:
                return False
            if not jm.all_complete():
                return False
        return True

    def run_for(self, duration_s: float) -> float:
        return self.sim.run(until=self.sim.now + duration_s)

    def run_until_complete(
        self, timeout_s: float = 1e7, max_events: int = 100_000_000
    ) -> float:
        """Run until every job on every cluster reaches a terminal state."""
        deadline = self.sim.now + timeout_s
        count = 0
        while not self.all_complete():
            if not self.sim.step():
                raise RuntimeError("event heap drained with jobs still active")
            count += 1
            if count > max_events:
                raise RuntimeError("run_until_complete exceeded max_events")
            if self.sim.now > deadline:
                raise RuntimeError(
                    f"jobs still active at t={self.sim.now:.0f}s (timeout)"
                )
        return self.sim.now

    def site_digest(self) -> str:
        """Canonical digest of this run's externally visible outcome.

        Built through :mod:`repro.federation.digest` — the stable
        combination of per-cluster shard digests plus the rebalance
        timeline — so a sharded run of the same config and seed
        (:mod:`repro.federation.sharded`) produces the identical value.
        """
        from repro.federation.digest import site_digest_of

        return site_digest_of(self)

    # ------------------------------------------------------------------
    # Crash recovery (see repro.lifecycle.snapshot)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-able site bookkeeping (this tier only).

        Member clusters snapshot themselves through
        :func:`repro.lifecycle.snapshot.snapshot_site`, which nests
        their artifacts next to this dict. ``event_down_ranks`` /
        ``cluster_down`` must ride along: a restore that loses them
        mid-flap re-counts the next ``broker.up`` against an empty dead
        set, so the cluster is never declared recovered and the next
        ``split_site_budget`` runs without it. ``expected_jobs`` keeps
        :meth:`all_complete` from returning early after a restore with
        deferred arrivals still pending.
        """
        return {
            "site_budget_w": self.site_budget_w,
            "assigned_shares": dict(self.assigned_shares),
            "expected_total_w": self.expected_total_w,
            "last_rebalance_t": self.last_rebalance_t,
            "budget_log": [
                [t, reason, dict(shares), list(live)]
                for t, reason, shares, live in self.budget_log
            ],
            "expected_jobs": dict(self._expected_jobs),
            "event_down_ranks": {
                name: sorted(ranks)
                for name, ranks in self._event_down_ranks.items()
            },
            "cluster_down": dict(self._cluster_down),
            "lifecycle": self.lifecycle.snapshot(),
        }

    def restore_state(self, state: dict) -> None:
        """Rehydrate from :meth:`snapshot_state`; ``{}`` wipes to fresh.

        Silent: no rebalance is triggered — the nested cluster restores
        carry the installed ``global_cap_w`` budgets, and the periodic
        epoch event (untouched by a restore) picks the schedule back up.
        """
        budget = state.get("site_budget_w")
        if budget is not None:
            self.site_budget_w = float(budget)
        self.assigned_shares = {
            str(n): float(w)
            for n, w in (state.get("assigned_shares") or {}).items()
        }
        self.expected_total_w = float(state.get("expected_total_w", 0.0))
        self.last_rebalance_t = float(state.get("last_rebalance_t", 0.0))
        self.budget_log = [
            (
                float(t),
                str(reason),
                {str(n): float(w) for n, w in shares.items()},
                tuple(live),
            )
            for t, reason, shares, live in state.get("budget_log") or []
        ]
        self._expected_jobs = {n: 0 for n in self.clusters}
        for name, count in (state.get("expected_jobs") or {}).items():
            self._expected_jobs[str(name)] = int(count)
        self._event_down_ranks = {n: set() for n in self.clusters}
        for name, ranks in (state.get("event_down_ranks") or {}).items():
            self._event_down_ranks[str(name)] = {int(r) for r in ranks}
        self._cluster_down = {n: False for n in self.clusters}
        for name, down in (state.get("cluster_down") or {}).items():
            self._cluster_down[str(name)] = bool(down)
        self.lifecycle.restore(state.get("lifecycle"))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        return {
            "site_budget_w": self.site_budget_w,
            "rebalance_epoch_s": self.config.rebalance_epoch_s,
            "clusters": {
                name: {
                    "platform": self.specs[name].platform,
                    "n_nodes": self.specs[name].n_nodes,
                    "assigned_w": self.assigned_shares.get(name, 0.0),
                    "demand_w": self.cluster_demand(name),
                    "down": self._cluster_down[name],
                }
                for name in sorted(self.clusters)
            },
        }
