"""Site-level federation: one budget over many clusters.

The center-level tier above the paper's cluster manager — see
docs/federation.md and :mod:`repro.federation.site`.
"""

from repro.federation.rebalance import (
    REL_EPS,
    cluster_demand_w,
    site_allocation_total_w,
    split_site_budget,
    validate_floors,
)
from repro.federation.digest import combine_site_digest, shard_digest, site_digest_of
from repro.federation.sharded import ShardedFederatedSite, create_site
from repro.federation.site import ClusterSpec, FederatedSite, SiteConfig

__all__ = [
    "REL_EPS",
    "ClusterSpec",
    "FederatedSite",
    "ShardedFederatedSite",
    "SiteConfig",
    "cluster_demand_w",
    "combine_site_digest",
    "create_site",
    "shard_digest",
    "site_allocation_total_w",
    "site_digest_of",
    "split_site_budget",
    "validate_floors",
]
