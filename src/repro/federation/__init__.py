"""Site-level federation: one budget over many clusters.

The center-level tier above the paper's cluster manager — see
docs/federation.md and :mod:`repro.federation.site`.
"""

from repro.federation.rebalance import (
    REL_EPS,
    cluster_demand_w,
    site_allocation_total_w,
    split_site_budget,
    validate_floors,
)
from repro.federation.site import ClusterSpec, FederatedSite, SiteConfig

__all__ = [
    "REL_EPS",
    "ClusterSpec",
    "FederatedSite",
    "SiteConfig",
    "cluster_demand_w",
    "site_allocation_total_w",
    "split_site_budget",
    "validate_floors",
]
