"""Site-level budget arithmetic (pure; property-tested).

This is :func:`repro.manager.policies.proportional.per_node_share` /
``split_budget`` lifted one level up the paper's recursive hierarchy:
where the cluster manager divides a *cluster* budget over jobs by node
count, the site manager divides a *site* budget over clusters by live
power demand, with per-cluster floors and ceilings.

Everything here is pure arithmetic over plain dicts — no simulator, no
RNG, no telemetry — so the Hypothesis suite
(``tests/test_federation_rebalance_properties.py``) can pin the three
contract properties directly:

* **conservation** — shares sum to the site budget exactly (to the
  binding total of the ceilings, when ceilings cap the distribution);
* **monotonicity** — raising one cluster's demand never lowers its
  share;
* **floor safety** — a live cluster is never allocated below its floor
  (feasibility requires Σ floors ≤ budget, validated up front).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

#: Relative tolerance for the float water-filling arithmetic.
REL_EPS = 1e-9


def cluster_demand_w(active_nodes: int, node_peak_w: float) -> float:
    """A cluster's live power demand: what its own manager would grant
    every allocated node when unconstrained (``N_k × peak`` — the
    numerator of the paper's ``P_n = P_G / (N_k + N_i)``)."""
    if active_nodes < 0:
        raise ValueError(f"active_nodes must be >= 0, got {active_nodes}")
    return float(active_nodes) * float(node_peak_w)


def validate_floors(
    site_budget_w: float,
    floors: Mapping[str, float],
    ceilings: Optional[Mapping[str, Optional[float]]] = None,
) -> None:
    """Raise ValueError unless every floor is satisfiable at once."""
    if site_budget_w < 0:
        raise ValueError(f"site budget must be >= 0, got {site_budget_w}")
    total = 0.0
    for name in sorted(floors):
        lo = float(floors[name])
        if lo < 0:
            raise ValueError(f"cluster {name!r} floor must be >= 0, got {lo}")
        hi = None if ceilings is None else ceilings.get(name)
        if hi is not None and float(hi) < lo:
            raise ValueError(
                f"cluster {name!r} ceiling {hi} below its floor {lo}"
            )
        total += lo
    if total > site_budget_w * (1.0 + REL_EPS) + REL_EPS:
        raise ValueError(
            f"sum of cluster floors {total} W exceeds site budget "
            f"{site_budget_w} W — floors are not satisfiable"
        )


def split_site_budget(
    site_budget_w: float,
    demands: Mapping[str, float],
    floors: Optional[Mapping[str, float]] = None,
    ceilings: Optional[Mapping[str, Optional[float]]] = None,
    weights: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Divide the site budget over live clusters by demand weight.

    ``demands`` maps cluster name → live demand (W); only clusters
    present here participate (a downed cluster is simply absent, so its
    share is reclaimed by the same recompute that notices the outage).
    ``floors``/``ceilings`` clamp each cluster's share into
    ``[floor, ceiling]``; missing entries mean 0 / unbounded.
    ``weights`` (fairshare priorities, missing → 1.0) scale each
    cluster's fill weight to ``wn_c × demand_c`` after normalizing by
    the maximum weight; ``None`` — and, because ``w / w == 1.0`` and
    ``1.0 × d == d`` in IEEE-754, all-equal weights — leaves the fill
    bitwise identical to the unweighted split (the tenancy property
    suite asserts ``==`` on this).

    The fill is the cluster-manager rule lifted one level: distribute
    the whole budget proportionally to demand, then pin any cluster
    that fell below its floor at the floor (starved clusters first —
    floors are a safety property) or rose above its ceiling at the
    ceiling, and re-divide the remainder over the rest. Each round pins
    at least one cluster, so the loop terminates in ≤ N rounds. With
    all-zero demand the remainder is split equally (the idle-site
    case). Conservation: Σ shares equals ``site_budget_w`` exactly
    unless every unpinned cluster hit its ceiling, in which case it
    equals ``min(site_budget_w, Σ ceilings)``.
    """
    names = sorted(demands)
    if not names:
        return {}
    lo = {c: float((floors or {}).get(c, 0.0) or 0.0) for c in names}
    hi = {c: (ceilings or {}).get(c) for c in names}
    validate_floors(site_budget_w, lo, hi)
    for c in names:
        if float(demands[c]) < 0:
            raise ValueError(f"cluster {c!r} demand must be >= 0")
    if weights is None:
        eff = {c: float(demands[c]) for c in names}
    else:
        from repro.tenancy.fairshare import normalize_weights

        wn = normalize_weights(weights, names)
        eff = {c: wn[c] * float(demands[c]) for c in names}

    pinned: Dict[str, float] = {}
    while True:
        free = [c for c in names if c not in pinned]
        if not free:
            break
        remaining = max(0.0, site_budget_w - sum(pinned.values()))
        weight = {c: eff[c] for c in free}
        total_w = sum(weight.values())
        if total_w <= 0.0:
            prop = {c: remaining / len(free) for c in free}
        else:
            prop = {c: remaining * weight[c] / total_w for c in free}
        # Floors first: pinning a starved cluster shrinks everyone
        # else's pool, which can starve another — handled next round.
        starved = [
            c for c in free if prop[c] < lo[c] * (1.0 - REL_EPS) - REL_EPS
        ]
        if starved:
            for c in starved:
                pinned[c] = lo[c]
            continue
        over = [
            c
            for c in free
            if hi[c] is not None
            and prop[c] > float(hi[c]) * (1.0 + REL_EPS) + REL_EPS
        ]
        if over:
            for c in over:
                pinned[c] = float(hi[c])
            continue
        for c in free:
            share = prop[c]
            if share < lo[c]:
                share = lo[c]
            if hi[c] is not None and share > float(hi[c]):
                share = float(hi[c])
            pinned[c] = share
        break

    # Top-up: a floor pin followed by binding ceilings can leave budget
    # stranded (the floor-pinned cluster was skipped when the ceiling
    # surplus flowed back). Pour any leftover into clusters still below
    # their ceiling — proportionally to demand, equally when idle —
    # until the conserved target is hit or every ceiling binds.
    target = site_allocation_total_w(site_budget_w, demands, ceilings)
    tol = REL_EPS * max(1.0, target)
    while target - sum(pinned.values()) > tol:
        leftover = target - sum(pinned.values())
        open_c = [
            c for c in names if hi[c] is None or pinned[c] < float(hi[c]) - tol
        ]
        if not open_c:  # pragma: no cover - target <= sum of ceilings
            break
        weight = {c: eff[c] for c in open_c}
        total_w = sum(weight.values())
        for c in open_c:
            add = (
                leftover / len(open_c)
                if total_w <= 0.0
                else leftover * weight[c] / total_w
            )
            new = pinned[c] + add
            if hi[c] is not None and new > float(hi[c]):
                new = float(hi[c])
            pinned[c] = new
    return {c: pinned[c] for c in names}


def site_allocation_total_w(
    site_budget_w: float,
    demands: Mapping[str, float],
    ceilings: Optional[Mapping[str, Optional[float]]] = None,
) -> float:
    """The exact total :func:`split_site_budget` conserves.

    Equals the site budget unless the live clusters' ceilings bind
    first. The simtest ``site_budget`` invariant compares the installed
    cluster budgets against this at every rebalance epoch.
    """
    if not demands:
        return 0.0
    total_ceiling = 0.0
    for c in sorted(demands):
        hi = None if ceilings is None else ceilings.get(c)
        if hi is None:
            return float(site_budget_w)
        total_ceiling += float(hi)
    return min(float(site_budget_w), total_ceiling)
