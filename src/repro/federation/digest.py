"""Canonical site digests shared by the one-engine and sharded tiers.

A *shard digest* pins one member cluster's externally visible outcome
(finished-job metrics plus the fault log); the *site digest* is the
stable combination of the per-shard digests with the site-tier timeline
(budget log and end time). Both the classic single-engine
:class:`~repro.federation.site.FederatedSite` and the sharded engine
(:mod:`repro.federation.sharded`) build their digests through these
helpers, so "sharded and unsharded produce the same site digest" is a
byte-for-byte comparison of the same canonical JSON — not two
hand-rolled formats that happen to agree today.

Floats are rounded to 9 decimals (the simtest digest convention) so the
digest survives platform-level printf differences while still pinning
every physically meaningful divergence.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Sequence, Tuple


def _canonical(obj: Any) -> Any:
    """Round floats / sort keys for a stable cross-run JSON digest."""
    if isinstance(obj, float):
        return round(obj, 9)
    if isinstance(obj, dict):
        return {k: _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    return obj


def canonical_digest(obj: Any) -> str:
    """SHA-256 over the canonical JSON encoding of ``obj``."""
    blob = json.dumps(_canonical(obj), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def cluster_shard_summary(cluster) -> Dict[str, Any]:
    """One cluster's digest-relevant outcome.

    Works on any object with the :class:`~repro.cluster.
    PowerManagedCluster` results surface (``all_metrics`` /
    ``faults.injected``) — which is exactly what both the federated
    site's members and a shard's private cluster expose.
    """
    jobs: Dict[str, Any] = {}
    for jobid, m in sorted(cluster.all_metrics().items()):
        jobs[str(jobid)] = {
            "runtime_s": m.runtime_s,
            "avg_node_power_w": m.avg_node_power_w,
            "avg_node_energy_kj": m.avg_node_energy_kj,
        }
    return {
        "jobs": jobs,
        "faults": [list(entry) for entry in cluster.faults.injected],
    }


def shard_digest(summary: Dict[str, Any]) -> str:
    """Digest of one shard's :func:`cluster_shard_summary`."""
    return canonical_digest(summary)


def combine_site_digest(
    t_end: float,
    budget_log: Sequence[Tuple[float, str, Dict[str, float], Tuple[str, ...]]],
    shard_digests: Dict[str, str],
) -> str:
    """Stable combination of per-shard digests plus the site timeline.

    ``shard_digests`` maps cluster name → :func:`shard_digest`; key
    order is irrelevant (the canonical encoding sorts it).
    """
    summary = {
        "t_end": t_end,
        "rebalances": [
            {"t": t, "reason": reason, "shares": dict(shares),
             "live": list(live)}
            for t, reason, shares, live in budget_log
        ],
        "shards": dict(shard_digests),
    }
    return canonical_digest(summary)


def site_digest_of(site) -> str:
    """Site digest for anything exposing ``clusters``/``budget_log``/``sim``."""
    shards = {
        name: shard_digest(cluster_shard_summary(cluster))
        for name, cluster in site.clusters.items()
    }
    return combine_site_digest(site.sim.now, site.budget_log, shards)


__all__ = [
    "canonical_digest",
    "cluster_shard_summary",
    "shard_digest",
    "combine_site_digest",
    "site_digest_of",
]
