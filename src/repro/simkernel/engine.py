"""The discrete-event simulator core.

The engine keeps a binary heap of scheduled callbacks keyed by
``(time, priority, sequence)``. The sequence number makes the ordering a
deterministic total order: two events scheduled for the same simulated
time and priority fire in the order they were scheduled, regardless of
heap internals. Determinism of the whole reproduction rests on this.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled on the simulator's event heap.

    Instances are returned by :meth:`Simulator.schedule` and may be
    cancelled. Comparison order is the execution order.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the callback from running. Safe to call more than once."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulated time in seconds (default 0.0).

    Notes
    -----
    Time is a ``float`` number of seconds. Callbacks run synchronously;
    a callback may schedule further events (including at the current
    time, which run after all currently-pending same-time events of
    equal priority).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._processed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still on the heap."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative and finite. Lower ``priority``
        values run first among events at the same simulated time.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now}): in the past"
            )
        ev = ScheduledEvent(
            time=float(time),
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            args=args,
        )
        heapq.heappush(self._heap, ev)
        return ev

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event. Returns False if the heap is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if ev.time < self._now:
                raise SimulationError("event heap corrupted: time went backwards")
            self._now = ev.time
            self._processed += 1
            ev.callback(*ev.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events until the heap drains or ``until`` is reached.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time; the
            clock is advanced to ``until`` itself so periodic processes
            observe a consistent end time.
        max_events:
            Safety valve; raise :class:`SimulationError` if exceeded.

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        count = 0
        try:
            while self._heap:
                # Peek past cancelled events without executing.
                while self._heap and self._heap[0].cancelled:
                    heapq.heappop(self._heap)
                if not self._heap:
                    break
                if until is not None and self._heap[0].time > until:
                    self._now = max(self._now, float(until))
                    return self._now
                self.step()
                count += 1
                if max_events is not None and count > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
            if until is not None:
                self._now = max(self._now, float(until))
            return self._now
        finally:
            self._running = False
