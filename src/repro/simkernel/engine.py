"""The discrete-event simulator core.

The engine keeps a binary heap of ``(time, priority, seq, event)``
tuples. The sequence number makes the ordering a deterministic total
order: two events scheduled for the same simulated time and priority
fire in the order they were scheduled, regardless of heap internals.
Determinism of the whole reproduction rests on this.

Hot-path design (see docs/performance.md):

* heap entries are plain tuples, so ordering uses C-level tuple
  comparison instead of a generated dataclass ``__lt__`` — the unique
  ``seq`` guarantees comparison never reaches the event object;
* ``pending()`` is an O(1) maintained counter, decremented on
  ``cancel()`` and on pop;
* cancelled entries are swept lazily: when more than half the heap is
  dead weight the heap is compacted in place, so long runs with
  frequently re-scheduled timers stay bounded;
* ``schedule_periodic()`` re-arms one reused event per series instead
  of allocating an event per tick. It still draws one sequence number
  per tick *before* invoking the callback, so the total order is
  exactly the order a re-scheduling one-shot timer would produce.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Optional

# Compact only when the dead fraction exceeds one half and there is
# enough garbage for the O(n) sweep to pay for itself.
_COMPACT_MIN_CANCELLED = 64


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. scheduling in the past)."""


class ScheduledEvent:
    """A callback scheduled on the simulator's event heap.

    Instances are returned by :meth:`Simulator.schedule` and may be
    cancelled. Execution order is ``(time, priority, seq)``; for
    periodic events ``time`` tracks the nominal tick grid.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "_sim", "_on_heap")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = cancelled
        self._sim: Optional["Simulator"] = None
        self._on_heap = False

    def cancel(self) -> None:
        """Prevent the callback from running. Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._on_heap and self._sim is not None:
            self._sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return (
            f"ScheduledEvent(t={self.time!r}, prio={self.priority}, "
            f"seq={self.seq}, {state})"
        )


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    start_time:
        Initial simulated time in seconds (default 0.0).

    Notes
    -----
    Time is a ``float`` number of seconds. Callbacks run synchronously;
    a callback may schedule further events (including at the current
    time, which run after all currently-pending same-time events of
    equal priority).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Heap of (time, priority, seq, event) tuples; seq is unique so
        # comparisons never reach the event object.
        self._heap: list = []
        self._seq = itertools.count()
        self._running = False
        self._processed = 0
        self._live = 0  # scheduled, not yet fired or cancelled
        self._cancelled = 0  # cancelled entries still on the heap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._processed

    def pending(self) -> int:
        """Number of not-yet-cancelled events still on the heap (O(1))."""
        return self._live

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative and finite. Lower ``priority``
        values run first among events at the same simulated time.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        if not math.isfinite(delay):
            raise SimulationError(f"delay must be finite, got {delay}")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        time = float(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now={self._now}): in the past"
            )
        seq = next(self._seq)
        ev = ScheduledEvent(time, priority, seq, callback, args)
        ev._sim = self
        ev._on_heap = True
        heapq.heappush(self._heap, (time, priority, seq, ev))
        self._live += 1
        return ev

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
        priority: int = 0,
        first_time: Optional[float] = None,
    ) -> ScheduledEvent:
        """Run ``callback(*args)`` every ``period`` seconds, reusing one event.

        The returned event is re-armed from the nominal tick grid
        *before* each callback invocation (drawing a fresh sequence
        number), so the execution order is byte-identical to a one-shot
        timer that re-schedules itself each tick — without the per-tick
        event allocation. ``cancel()`` on the returned event stops the
        series. A tick whose nominal time has already passed fires at
        the current time; the nominal grid itself never shifts.

        ``first_time`` pins the first nominal tick to an absolute time
        (callers that already computed the grid pass it to avoid a
        float round-trip); otherwise the first tick is ``start_delay``
        (default one period) from now.
        """
        period = float(period)
        if period <= 0 or not math.isfinite(period):
            raise SimulationError(f"period must be positive and finite, got {period}")
        if first_time is not None:
            first = float(first_time)
        else:
            first = self._now + (period if start_delay is None else float(start_delay))
        seq = next(self._seq)
        ev = ScheduledEvent(first, priority, seq, callback, args)
        ev._sim = self

        def _tick() -> None:
            # Re-arm before the callback so seq allocation matches the
            # legacy re-scheduling order exactly.
            ev.time += period
            ev.seq = next(self._seq)
            ev._on_heap = True
            when = ev.time if ev.time > self._now else self._now
            heapq.heappush(self._heap, (when, ev.priority, ev.seq, ev))
            self._live += 1
            callback(*args)

        ev.callback = _tick
        ev.args = ()
        ev._on_heap = True
        when = first if first > self._now else self._now
        heapq.heappush(self._heap, (when, priority, seq, ev))
        self._live += 1
        return ev

    # ------------------------------------------------------------------
    # Cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by ``ScheduledEvent.cancel`` while the event is heaped."""
        self._live -= 1
        self._cancelled += 1
        if (
            self._cancelled > _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        # In place: run() holds a local reference to the heap list.
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[3].cancelled]
        heapq.heapify(heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty.

        Non-mutating with respect to live events (cancelled entries are
        discarded in passing, exactly as :meth:`step` would). Shard
        drivers (:mod:`repro.federation.sharded`) use this to interleave
        several engines in global time order without executing anything.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Run the next pending event. Returns False if the heap is empty."""
        heap = self._heap
        while heap:
            time, _prio, _seq, ev = heapq.heappop(heap)
            if ev.cancelled:
                self._cancelled -= 1
                continue
            if time < self._now:
                raise SimulationError("event heap corrupted: time went backwards")
            ev._on_heap = False
            self._live -= 1
            self._now = time
            self._processed += 1
            ev.callback(*ev.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events until the heap drains or ``until`` is reached.

        Parameters
        ----------
        until:
            Stop once the next event lies strictly beyond this time; the
            clock is advanced to ``until`` itself so periodic processes
            observe a consistent end time.
        max_events:
            Safety valve; raise :class:`SimulationError` rather than
            execute more than this many events (the first ``max_events``
            events do run).

        Returns the simulated time at which the run stopped.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        count = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap:
                # Peek past cancelled events without executing.
                while heap and heap[0][3].cancelled:
                    heappop(heap)
                    self._cancelled -= 1
                if not heap:
                    break
                if until is not None and heap[0][0] > until:
                    self._now = max(self._now, float(until))
                    return self._now
                if max_events is not None and count >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                time, _prio, _seq, ev = heappop(heap)
                if time < self._now:
                    raise SimulationError(
                        "event heap corrupted: time went backwards"
                    )
                ev._on_heap = False
                self._live -= 1
                self._now = time
                self._processed += 1
                ev.callback(*ev.args)
                count += 1
            if until is not None:
                self._now = max(self._now, float(until))
            return self._now
        finally:
            self._running = False
