"""Generator-based simulation processes.

A process is a Python generator driven by the simulator. The generator
yields *waitables*:

* ``Timeout(dt)`` — resume after ``dt`` simulated seconds.
* ``SimEvent()`` — resume when someone calls :meth:`SimEvent.succeed`
  (or raise if :meth:`SimEvent.fail` is called).
* another ``Process`` — resume when that process finishes; the yielded
  value is the process's return value.
* ``AllOf([...])`` / ``AnyOf([...])`` — composite waits.

The value passed to ``succeed(value)`` is delivered as the result of the
``yield`` expression, which lets request/response protocols (the Flux
RPC layer) be written in direct style.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, List, Optional

from repro.simkernel.engine import Simulator


class ProcessKilled(Exception):
    """Injected into a generator when its process is killed."""


class Waitable:
    """Base class for things a process may ``yield``."""

    def _subscribe(self, sim: Simulator, process: "Process") -> None:
        raise NotImplementedError


class Timeout(Waitable):
    """Suspend the yielding process for ``delay`` simulated seconds."""

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = float(delay)
        self.value = value

    def _subscribe(self, sim: Simulator, process: "Process") -> None:
        process._pending_event = sim.schedule(
            self.delay, process._resume, self.value
        )


class SimEvent(Waitable):
    """A one-shot event that processes can wait on.

    May be succeeded or failed exactly once; waiting on an already
    triggered event resumes the waiter immediately (at the current
    simulated time).
    """

    _PENDING = object()

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._value: Any = SimEvent._PENDING
        self._error: Optional[BaseException] = None
        self._done = False
        self._waiters: List[Process] = []

    @property
    def triggered(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        if not self._done:
            raise RuntimeError("event not yet triggered")
        if self._error is not None:
            raise self._error
        return self._value

    def succeed(self, value: Any = None) -> "SimEvent":
        if self._done:
            raise RuntimeError("event already triggered")
        self._done = True
        self._value = value
        for proc in self._waiters:
            self._sim.schedule(0.0, proc._resume, value)
        self._waiters.clear()
        return self

    def fail(self, error: BaseException) -> "SimEvent":
        if self._done:
            raise RuntimeError("event already triggered")
        self._done = True
        self._error = error
        for proc in self._waiters:
            self._sim.schedule(0.0, proc._throw, error)
        self._waiters.clear()
        return self

    def _subscribe(self, sim: Simulator, process: "Process") -> None:
        if self._done:
            if self._error is not None:
                process._pending_event = sim.schedule(
                    0.0, process._throw, self._error
                )
            else:
                process._pending_event = sim.schedule(
                    0.0, process._resume, self._value
                )
        else:
            self._waiters.append(process)


class _CompositeLeg:
    """One branch of a composite wait (:class:`AllOf` / :class:`AnyOf`).

    Duck-types the slice of the :class:`Process` interface the waitable
    protocol touches (``_resume`` / ``_throw`` / ``_pending_event``)
    without a generator frame, a done-event or a StopIteration cycle
    per branch — a whole-machine query fans out hundreds of branches.
    The schedule/subscribe call sequence is exactly the one the old
    generator-based waiter produced (a 0-delay kick at construction,
    then one subscription to the item), so same-time event ordering —
    and therefore seeded runs — is bit-for-bit unchanged.
    """

    __slots__ = ("_composite", "_idx", "_item", "_pending_event")

    def __init__(self, sim: Simulator, composite, idx: int, item: Waitable) -> None:
        self._composite = composite
        self._idx = idx
        self._item = item
        self._pending_event = sim.schedule(0.0, self._kick, None)

    def _kick(self, _value: Any) -> None:
        self._pending_event = None
        self._item._subscribe(self._composite._sim, self)

    def _resume(self, value: Any) -> None:
        self._pending_event = None
        self._composite._leg_done(self._idx, value)

    def _throw(self, error: BaseException) -> None:
        self._pending_event = None
        self._composite._leg_failed(error)


class AllOf(Waitable):
    """Wait for every waitable in a collection; yields a list of results."""

    def __init__(self, sim: Simulator, waitables: Iterable[Waitable]) -> None:
        self._sim = sim
        self._items = list(waitables)
        self._results: List[Any] = []
        self._remaining = 0
        self._failed = False
        self._process: Optional["Process"] = None

    def _subscribe(self, sim: Simulator, process: "Process") -> None:
        if not self._items:
            process._pending_event = sim.schedule(0.0, process._resume, [])
            return
        self._results = [None] * len(self._items)
        self._remaining = len(self._items)
        self._failed = False
        self._process = process
        for i, item in enumerate(self._items):
            _CompositeLeg(sim, self, i, item)

    def _leg_done(self, idx: int, value: Any) -> None:
        if self._failed:
            return
        self._results[idx] = value
        self._remaining -= 1
        if self._remaining == 0:
            self._process._resume(self._results)

    def _leg_failed(self, error: BaseException) -> None:
        # First failure wins: propagate into the waiting process
        # (like asyncio.gather without return_exceptions).
        if not self._failed:
            self._failed = True
            self._process._throw(error)


class AnyOf(Waitable):
    """Wait for the first waitable to complete; yields ``(index, result)``."""

    def __init__(self, sim: Simulator, waitables: Iterable[Waitable]) -> None:
        self._sim = sim
        self._items = list(waitables)
        if not self._items:
            raise ValueError("AnyOf requires at least one waitable")
        self._fired = False
        self._process: Optional["Process"] = None

    def _subscribe(self, sim: Simulator, process: "Process") -> None:
        self._fired = False
        self._process = process
        for i, item in enumerate(self._items):
            _CompositeLeg(sim, self, i, item)

    def _leg_done(self, idx: int, value: Any) -> None:
        if not self._fired:
            self._fired = True
            self._process._resume((idx, value))

    def _leg_failed(self, error: BaseException) -> None:
        # A failure also "wins" the race: first outcome decides.
        if not self._fired:
            self._fired = True
            self._process._throw(error)


class Process(Waitable):
    """A running generator on the simulator.

    Constructing a Process immediately schedules its first resumption at
    the current simulated time (priority 0), so creation order is
    execution order among same-time starts.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator,
        name: str = "process",
    ) -> None:
        self._sim = sim
        self._gen = generator
        self.name = name
        self._alive = True
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._done_event = SimEvent(sim)
        self._pending_event = None
        sim.schedule(0.0, self._resume, None)

    # -- public API ----------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def result(self) -> Any:
        """Return value of the generator; raises if it errored or is alive."""
        if self._alive:
            raise RuntimeError(f"process {self.name!r} still running")
        if self._error is not None:
            raise self._error
        return self._result

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if not self._alive:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self._throw(ProcessKilled(f"process {self.name!r} killed"))

    # -- waitable protocol ----------------------------------------------
    def _subscribe(self, sim: Simulator, process: "Process") -> None:
        self._done_event._subscribe(sim, process)

    # -- driver ----------------------------------------------------------
    def _resume(self, value: Any) -> None:
        if not self._alive:
            return
        self._pending_event = None
        try:
            target = self._gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except ProcessKilled as exc:
            self._finish(None, exc, killed=True)
            return
        except BaseException as exc:  # propagate into done-event waiters
            self._finish(None, exc)
            return
        self._wait_on(target)

    def _throw(self, error: BaseException) -> None:
        if not self._alive:
            return
        self._pending_event = None
        try:
            target = self._gen.throw(error)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except ProcessKilled as exc:
            self._finish(None, exc, killed=True)
            return
        except BaseException as exc:
            self._finish(None, exc)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Waitable):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; expected a Waitable"
            )
        target._subscribe(self._sim, self)

    def _finish(
        self, result: Any, error: Optional[BaseException], killed: bool = False
    ) -> None:
        self._alive = False
        self._result = result
        self._error = None if killed else error
        self._gen.close()
        if self._error is not None:
            self._done_event.fail(self._error)
        else:
            self._done_event.succeed(result)
