"""Named reproducible random streams.

Every stochastic element of the simulation (per-hop message latency,
OS jitter, run-to-run noise, NVML cap failures, workload mixes) pulls
from its own named substream derived from one root seed. Adding a new
consumer therefore never perturbs the draws seen by existing consumers,
which keeps calibrated experiments stable as the codebase grows.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of named, independent :class:`numpy.random.Generator` s.

    Streams are derived with ``SeedSequence(root_seed).spawn``-style
    keying: the stream name is hashed (CRC32, stable across runs and
    platforms — unlike Python's randomized ``hash``) and combined with
    the root seed.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("jitter/node0")
    >>> b = streams.get("jitter/node1")
    >>> a is streams.get("jitter/node0")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @staticmethod
    def _key(name: str) -> int:
        return zlib.crc32(name.encode("utf-8"))

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(entropy=self.seed, spawn_key=(self._key(name),))
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RandomStreams":
        """Return a new independent stream factory rooted under ``name``."""
        return RandomStreams(seed=(self.seed * 0x9E3779B1 + self._key(name)) % (2**63))

    def reset(self) -> None:
        """Forget all derived streams so the next draws repeat from scratch."""
        self._streams.clear()
