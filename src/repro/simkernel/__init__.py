"""Discrete-event simulation kernel.

Everything in the reproduction — Flux brokers, power-monitor sampling
loops, power-manager control loops, and the applications themselves —
runs on this kernel in *simulated* time. The kernel provides:

* :class:`~repro.simkernel.engine.Simulator` — the event loop with a
  deterministic total order over events (time, priority, sequence).
* :class:`~repro.simkernel.process.Process` — generator-based processes
  in the style of SimPy: a process yields :class:`Timeout` or
  :class:`SimEvent` objects to suspend itself.
* :class:`~repro.simkernel.rng.RandomStreams` — named, reproducible
  random substreams derived from a single root seed, so adding a new
  consumer of randomness never perturbs existing ones.
* :class:`~repro.simkernel.timers.PeriodicTimer` — fixed-rate callbacks
  (sampling loops, control loops).
"""

from repro.simkernel.engine import Simulator, ScheduledEvent
from repro.simkernel.process import (
    Process,
    ProcessKilled,
    SimEvent,
    Timeout,
    AllOf,
    AnyOf,
)
from repro.simkernel.rng import RandomStreams
from repro.simkernel.timers import PeriodicTimer

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "Process",
    "ProcessKilled",
    "SimEvent",
    "Timeout",
    "AllOf",
    "AnyOf",
    "RandomStreams",
    "PeriodicTimer",
]
