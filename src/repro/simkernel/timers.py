"""Fixed-rate periodic callbacks.

Sampling loops (`flux-power-monitor` reads Variorum every 2 s) and
control loops (FPP adjusts caps every 90 s) are periodic timers. The
timer re-schedules itself from the *nominal* tick time, so the tick grid
never drifts even if a callback performs zero-delay scheduling.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.simkernel.engine import ScheduledEvent, Simulator


class PeriodicTimer:
    """Invoke ``callback(timer)`` every ``period`` simulated seconds.

    Parameters
    ----------
    sim:
        The simulator to schedule on.
    period:
        Tick interval in simulated seconds (> 0).
    callback:
        Called with the timer instance on each tick. Raising stops the
        timer (the exception propagates out of the event loop).
    start_delay:
        Offset of the first tick from creation time. Defaults to one
        full period (i.e. the timer does *not* tick at t=0).
    jitter_fn:
        Optional callable returning a per-tick offset in seconds, used
        to model imperfect OS timers. The nominal grid is unaffected.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[["PeriodicTimer"], Any],
        start_delay: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        self._sim = sim
        self.period = float(period)
        self.callback = callback
        self._jitter_fn = jitter_fn
        self.ticks = 0
        self._stopped = False
        self._next_nominal = sim.now + (
            self.period if start_delay is None else float(start_delay)
        )
        if jitter_fn is None:
            # Fast path: one reused engine event for the whole series.
            # The engine re-arms from the nominal grid and draws a fresh
            # sequence number before each callback, which is exactly the
            # order the re-scheduling path below produces.
            self._pending: Optional[ScheduledEvent] = sim.schedule_periodic(
                self.period,
                self._fire_fast,
                first_time=self._next_nominal,
            )
        else:
            self._pending = self._schedule_next(first=True)

    def _schedule_next(self, first: bool = False) -> Optional[ScheduledEvent]:
        if self._stopped:
            return None
        when = self._next_nominal
        if self._jitter_fn is not None:
            when = max(self._sim.now, when + float(self._jitter_fn()))
        return self._sim.schedule_at(max(when, self._sim.now), self._fire)

    def _fire_fast(self) -> None:
        # The engine has already re-armed the reused event.
        self.ticks += 1
        self._next_nominal += self.period
        self.callback(self)

    def _fire(self) -> None:
        if self._stopped:
            return
        self.ticks += 1
        self._next_nominal += self.period
        self._pending = self._schedule_next()
        self.callback(self)

    @property
    def running(self) -> bool:
        return not self._stopped

    def stop(self) -> None:
        """Cancel the timer; the pending tick (if any) will not fire."""
        self._stopped = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
