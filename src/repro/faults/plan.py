"""Deterministic fault plans.

A :class:`FaultPlan` is pure data: a schedule of discrete fault events
(broker crashes/restarts, node-agent hangs) plus an optional
probabilistic link-fault window. Plans are either written by hand (the
chaos tests pin exact scenarios) or generated from a seeded RNG
substream (:meth:`FaultPlan.generate`), so the same root seed always
yields the same campaign — fault injection is reproducible by
construction, like every other stochastic element of the simulator.

The plan says *what* goes wrong and *when*; the
:class:`~repro.faults.injector.FaultInjector` makes it happen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set

#: Fault kinds a :class:`FaultEvent` may carry.
KINDS = ("crash", "restart", "hang")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    Attributes
    ----------
    t:
        Simulated time at which the fault fires.
    kind:
        ``"crash"`` (broker goes down, modules unloaded), ``"restart"``
        (a crashed broker comes back up), or ``"hang"`` (the broker
        stops servicing requests for ``duration_s`` but stays up).
    rank:
        Target broker rank. Rank 0 hosts the root services and the
        event sequencer; plans may not crash or hang it.
    duration_s:
        For ``"hang"``, how long requests are dropped. For ``"crash"``,
        a value > 0 schedules an automatic restart after that long;
        0 means the broker stays down (use an explicit restart event
        to bring it back).
    """

    t: float
    kind: str
    rank: int
    duration_s: float = 0.0


@dataclass(frozen=True)
class LinkFaults:
    """A probabilistic message-fault window on the overlay.

    While ``t_start <= now < t_end``, every point-to-point message
    whose source or destination matches ``ranks`` (or every message,
    when ``ranks`` is None) draws once from the ``faults/link`` RNG
    substream: with probability ``drop_prob`` it is dropped, else with
    probability ``delay_prob`` it is delayed an extra ``delay_s``.
    """

    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay_s: float = 0.5
    t_start: float = 0.0
    t_end: float = float("inf")
    ranks: Optional[Set[int]] = None


@dataclass
class FaultPlan:
    """A full fault campaign: scheduled events + optional link faults."""

    events: List[FaultEvent] = field(default_factory=list)
    link: Optional[LinkFaults] = None

    def is_empty(self) -> bool:
        """True when injecting this plan changes nothing."""
        return not self.events and self.link is None

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan that injects nothing (for explicit 'faults off')."""
        return cls()

    def validate(self, n_ranks: int) -> None:
        """Raise ValueError if the plan is not injectable on ``n_ranks``."""
        for ev in self.events:
            if ev.kind not in KINDS:
                raise ValueError(f"unknown fault kind {ev.kind!r}")
            if not (0 <= ev.rank < n_ranks):
                raise ValueError(
                    f"fault rank {ev.rank} out of range [0, {n_ranks})"
                )
            if ev.rank == 0 and ev.kind in ("crash", "hang"):
                raise ValueError(
                    "rank 0 hosts the root services; plans may not "
                    f"{ev.kind} it"
                )
            if ev.t < 0:
                raise ValueError(f"fault time must be >= 0, got {ev.t}")
            if ev.duration_s < 0:
                raise ValueError(
                    f"duration_s must be >= 0, got {ev.duration_s}"
                )
        if self.link is not None:
            lf = self.link
            if not (0.0 <= lf.drop_prob <= 1.0) or not (
                0.0 <= lf.delay_prob <= 1.0
            ):
                raise ValueError("link fault probabilities must be in [0, 1]")
            if lf.drop_prob + lf.delay_prob > 1.0:
                raise ValueError("drop_prob + delay_prob must be <= 1")
            if lf.delay_s < 0:
                raise ValueError(f"delay_s must be >= 0, got {lf.delay_s}")
            if lf.t_end < lf.t_start:
                raise ValueError("link fault window ends before it starts")

    @classmethod
    def generate(
        cls,
        rng,
        n_ranks: int,
        n_crashes: int = 1,
        n_hangs: int = 1,
        t_window: Sequence[float] = (20.0, 120.0),
        crash_duration_s: float = 30.0,
        hang_duration_s: float = 12.0,
        link: Optional[LinkFaults] = None,
    ) -> "FaultPlan":
        """Draw a random (but seeded, hence reproducible) campaign.

        Crash/hang targets are sampled without replacement from ranks
        ``1..n_ranks-1``; fire times are uniform in ``t_window``. The
        same ``rng`` state always produces the same plan — the
        determinism the chaos tests pin across seeds.
        """
        if n_ranks < 2:
            raise ValueError("need >= 2 ranks to have a crashable rank")
        t0, t1 = float(t_window[0]), float(t_window[1])
        n_targets = min(n_crashes + n_hangs, n_ranks - 1)
        targets = [
            int(r) + 1
            for r in rng.choice(n_ranks - 1, size=n_targets, replace=False)
        ]
        events: List[FaultEvent] = []
        for i, rank in enumerate(targets):
            t = t0 + (t1 - t0) * float(rng.random())
            if i < min(n_crashes, n_targets):
                events.append(
                    FaultEvent(
                        t=t, kind="crash", rank=rank,
                        duration_s=float(crash_duration_s),
                    )
                )
            else:
                events.append(
                    FaultEvent(
                        t=t, kind="hang", rank=rank,
                        duration_s=float(hang_duration_s),
                    )
                )
        events.sort(key=lambda ev: (ev.t, ev.rank))
        plan = cls(events=events, link=link)
        plan.validate(n_ranks)
        return plan
