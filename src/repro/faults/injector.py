"""Executes a fault plan against a running instance.

The injector is the only component allowed to mutate broker liveness
state (``up`` / ``hung_until`` / the shared down-rank set / the
``fault_hook``). With an empty plan it schedules nothing, installs
nothing and never touches the RNG — a run with faults disabled is
byte-identical to one without an injector at all (pinned by
``tests/test_faults.py``).

Fault semantics (see docs/failures.md for the full model):

* **crash** — the broker goes down: its modules (node agent, managers)
  are unloaded, the rank joins the shared down set so point-to-point
  routes through it black-hole, and rank 0 publishes a ``broker.down``
  event on the dead rank's behalf (in Flux, the TBON parent detects
  the lost connection). Applications keep running on the node — only
  the management plane died.
* **restart** — the broker comes back empty: ``broker.up`` again,
  ``broker.up`` event published, and the ``on_restart`` callback gives
  the cluster wiring a chance to reload fresh modules (with an empty
  telemetry buffer — history died with the broker).
* **hang** — requests delivered to the rank are dropped until the hang
  expires; responses already computed still drain and the broker stays
  "up". This is the failure the RPC retry layer recovers from.
* **link faults** — within the configured window, each transmitted
  message draws once from the dedicated ``faults/link`` RNG substream
  and may be dropped or delayed.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.flux.broker import Broker
from repro.flux.instance import FluxInstance
from repro.flux.message import Message
from repro.faults.plan import FaultEvent, FaultPlan, LinkFaults


class FaultInjector:
    """Schedules a :class:`~repro.faults.plan.FaultPlan` on an instance.

    Parameters
    ----------
    instance:
        The target Flux instance.
    plan:
        What to inject; None or an empty plan is a strict no-op.
    on_restart:
        Called with the broker after each restart so the deployment can
        reload its modules (e.g. a fresh node agent).
    """

    def __init__(
        self,
        instance: FluxInstance,
        plan: Optional[FaultPlan] = None,
        on_restart: Optional[Callable[[Broker], None]] = None,
    ) -> None:
        self.instance = instance
        self.plan = plan if plan is not None else FaultPlan.empty()
        self.on_restart = on_restart
        #: (t, kind, rank) log of every fault actually injected.
        self.injected: List[Tuple[float, str, int]] = []
        if self.plan.is_empty():
            return
        self.plan.validate(instance.n_nodes)
        for ev in self.plan.events:
            instance.sim.schedule_at(ev.t, self._fire, ev)
        if self.plan.link is not None:
            hook = self._make_link_hook(
                self.plan.link, instance.streams.get("faults/link")
            )
            for broker in instance.brokers:
                broker.fault_hook = hook

    @property
    def enabled(self) -> bool:
        """True when this injector will (or did) change anything."""
        return not self.plan.is_empty()

    # ------------------------------------------------------------------
    # Scheduled events
    # ------------------------------------------------------------------
    def _fire(self, ev: FaultEvent) -> None:
        if ev.kind == "crash":
            self._crash(ev.rank)
            if ev.duration_s > 0:
                self.instance.sim.schedule(ev.duration_s, self._restart, ev.rank)
        elif ev.kind == "restart":
            self._restart(ev.rank)
        elif ev.kind == "hang":
            self._hang(ev.rank, ev.duration_s)

    def _record(self, kind: str, rank: int) -> None:
        sim = self.instance.sim
        self.injected.append((sim.now, kind, rank))
        tel = self.instance.telemetry
        tel.metrics.counter(
            "faults_injected_total",
            labels={"kind": kind},
            help="fault events executed by the injector, by kind",
        ).inc()
        tel.tracer.instant(f"fault.{kind}", "faults", rank=rank)

    def _crash(self, rank: int) -> None:
        broker = self.instance.brokers[rank]
        if not broker.up:
            return
        broker.up = False
        for name in list(broker.modules):
            broker.unload_module(name)
        self.instance.down_ranks.add(rank)
        self._record("crash", rank)
        # The TBON parent notices the dead connection; rank 0 publishes
        # the down event on the crashed rank's behalf.
        self.instance.brokers[0].publish("broker.down", {"rank": rank})

    def _restart(self, rank: int) -> None:
        broker = self.instance.brokers[rank]
        if broker.up:
            return
        broker.up = True
        broker.hung_until = 0.0
        self.instance.down_ranks.discard(rank)
        self._record("restart", rank)
        self.instance.brokers[0].publish("broker.up", {"rank": rank})
        if self.on_restart is not None:
            self.on_restart(broker)

    def _hang(self, rank: int, duration_s: float) -> None:
        broker = self.instance.brokers[rank]
        if not broker.up:
            return
        broker.hung_until = max(
            broker.hung_until, self.instance.sim.now + duration_s
        )
        self._record("hang", rank)

    # ------------------------------------------------------------------
    # Link faults
    # ------------------------------------------------------------------
    @staticmethod
    def _make_link_hook(link: LinkFaults, rng) -> Callable[[Broker, Message], Any]:
        def hook(broker: Broker, msg: Message) -> Any:
            if not (link.t_start <= broker.sim.now < link.t_end):
                return None
            if (
                link.ranks is not None
                and msg.src_rank not in link.ranks
                and msg.dst_rank not in link.ranks
            ):
                return None
            u = float(rng.random())
            if u < link.drop_prob:
                return "drop"
            if u < link.drop_prob + link.delay_prob:
                return link.delay_s
            return None

        return hook
