"""Fault injection and graceful degradation.

Deterministic, seeded fault plans (broker crashes/restarts, node-agent
hangs, probabilistic TBON message drops/delays) executed against a
running instance by the :class:`FaultInjector`. The rest of the stack
degrades per node instead of failing per cluster; docs/failures.md
describes the model and the knobs.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import KINDS, FaultEvent, FaultPlan, LinkFaults

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "KINDS",
    "LinkFaults",
]
