"""Vendor-neutral power management API (Variorum substitute).

The Flux modules in this reproduction never touch vendor firmware
directly; they call the same three Variorum entry points the paper's
implementation uses (Section II-C):

* :func:`get_node_power_json` — vendor-neutral telemetry; returns a
  JSON-compatible dict whose keys depend on what the platform can
  measure (IBM: node/socket/memory/per-GPU; AMD: socket + per-OAM
  only; Intel: socket + memory).
* :func:`cap_best_effort_node_power_limit` — node-level capping. IBM
  AC922 supports a direct hardware node cap (OPAL); Intel and AMD do
  not, so the budget is distributed uniformly across CPU sockets (and
  the remainder to GPUs when present) on a best-effort basis.
* :func:`cap_each_gpu_power_limit` — uniform per-GPU capping (NVML on
  NVIDIA platforms, ROCm-SMI on AMD — which the Tioga early-access
  system refuses for users).
"""

from repro.variorum.api import (
    VariorumError,
    cap_best_effort_node_power_limit,
    cap_each_gpu_power_limit,
    get_node_power_json,
    sample_bytes_estimate,
    sample_wire_bytes,
)

__all__ = [
    "VariorumError",
    "get_node_power_json",
    "cap_best_effort_node_power_limit",
    "cap_each_gpu_power_limit",
    "sample_bytes_estimate",
    "sample_wire_bytes",
]
