"""Backend interface and shared telemetry helpers."""

from __future__ import annotations

from typing import Dict, List

from repro.hardware.domains import DomainKind
from repro.hardware.node import Node
from repro.hardware.sensors import SensorReading


class Backend:
    """One vendor's implementation of the three Variorum calls."""

    vendor: str = "base"

    def get_node_power_json(self, node: Node, timestamp: float) -> Dict[str, object]:
        raise NotImplementedError

    def cap_best_effort_node_power_limit(
        self, node: Node, watts: float
    ) -> Dict[str, object]:
        raise NotImplementedError

    def cap_each_gpu_power_limit(self, node: Node, watts: float) -> List[float]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    @staticmethod
    def base_sample(node: Node, reading: SensorReading) -> Dict[str, object]:
        """Common header fields for a telemetry sample."""
        return {
            "hostname": node.hostname,
            "timestamp": round(reading.timestamp, 6),
            "power_node_watts": round(reading.node_w, 3),
            "power_node_is_estimate": not reading.node_measured,
        }

    @staticmethod
    def add_domain_readings(
        sample: Dict[str, object],
        node: Node,
        reading: SensorReading,
        kinds: Dict[DomainKind, str],
    ) -> None:
        """Append per-domain keys like ``power_cpu_watts_socket_0``.

        ``kinds`` maps a domain kind to the key stem Variorum uses for
        it (e.g. ``DomainKind.CPU -> "power_cpu_watts_socket"``).
        Indexing is per-kind in node domain order.
        """
        counters: Dict[DomainKind, int] = {}
        for dom in node.domains.values():
            spec = dom.spec
            if not spec.measurable or spec.kind not in kinds:
                continue
            idx = counters.get(spec.kind, 0)
            counters[spec.kind] = idx + 1
            key = f"{kinds[spec.kind]}_{idx}"
            sample[key] = round(reading.domains_w.get(spec.name, dom.actual_w), 3)
