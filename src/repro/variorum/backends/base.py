"""Backend interface and shared telemetry helpers."""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.flux.message import estimate_payload_bytes
from repro.hardware.domains import DomainKind
from repro.hardware.node import Node
from repro.hardware.sensors import SensorReading


class TelemetryPlan:
    """Precomputed per-node sampling layout for one backend.

    A node's domain set is fixed after construction, so the Variorum
    key for each measurable domain (``power_cpu_watts_socket_0``, ...)
    can be computed once instead of re-deriving per-kind indices and
    formatting key strings on every 2 s sample. ``entries`` preserves
    ``node.domains`` declaration order — the order the per-sample loop
    always used, so sample dicts keep identical key order.
    """

    __slots__ = (
        "entries",
        "gpu_names",
        "gpu_half",
        "sample_size",
        "template",
        "template_rev",
    )

    def __init__(self, node: Node, kinds: Dict[DomainKind, str]) -> None:
        #: (domain name, sample key, domain object) per measurable
        #: domain whose kind the backend reports.
        self.entries: List[Tuple[str, str, object]] = []
        counters: Dict[DomainKind, int] = {}
        for dom in node.domains.values():
            spec = dom.spec
            if not spec.measurable or spec.kind not in kinds:
                continue
            idx = counters.get(spec.kind, 0)
            counters[spec.kind] = idx + 1
            self.entries.append((spec.name, f"{kinds[spec.kind]}_{idx}", dom))
        #: Measurable GPU domain names in order (IBM's per-socket
        #: aggregates) and the first-socket split point.
        self.gpu_names: List[str] = [
            d.spec.name
            for d in node.by_kind(DomainKind.GPU)
            if d.spec.measurable
        ]
        self.gpu_half: int = (len(self.gpu_names) + 1) // 2
        #: Wire-size estimate shared by every finished sample for this
        #: node (see :meth:`Backend.finalize_sample`); walked once.
        self.sample_size = None
        #: Last finished sample + the node power revision it was built
        #: at (see :meth:`Backend.sample_cached`).
        self.template = None
        self.template_rev = -1


class Backend:
    """One vendor's implementation of the three Variorum calls."""

    vendor: str = "base"

    def get_node_power_json(self, node: Node, timestamp: float) -> Dict[str, object]:
        raise NotImplementedError

    def cap_best_effort_node_power_limit(
        self, node: Node, watts: float
    ) -> Dict[str, object]:
        raise NotImplementedError

    def cap_each_gpu_power_limit(self, node: Node, watts: float) -> List[float]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def plan_for(self, node: Node) -> TelemetryPlan:
        """The cached :class:`TelemetryPlan` for ``node`` (built once).

        Keyed on the backend class so a node probed by two different
        backends (cross-vendor tests) never sees the wrong key layout;
        the common case — one backend per node for its whole life — is
        a single dict probe plus an identity check.
        """
        cached = node.__dict__.get("_variorum_plan")
        cls = type(self)
        if cached is not None and cached[0] is cls:
            return cached[1]
        plan = TelemetryPlan(node, self._KEY_STEMS)
        node._variorum_plan = (cls, plan)
        return plan

    _KEY_STEMS: Dict[DomainKind, str] = {}

    def telemetry_sample(
        self,
        node: Node,
        timestamp: float,
        reading: SensorReading = None,
    ) -> Dict[str, object]:
        """Shared hot path: sensor read + header + planned domain keys."""
        if reading is None:
            reading = node.sensors.read(timestamp)
        dw = reading.domains_w
        # Deliberately a plain dict: str/float/bool-only dicts get
        # untracked by the cyclic GC, which matters with ~100k of them
        # live in ring buffers. Wire size is priced per node, not per
        # sample (see finalize_sample), so no per-sample memo is needed.
        sample: Dict[str, object] = dict(
            hostname=node.hostname,
            timestamp=round(reading.timestamp, 6),
            power_node_watts=round(reading.node_w, 3),
            power_node_is_estimate=not reading.node_measured,
        )
        for name, key, dom in self.plan_for(node).entries:
            # dw covers every measurable domain, so the fallback only
            # fires for exotic hand-built readings; dict.get's default
            # would evaluate the actual_w property on every hit.
            watts = dw.get(name)
            if watts is None:
                watts = dom.actual_w
            sample[key] = round(watts, 3)
        return sample

    def finalize_sample(
        self, node: Node, sample: Dict[str, object]
    ) -> Dict[str, object]:
        """Record the per-node constant wire-size estimate of ``sample``.

        Every sample a backend emits for a given node has the same keys
        and leaf types — floats (always 8 bytes), one bool and the
        node's fixed hostname string — so the estimate is a per-node
        constant: walked once on the first finished sample and kept on
        the plan. Query responses are then priced arithmetically from
        it (see the node agent) without ever re-walking sample dicts.
        Backends call this after adding their vendor-specific keys.
        """
        plan = self.plan_for(node)
        if plan.sample_size is None:
            plan.sample_size = estimate_payload_bytes(sample)
        return sample

    def sample_cached(
        self,
        node: Node,
        timestamp: float,
        plan: "TelemetryPlan | None" = None,
    ) -> Dict[str, object]:
        """Telemetry sample with the power-revision template fast path.

        Between power-state changes a node's finished sample differs
        only in its quantised timestamp, so the last full sample is
        kept as a template keyed by ``node.power_rev`` (bumped by every
        demand/cap mutation) and later ticks copy it with a fresh
        timestamp — the same floor/round arithmetic the sensor path
        uses, so values are bit-identical to a full rebuild. Noisy
        sensors draw per-sample RNG and always take the full path.
        Samples are treated as write-once everywhere (ring buffer,
        responses); mutating one would poison its node's template.
        """
        sensors = node.sensors
        if sensors.noise_sigma_w > 0.0 and sensors._rng is not None:
            return self.get_node_power_json(node, timestamp)
        if plan is None:
            plan = self.plan_for(node)
        tmpl = plan.template
        rev = node.power_rev
        if tmpl is None or plan.template_rev != rev:
            sample = self.get_node_power_json(node, timestamp)
            plan.template = sample
            plan.template_rev = rev
            return sample
        g = sensors.granularity_s
        quantised = math.floor(timestamp / g) * g if g > 0 else timestamp
        sample = dict(tmpl)
        sample["timestamp"] = round(float(quantised), 6)
        return sample

    @staticmethod
    def base_sample(node: Node, reading: SensorReading) -> Dict[str, object]:
        """Common header fields for a telemetry sample."""
        return {
            "hostname": node.hostname,
            "timestamp": round(reading.timestamp, 6),
            "power_node_watts": round(reading.node_w, 3),
            "power_node_is_estimate": not reading.node_measured,
        }

    @staticmethod
    def add_domain_readings(
        sample: Dict[str, object],
        node: Node,
        reading: SensorReading,
        kinds: Dict[DomainKind, str],
    ) -> None:
        """Append per-domain keys like ``power_cpu_watts_socket_0``.

        ``kinds`` maps a domain kind to the key stem Variorum uses for
        it (e.g. ``DomainKind.CPU -> "power_cpu_watts_socket"``).
        Indexing is per-kind in node domain order.
        """
        counters: Dict[DomainKind, int] = {}
        for dom in node.domains.values():
            spec = dom.spec
            if not spec.measurable or spec.kind not in kinds:
                continue
            idx = counters.get(spec.kind, 0)
            counters[spec.kind] = idx + 1
            key = f"{kinds[spec.kind]}_{idx}"
            sample[key] = round(reading.domains_w.get(spec.name, dom.actual_w), 3)
