"""ARM backend: telemetry only.

Variorum supports ARM platforms for telemetry; power capping dials are
not generally exposed, so cap calls raise. Included for API-coverage
parity with the paper's claim of Intel/AMD/IBM/ARM/NVIDIA support.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hardware.domains import DomainKind
from repro.hardware.node import Node
from repro.variorum.backends.base import Backend


class ARMBackend(Backend):
    vendor = "arm"

    _KEY_STEMS = {
        DomainKind.CPU: "power_cpu_watts_socket",
        DomainKind.MEMORY: "power_mem_watts_socket",
        DomainKind.GPU: "power_gpu_watts_gpu",
    }

    def get_node_power_json(self, node: Node, timestamp: float) -> Dict[str, object]:
        return self.finalize_sample(
            node, self.telemetry_sample(node, timestamp)
        )

    def cap_best_effort_node_power_limit(
        self, node: Node, watts: float
    ) -> Dict[str, object]:
        from repro.variorum.api import VariorumError

        raise VariorumError("power capping not supported on this ARM platform")

    def cap_each_gpu_power_limit(self, node: Node, watts: float) -> List[float]:
        from repro.variorum.api import VariorumError

        raise VariorumError("GPU power capping not supported on this ARM platform")
