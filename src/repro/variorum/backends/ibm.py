"""IBM backend: OCC telemetry + OPAL node capping + NVML GPU capping."""

from __future__ import annotations

from typing import Dict, List

from repro.hardware.domains import DomainKind
from repro.hardware.node import Node
from repro.variorum.backends.base import Backend


class IBMBackend(Backend):
    """AC922 (Power9 + V100) platforms — the Lassen path."""

    vendor = "ibm"

    _KEY_STEMS = {
        DomainKind.CPU: "power_cpu_watts_socket",
        DomainKind.MEMORY: "power_mem_watts_socket",
        DomainKind.GPU: "power_gpu_watts_gpu",
    }

    def get_node_power_json(self, node: Node, timestamp: float) -> Dict[str, object]:
        reading = node.sensors.read(timestamp)
        sample = self.telemetry_sample(node, timestamp, reading)
        # Per-socket GPU aggregates, as real Variorum reports on IBM
        # (two GPUs hang off each Power9 socket).
        plan = self.plan_for(node)
        dw = reading.domains_w
        gpus = [dw[name] for name in plan.gpu_names if name in dw]
        half = (len(gpus) + 1) // 2
        sample["power_gpu_watts_socket_0"] = round(sum(gpus[:half]), 3)
        sample["power_gpu_watts_socket_1"] = round(sum(gpus[half:]), 3)
        return self.finalize_sample(node, sample)

    def cap_best_effort_node_power_limit(
        self, node: Node, watts: float
    ) -> Dict[str, object]:
        if node.opal is None:
            raise RuntimeError(f"{node.hostname}: IBM node without OPAL firmware")
        derived = node.opal.set_node_power_cap(watts)
        return {
            "method": "opal_node_cap",
            "node_cap_watts": watts,
            "derived_gpu_cap_watts": derived,
            "best_effort": watts < node.opal.hard_min_w,
        }

    def cap_each_gpu_power_limit(self, node: Node, watts: float) -> List[float]:
        from repro.variorum.api import VariorumError

        if node.nvml is None or node.nvml.gpu_count() == 0:
            raise VariorumError(f"{node.hostname}: no NVML-cappable GPUs")
        try:
            return node.nvml.set_all(watts)
        except Exception as exc:
            raise VariorumError(str(exc)) from exc
