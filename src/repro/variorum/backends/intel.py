"""Intel backend: RAPL socket telemetry/capping, best-effort node caps."""

from __future__ import annotations

from typing import Dict, List

from repro.hardware.domains import DomainKind
from repro.hardware.node import Node
from repro.variorum.backends.base import Backend


class IntelBackend(Backend):
    vendor = "intel"

    _KEY_STEMS = {
        DomainKind.CPU: "power_cpu_watts_socket",
        DomainKind.MEMORY: "power_mem_watts_socket",
        DomainKind.GPU: "power_gpu_watts_gpu",
    }

    def get_node_power_json(self, node: Node, timestamp: float) -> Dict[str, object]:
        return self.finalize_sample(
            node, self.telemetry_sample(node, timestamp)
        )

    def cap_best_effort_node_power_limit(
        self, node: Node, watts: float
    ) -> Dict[str, object]:
        from repro.variorum.api import VariorumError

        if node.rapl is None:
            raise VariorumError(f"{node.hostname}: no RAPL driver")
        cpus = node.by_kind(DomainKind.CPU)
        gpus = node.by_kind(DomainKind.GPU)
        others = sum(
            d.spec.idle_w
            for d in node.domains.values()
            if d.spec.kind in (DomainKind.MEMORY, DomainKind.UNCORE)
        )
        budget = max(watts - others, 0.0)
        # Uniform split across sockets (Variorum's documented behaviour),
        # with GPUs sharing whatever their max caps allow of the rest.
        if gpus:
            gpu_budget = budget / 2.0
            cpu_budget = budget - gpu_budget
        else:
            gpu_budget = 0.0
            cpu_budget = budget
        per_socket = cpu_budget / max(len(cpus), 1)
        spec = cpus[0].spec
        lo = spec.min_cap_w or 0.0
        hi = spec.max_cap_w or spec.max_w
        per_socket = min(max(per_socket, lo), hi)
        for i in range(len(cpus)):
            node.rapl.set_socket_power_cap(i, per_socket)
        result: Dict[str, object] = {
            "method": "rapl_uniform_split",
            "socket_cap_watts": per_socket,
            "best_effort": True,
        }
        if gpus and node.nvml is not None:
            per_gpu = gpu_budget / len(gpus)
            gspec = gpus[0].spec
            per_gpu = min(
                max(per_gpu, gspec.min_cap_w or 0.0), gspec.max_cap_w or gspec.max_w
            )
            node.nvml.set_all(per_gpu)
            result["gpu_cap_watts"] = per_gpu
        return result

    def cap_each_gpu_power_limit(self, node: Node, watts: float) -> List[float]:
        from repro.variorum.api import VariorumError

        if node.nvml is None or node.nvml.gpu_count() == 0:
            raise VariorumError(f"{node.hostname}: no cappable GPUs")
        try:
            return node.nvml.set_all(watts)
        except Exception as exc:
            raise VariorumError(str(exc)) from exc
