"""Per-vendor Variorum backends.

Each backend implements the three-call API for one CPU vendor's
platforms, reproducing that vendor's telemetry domains and capping
quirks. Dispatch is by ``NodeSpec.vendor``.
"""

from __future__ import annotations

from typing import Dict

from repro.variorum.backends.base import Backend
from repro.variorum.backends.ibm import IBMBackend
from repro.variorum.backends.amd import AMDBackend
from repro.variorum.backends.intel import IntelBackend
from repro.variorum.backends.arm import ARMBackend

_BACKENDS: Dict[str, Backend] = {
    "ibm": IBMBackend(),
    "amd": AMDBackend(),
    "intel": IntelBackend(),
    "arm": ARMBackend(),
}


def get_backend(vendor: str) -> Backend:
    """Look up the backend for a vendor string."""
    try:
        return _BACKENDS[vendor]
    except KeyError:
        raise ValueError(
            f"no Variorum backend for vendor {vendor!r}; "
            f"supported: {sorted(_BACKENDS)}"
        ) from None


def register_backend(vendor: str, backend: Backend) -> None:
    """Install a custom backend (extensibility hook, used in tests)."""
    _BACKENDS[vendor] = backend


__all__ = ["Backend", "get_backend", "register_backend"]
