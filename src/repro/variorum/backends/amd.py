"""AMD backend: E-SMI/HSMP CPU telemetry + ROCm OAM telemetry/capping.

Matches the Tioga description in Section II-A: power is measurable at
the CPU and OAM level only (an OAM reading covers two GCDs); memory and
uncore are not reported; capping exists in hardware but is disabled for
users on the early-access system, so cap calls raise.
"""

from __future__ import annotations

from typing import Dict, List

from repro.hardware.domains import DomainKind
from repro.hardware.node import Node
from repro.variorum.backends.base import Backend


class AMDBackend(Backend):
    vendor = "amd"

    _KEY_STEMS = {
        DomainKind.CPU: "power_cpu_watts_socket",
        DomainKind.OAM: "power_gpu_watts_oam",
    }

    def get_node_power_json(self, node: Node, timestamp: float) -> Dict[str, object]:
        sample = self.telemetry_sample(node, timestamp)
        sample["gcds_per_oam"] = node.spec.gpus_per_telemetry_domain
        return self.finalize_sample(node, sample)

    def cap_best_effort_node_power_limit(
        self, node: Node, watts: float
    ) -> Dict[str, object]:
        from repro.variorum.api import VariorumError

        # No hardware node dial on AMD: distribute uniformly across
        # sockets, remainder across OAMs — if the driver lets us.
        if node.esmi is None:
            raise VariorumError(f"{node.hostname}: no E-SMI driver")
        cpus = node.by_kind(DomainKind.CPU)
        oams = node.by_kind(DomainKind.OAM)
        if cpus:
            cpu_share = min(
                watts / max(len(cpus), 1), cpus[0].spec.max_cap_w or watts
            )
        else:
            # APU platforms (El Capitan-class MI300A) have no separate
            # host CPU socket; the whole budget goes to the packages.
            cpu_share = 0.0
        per_oam = (watts - cpu_share * len(cpus)) / max(len(oams), 1)
        try:
            for i in range(len(cpus)):
                node.esmi.set_socket_power_cap(i, cpu_share)
            for i in range(len(oams)):
                node.esmi.set_oam_power_cap(i, per_oam)
        except Exception as exc:
            raise VariorumError(str(exc)) from exc
        return {
            "method": "esmi_split",
            "socket_cap_watts": cpu_share,
            "oam_cap_watts": per_oam,
            "best_effort": True,
        }

    def cap_each_gpu_power_limit(self, node: Node, watts: float) -> List[float]:
        from repro.variorum.api import VariorumError

        if node.esmi is None:
            raise VariorumError(f"{node.hostname}: no ROCm-SMI path")
        oams = node.by_kind(DomainKind.OAM)
        caps: List[float] = []
        try:
            # A per-GPU (GCD) cap translates to 2x at the OAM dial.
            per_oam = watts * node.spec.gpus_per_telemetry_domain
            for i in range(len(oams)):
                caps.append(node.esmi.set_oam_power_cap(i, per_oam))
        except Exception as exc:
            raise VariorumError(str(exc)) from exc
        return caps
