"""The three Variorum entry points, dispatched by platform vendor."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.hardware.node import Node
from repro.variorum.backends import get_backend


class VariorumError(RuntimeError):
    """A Variorum call failed (unsupported feature, firmware rejection)."""


def get_node_power_json(node: Node, timestamp: float) -> Dict[str, object]:
    """Vendor-neutral node power telemetry.

    Returns a JSON-compatible dict. Keys always present:

    * ``hostname``, ``timestamp``
    * ``power_node_watts`` — direct hardware reading where the platform
      has a node sensor (IBM), otherwise a conservative sum of the
      measurable domains, flagged by ``power_node_is_estimate: true``.

    Additional per-domain keys depend on the backend (see
    :mod:`repro.variorum.backends`).
    """
    backend = get_backend(node.spec.vendor)
    return backend.sample_cached(node, timestamp)


def cap_best_effort_node_power_limit(node: Node, watts: float) -> Dict[str, object]:
    """Cap total node power, as directly as the platform allows.

    On IBM the cap is installed in OPAL firmware (which derives per-GPU
    caps with its conservative algorithm). On Intel/AMD there is no
    node dial, so the budget is split uniformly across CPU sockets and
    remaining headroom across GPUs — *best effort*, exactly Variorum's
    documented semantics.

    Returns a dict describing what was actually installed.
    """
    if watts <= 0:
        raise VariorumError(f"node power limit must be positive, got {watts}")
    backend = get_backend(node.spec.vendor)
    return backend.cap_best_effort_node_power_limit(node, float(watts))


def cap_each_gpu_power_limit(node: Node, watts: float) -> List[float]:
    """Set the same power cap on every GPU of the node.

    Returns the list of caps actually in force (NVML may misbehave; see
    :class:`repro.hardware.firmware.NVMLDriver`). Raises
    :class:`VariorumError` when the platform has no cappable GPUs or
    refuses user capping (Tioga).
    """
    backend = get_backend(node.spec.vendor)
    return backend.cap_each_gpu_power_limit(node, float(watts))


def sample_wire_bytes(node: Node) -> "int | None":
    """Per-node constant wire-size estimate of one telemetry sample.

    Every sample for a node has identical keys and leaf types, so its
    :func:`repro.flux.message.estimate_payload_bytes` value is a
    constant, captured from the first finished sample. ``None`` until
    the node has been sampled at least once. The monitor uses this to
    price query responses arithmetically instead of re-walking sample
    dicts (``tests/test_sampling_equivalence.py`` pins the identity).
    """
    backend = get_backend(node.spec.vendor)
    return backend.plan_for(node).sample_size


def sample_bytes_estimate(sample: Dict[str, object]) -> int:
    """Wire/storage size of one telemetry sample (JSON-serialised bytes).

    The paper sizes the monitor's circular buffer at 43.4 MB for
    100,000 Variorum JSON objects (~455 B each); this helper is what
    the buffer accounting uses.
    """
    return len(json.dumps(sample, separators=(",", ":")).encode("utf-8"))
