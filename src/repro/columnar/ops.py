"""Vectorized twins of the pure split functions.

Each function here reproduces its scalar reference *bit for bit*:

* elementwise arithmetic (``share * n``, ``remaining * w / total``,
  floor/ceiling clamps) runs through numpy ufuncs, which perform the
  same single IEEE-754 operation per element the scalar loop does;
* **reductions stay sequential** — numpy's pairwise summation is
  faster but rounds differently, so totals are accumulated in the same
  left-to-right order as the scalar ``sum()`` over sorted names.

The Hypothesis suite (``tests/test_columnar_equivalence.py``) pins
element-for-element equality on random shapes; the manager and the
federation tier may therefore switch implementations by size without
changing a digest.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.federation.rebalance import (
    REL_EPS,
    site_allocation_total_w,
    validate_floors,
)
from repro.manager.policies.proportional import per_node_share


def _seq_sum(values) -> float:
    """Left-to-right float accumulation, matching the scalar ``sum()``."""
    total = 0.0
    for v in values:
        total += v
    return total


def per_node_share_np(budget_w, active_nodes, node_peak_w) -> np.ndarray:
    """Broadcasted ``min(peak, budget / active)`` — the paper's P_n rule
    applied elementwise over arrays of budgets/counts/peaks."""
    budget = np.asarray(budget_w, dtype=np.float64)
    active = np.asarray(active_nodes, dtype=np.float64)
    peak = np.asarray(node_peak_w, dtype=np.float64)
    if np.any(active <= 0):
        raise ValueError("active_nodes must be > 0")
    return np.where(active * peak <= budget, peak, budget / active)


def split_budget_np(
    budget_w: float, job_nodes: Mapping[int, int], node_peak_w: float
) -> Dict[int, float]:
    """Vectorized :func:`~repro.manager.policies.proportional.split_budget`.

    The node-count total is integer (exact in any order); the per-job
    multiply is one IEEE operation either way, so this is bitwise-equal
    to the scalar reference at every size.
    """
    if not job_nodes:
        return {}
    jobids = list(job_nodes)
    counts = np.fromiter(
        (job_nodes[j] for j in jobids), dtype=np.int64, count=len(jobids)
    )
    total = int(counts.sum())
    if total == 0:
        return {}
    share = per_node_share(budget_w, total, node_peak_w)
    shares = share * counts.astype(np.float64)
    return {jobid: float(shares[i]) for i, jobid in enumerate(jobids)}


def split_budget_weighted_np(
    budget_w: float,
    job_nodes: Mapping[int, int],
    node_peak_w: float,
    weights: Optional[Mapping[int, float]] = None,
) -> Dict[int, float]:
    """Vectorized :func:`~repro.tenancy.fairshare.split_budget_weighted`.

    The pin test and the rate computation are elementwise ufuncs (the
    same IEEE operations, in the same order, as the scalar loop); the
    weighted node total and the running ``remaining`` are accumulated
    sequentially in the scalar's free-list order, so the result is
    bitwise equal at every size.
    """
    if not job_nodes:
        return {}
    from repro.tenancy.fairshare import normalize_weights

    jobids = list(job_nodes)
    n = len(jobids)
    counts = np.fromiter(
        (float(job_nodes[j]) for j in jobids), np.float64, n
    )
    if np.any(counts < 0):
        bad = jobids[int(np.nonzero(counts < 0)[0][0])]
        raise ValueError(f"job {bad!r} node count must be >= 0")
    if not counts.any():
        return {}  # mirrors the scalar: no allocated nodes, no entries
    wn_map = normalize_weights(weights, jobids)
    wn = np.fromiter((wn_map[j] for j in jobids), np.float64, n)

    alloc = np.zeros(n, dtype=np.float64)
    free_mask = np.ones(n, dtype=bool)
    remaining = float(budget_w)
    terms = wn * counts  # elementwise wn_j · n_j, one op per job
    while free_mask.any():
        free = np.nonzero(free_mask)[0]
        total_wn = _seq_sum(terms[i] for i in free)
        if total_wn <= 0.0:
            alloc[free] = 0.0
            break
        pin = free_mask & (node_peak_w * total_wn <= remaining * wn)
        if pin.any():
            peak_alloc = node_peak_w * counts
            # Sequential remaining updates in the scalar's pin order
            # (ascending index == free-list insertion order).
            for i in np.nonzero(pin)[0]:
                alloc[i] = peak_alloc[i]
                remaining -= alloc[i]
            free_mask &= ~pin
            continue
        rate = remaining * wn / total_wn
        alloc[free] = (rate * counts)[free]
        break
    return {j: float(alloc[i]) for i, j in enumerate(jobids)}


def split_site_budget_np(
    site_budget_w: float,
    demands: Mapping[str, float],
    floors: Optional[Mapping[str, float]] = None,
    ceilings: Optional[Mapping[str, Optional[float]]] = None,
    weights: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """Vectorized :func:`~repro.federation.rebalance.split_site_budget`.

    Same water-fill (distribute by demand weight, pin starved clusters
    at floors then overshooting clusters at ceilings, re-divide, then
    top up stranded budget), with the per-round membership tests and
    clamps done as array masks. Reductions are sequential in sorted
    name order, matching the scalar accumulator exactly.
    """
    names = sorted(demands)
    if not names:
        return {}
    n = len(names)
    lo_map = {c: float((floors or {}).get(c, 0.0) or 0.0) for c in names}
    hi_map = {c: (ceilings or {}).get(c) for c in names}
    validate_floors(site_budget_w, lo_map, hi_map)

    demand = np.fromiter((float(demands[c]) for c in names), np.float64, n)
    if np.any(demand < 0):
        bad = names[int(np.nonzero(demand < 0)[0][0])]
        raise ValueError(f"cluster {bad!r} demand must be >= 0")
    if weights is None:
        eff = demand
    else:
        from repro.tenancy.fairshare import normalize_weights

        wn_map = normalize_weights(weights, names)
        wn = np.fromiter((wn_map[c] for c in names), np.float64, n)
        eff = wn * demand  # elementwise, matching the scalar wn_c · d_c
    lo = np.fromiter((lo_map[c] for c in names), np.float64, n)
    has_hi = np.fromiter((hi_map[c] is not None for c in names), bool, n)
    hi = np.fromiter(
        (float(hi_map[c]) if hi_map[c] is not None else np.inf for c in names),
        np.float64,
        n,
    )

    share = np.zeros(n, dtype=np.float64)
    is_pinned = np.zeros(n, dtype=bool)
    # Pin order drives the scalar's dict-value accumulation order, so
    # replay it: sum pinned shares in the order they were pinned.
    pin_order: list = []

    def pinned_sum() -> float:
        return _seq_sum(share[i] for i in pin_order)

    while True:
        free = np.nonzero(~is_pinned)[0]
        if free.size == 0:
            break
        remaining = max(0.0, site_budget_w - pinned_sum())
        weight = eff[free]
        total_w = _seq_sum(weight)
        if total_w <= 0.0:
            prop = np.full(free.size, remaining / free.size)
        else:
            prop = remaining * weight / total_w
        starved = prop < lo[free] * (1.0 - REL_EPS) - REL_EPS
        if np.any(starved):
            idx = free[starved]
            share[idx] = lo[idx]
            is_pinned[idx] = True
            pin_order.extend(idx.tolist())
            continue
        over = has_hi[free] & (prop > hi[free] * (1.0 + REL_EPS) + REL_EPS)
        if np.any(over):
            idx = free[over]
            share[idx] = hi[idx]
            is_pinned[idx] = True
            pin_order.extend(idx.tolist())
            continue
        final = np.maximum(prop, lo[free])
        final = np.where(has_hi[free], np.minimum(final, hi[free]), final)
        share[free] = final
        is_pinned[free] = True
        pin_order.extend(free.tolist())
        break

    target = site_allocation_total_w(site_budget_w, demands, ceilings)
    tol = REL_EPS * max(1.0, target)
    # The scalar top-up sums pinned.values() in *name* order (the dict
    # holds every cluster once the fill finished), so switch to that.
    all_idx = list(range(n))

    def total_share() -> float:
        return _seq_sum(share[i] for i in all_idx)

    while target - total_share() > tol:
        leftover = target - total_share()
        open_mask = ~has_hi | (share < hi - tol)
        open_idx = np.nonzero(open_mask)[0]
        if open_idx.size == 0:  # pragma: no cover - target <= sum of ceilings
            break
        weight = eff[open_idx]
        total_w = _seq_sum(weight)
        if total_w <= 0.0:
            add = np.full(open_idx.size, leftover / open_idx.size)
        else:
            add = leftover * weight / total_w
        new = share[open_idx] + add
        new = np.where(has_hi[open_idx], np.minimum(new, hi[open_idx]), new)
        share[open_idx] = new
    return {c: float(share[i]) for i, c in enumerate(names)}
