"""Columnar (structure-of-arrays) node state for exascale sweeps.

``repro.columnar`` keeps per-rank node state — current power, caps,
power revisions, sample counts and the dead mask — as numpy arrays
keyed by column index (one column per adopted node), and replaces the
per-node sample dicts on the monitor hot path with *implicit* columnar
rings that derive their contents from one shared per-group tick log.

The contract is the same one ``monitor_batch_sampling`` established:
enabling the columnar store must not change a single output byte for
pinned configurations (see tests/golden/ and docs/performance.md), and
where float ordering would differ the affected node falls back to the
scalar path automatically (noisy sensors, heterogeneous per-sample
overhead charges, restored-from-snapshot agents).
"""

from repro.columnar.store import (
    ColumnarNodeStore,
    ColumnarRing,
    ColumnarSamples,
    GroupColumns,
    TickLog,
    columnar_of,
    columnar_store_of,
)
from repro.columnar.ops import (
    per_node_share_np,
    split_budget_np,
    split_site_budget_np,
)

__all__ = [
    "ColumnarNodeStore",
    "ColumnarRing",
    "ColumnarSamples",
    "GroupColumns",
    "TickLog",
    "columnar_of",
    "columnar_store_of",
    "per_node_share_np",
    "split_budget_np",
    "split_site_budget_np",
]
